"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      one scenario, printed summary (the quickstart as a command).
``bench``    the fixed perf sweep, compared against the committed baseline.
``figure``   regenerate a paper figure (fig7..fig13) at a chosen scale,
             or from a campaign store with ``--from DIR`` (no simulation).
``campaign`` checkpointed sweeps: ``run`` (kill-and-resume safe, every
             finished point durably on disk), ``status`` (progress),
             ``farm`` (sharded multi-process executor with work-stealing
             and crash recovery) and ``serve`` (live status endpoint).
``validate`` check every quantitative paper claim against a sweep
             (or a store, with ``--from DIR``).
``topology`` Fig. 6 tree statistics over random placements.
``fig4``     the Fig. 4 handshake trace.
``protocols`` list the registered MAC protocols.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table, rows_to_csv
from repro.experiments.runner import run_sweep, sweep_failures
from repro.experiments.scenarios import (
    PAPER_RATES,
    SCENARIOS,
    SINR_PROFILES,
    paper_scenario,
    scaled_scenario,
    sinr_preset,
)
from repro.sim.engine import KERNELS
from repro.world.network import PROTOCOLS, ScenarioConfig, build_network


def _load_faults(path: Optional[str]):
    if not path:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def _make_sinr(args: argparse.Namespace):
    """A SinrConfig from the --sinr flags (None when --sinr is absent)."""
    profile = getattr(args, "sinr", None)
    if not profile:
        return None
    overrides = {}
    if getattr(args, "sinr_threshold", None) is not None:
        overrides["sinr_threshold_db"] = args.sinr_threshold
    if getattr(args, "sinr_sigma", None) is not None:
        overrides["shadowing_sigma_db"] = args.sinr_sigma
    if getattr(args, "sinr_fading", None):
        overrides["fading"] = args.sinr_fading
    if getattr(args, "tx_jitter", None) is not None:
        overrides["tx_power_jitter_db"] = args.tx_jitter
    return sinr_preset(profile, **overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    use_oracle = bool(args.oracle or args.oracle_report)
    config = ScenarioConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        width=args.width,
        height=args.height,
        mobile=args.speed > 0,
        max_speed=args.speed or 4.0,
        pause_s=args.pause,
        rate_pps=args.rate,
        n_packets=args.packets,
        seed=args.seed,
        collect_telemetry=bool(args.telemetry),
        trace=bool(args.trace_jsonl),
        faults=_load_faults(args.faults),
        oracle=use_oracle,
        sinr=_make_sinr(args),
    )
    tracer = None
    if args.trace_jsonl:
        from repro.sim.trace import JsonlTraceSink, Tracer

        tracer = Tracer(enabled=True, buffer=JsonlTraceSink(args.trace_jsonl))
    # Open the telemetry output up front so a bad path fails before the
    # run, not after minutes of simulation.
    telemetry_fh = open(args.telemetry, "w") if args.telemetry else None
    network = build_network(config, tracer=tracer, kernel=args.kernel)
    summary = network.run()
    if telemetry_fh is not None:
        import json

        with telemetry_fh:
            json.dump(summary.telemetry, telemetry_fh, indent=2)
        print(f"telemetry: {summary.events_processed} events at "
              f"{summary.events_per_sec:,.0f} events/s -> {args.telemetry}")
    if args.trace_jsonl:
        print(f"trace: {len(network.testbed.tracer)} events -> {args.trace_jsonl}")
    oracle_failed = False
    if use_oracle:
        report = summary.oracle_report
        print(f"oracle: {report['total']} violation(s) over "
              f"{report['events_seen']} trace events")
        for violation in report["violations"][:10]:
            print(f"  [{violation['rule']}] t={violation['time']} "
                  f"node {violation['node']}: {violation['message']}")
        if args.oracle_report:
            import json

            with open(args.oracle_report, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"oracle report -> {args.oracle_report}")
        oracle_failed = report["total"] > 0
    if summary.sinr is not None:
        stats = summary.sinr
        mean_sinr = stats["mean_sinr_db"]
        print(f"sinr: {stats['sinr_dropped']} interference drop(s), "
              f"{stats['delivered']} deliveries"
              + (f" at mean {mean_sinr:.1f} dB "
                 f"(min {stats['min_sinr_db']:.1f} dB)"
                 if mean_sinr is not None else "")
              + f", max {stats['concurrent_high_water']} concurrent signals")
    rows = [{"metric": k, "value": v} for k, v in [
        ("delivery ratio", summary.delivery_ratio),
        ("avg delay (s)", summary.avg_delay_s),
        ("drop ratio", summary.avg_drop_ratio),
        ("retransmission ratio", summary.avg_retx_ratio),
        ("tx overhead ratio", summary.avg_txoh_ratio),
        ("MRTS avg bytes", summary.mrts_len_avg),
        ("MRTS abort ratio", summary.abort_avg),
    ]]
    print(format_table(rows, title=f"{args.protocol}: {args.nodes} nodes, "
                                   f"{args.rate} pkt/s, seed {args.seed}"))
    return 1 if oracle_failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import bench

    tier = args.tier or ("smoke" if args.smoke else "full")
    points = bench.tier_points(tier)
    report = bench.run_bench(
        points,
        progress=lambda rec: print("  " + bench.render_point(rec), flush=True),
    )
    print(bench.render(report))
    out = args.out or f"BENCH_{report['rev']}.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = bench.find_baseline("benchmarks")
    elif os.path.isdir(baseline_path):
        baseline_path = bench.find_baseline(baseline_path)
    if baseline_path is None:
        print("no committed baseline found; skipping comparison")
        return 0
    ok, lines = bench.compare(
        report, bench.load_baseline(baseline_path),
        max_regression=args.max_regression / 100.0,
    )
    print(f"baseline: {baseline_path}")
    for line in lines:
        print(f"  {line}")
    if not ok:
        print("benchmark regression exceeds threshold", file=sys.stderr)
        return 1
    return 0


def _sweep_options(args: argparse.Namespace) -> dict:
    """run_sweep kwargs from the shared sweep CLI flags."""
    progress = None
    if args.progress:
        def progress(done, total, key, error):
            status = f"FAILED ({error})" if error else "ok"
            print(f"[{done}/{total}] {key} {status}", flush=True)
    return dict(workers=args.workers, retries=args.retries, progress=progress)


def _report_failures(results, fail_on_error: bool) -> int:
    """Print captured sweep failures; exit code 1 only if asked to."""
    failures = sweep_failures(results)
    for failure in failures:
        print(f"sweep failure: {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} point(s) failed; aggregates use surviving "
              f"seeds only", file=sys.stderr)
    return 1 if (failures and fail_on_error) else 0


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--retries", type=int, default=0,
                        help="re-run a crashed point up to N extra times")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per finished (point, seed) run")
    parser.add_argument("--fail-on-error", action="store_true",
                        help="exit nonzero if any point failed "
                             "(default: report and keep partial results)")


#: (n_nodes, n_packets, rates, seeds) per --scale choice. "smoke" is
#: the committed 40-node spec CI drives end to end (the farm smoke job
#: runs it twice — farmed and single-process — and asserts bit-identity).
FIGURE_SCALES = {
    "smoke": (40, 40, (20,), (1, 2)),
    "small": (25, 60, (10, 60, 120), (1, 2)),
    "medium": (40, 150, (5, 20, 60, 120), (1, 2, 3)),
    "paper": (75, 10_000, PAPER_RATES, tuple(range(1, 11))),
}


def _scale_make_config(scale: str, faults=None, oracle: bool = False,
                       sinr=None):
    """The make_config factory for one --scale choice.

    ``faults`` (a FaultPlan), ``oracle`` and ``sinr`` (a SinrConfig)
    apply to every point; all live on the ScenarioConfig, so they flow
    into each point's config_hash and the store resumes faulted or
    SINR campaigns exactly.
    """
    def make_config(protocol, scenario, rate, seed):
        if scale == "paper":
            config = paper_scenario(protocol, scenario, rate, seed)
        else:
            n_nodes, n_packets, _rates, _seeds = FIGURE_SCALES[scale]
            config = scaled_scenario(protocol, scenario, rate, seed,
                                     n_packets=n_packets, n_nodes=n_nodes)
        if faults is not None or oracle or sinr is not None:
            config = config.variant(faults=faults, oracle=oracle, sinr=sinr)
        return config
    return make_config


def _cmd_figure(args: argparse.Namespace) -> int:
    spec = FIGURES[args.figure]
    if args.from_store:
        from repro.experiments.figures import figure_rows_from_store
        from repro.experiments.store import ResultStore

        store = ResultStore(args.from_store, create=False)
        rows = figure_rows_from_store(spec, store)
        results = []
    else:
        _n, _p, rates, seeds = FIGURE_SCALES[args.scale]
        results = run_sweep(list(spec.protocols), list(SCENARIOS), list(rates),
                            list(seeds), _scale_make_config(args.scale),
                            **_sweep_options(args))
        rows = figure_rows(spec, results)
    print(format_table(rows, title=spec.title))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rows_to_csv(rows))
        print(f"wrote {args.csv}")
    return _report_failures(results, args.fail_on_error)


def _cmd_topology(args: argparse.Namespace) -> int:
    import random

    import numpy as np

    from repro.net.tree import bfs_tree, tree_statistics
    from repro.world.placement import random_placement

    rows = []
    for seed in range(args.placements):
        rng = random.Random(args.seed + seed)
        coords = random_placement(args.nodes, 500, 300, rng)
        stats = tree_statistics(bfs_tree(coords, 75.0))
        stats["seed"] = args.seed + seed
        rows.append(stats)
    print(format_table(rows, title=f"Fig. 6 statistics over "
                                   f"{args.placements} placements"))
    mean_hops = float(np.mean([r["avg_hops"] for r in rows]))
    mean_children = float(np.mean([r["avg_children"] for r in rows]))
    print(f"means: hops {mean_hops:.2f} (paper 3.87), "
          f"children {mean_children:.2f} (paper 3.54)")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.core import RmacConfig, RmacProtocol
    from repro.world.testbed import MacTestbed

    tb = MacTestbed(coords=[(0, 0), (50, 0), (0, 50)], seed=7, trace=True)
    config = RmacConfig(phy=tb.phy)
    tb.build_macs(lambda i, t: RmacProtocol(i, t.sim, t.radios[i],
                                            t.node_rng(i), config,
                                            tracer=t.tracer))
    tb.macs[0].send_reliable((1, 2), payload="fig4", payload_bytes=500)
    tb.run(50_000_000)
    print(tb.tracer.render())
    return 0


def _cmd_protocols(args: argparse.Namespace) -> int:
    for name in sorted(PROTOCOLS):
        print(name)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import all_pass, validate, validate_store

    if args.from_store:
        from repro.experiments.store import ResultStore

        rows = validate_store(ResultStore(args.from_store, create=False))
        print(format_table(rows, title="Paper-claim validation"))
        return 0 if all_pass(rows) else 1

    _n, _p, rates, seeds = FIGURE_SCALES[args.scale]
    results = run_sweep(["rmac", "bmmm"], list(SCENARIOS), list(rates),
                        list(seeds), _scale_make_config(args.scale),
                        **_sweep_options(args))
    rows = validate(results)
    print(format_table(rows, title="Paper-claim validation"))
    failure_code = _report_failures(results, args.fail_on_error)
    return failure_code or (0 if all_pass(rows) else 1)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import Campaign

    _n, _p, rates, seeds = FIGURE_SCALES[args.scale]
    campaign = Campaign(args.out)
    options = _sweep_options(args)
    if options["progress"] is None:
        def default_progress(done, total, key, error):
            status = f"FAILED ({error})" if error else "ok"
            print(f"[{done}/{total}] {key} {status}", flush=True)
        options["progress"] = default_progress
    faults = _load_faults(args.faults)
    sinr = _make_sinr(args)
    manifest_extra = {"scale": args.scale}
    if faults is not None:
        manifest_extra["faults"] = faults.to_dict()
    if args.oracle:
        manifest_extra["oracle"] = True
    if sinr is not None:
        manifest_extra["sinr"] = sinr.to_dict()
    results = campaign.run(
        args.protocols.split(","), list(SCENARIOS), list(rates),
        list(seeds),
        _scale_make_config(args.scale, faults=faults, oracle=args.oracle,
                           sinr=sinr),
        manifest_extra=manifest_extra,
        **options,
    )
    for figure in sorted(FIGURES):
        spec = FIGURES[figure]
        rows = figure_rows(spec, results)
        print(format_table(rows, title=f"{figure}: {spec.title}"))
    print(f"campaign store: {campaign.path} ({len(campaign)} points)")
    return _report_failures(results, args.fail_on_error)


def _cmd_campaign_farm(args: argparse.Namespace) -> int:
    from repro.experiments.farm import CampaignFarm, render_farm_status, farm_status

    _n, _p, rates, seeds = FIGURE_SCALES[args.scale]
    farm = CampaignFarm(args.out)

    def default_progress(done, total, key, error):
        status = f"FAILED ({error})" if error else "ok"
        print(f"[{done}/{total}] {key} {status}", flush=True)

    faults = _load_faults(args.faults)
    sinr = _make_sinr(args)
    manifest_extra = {"scale": args.scale}
    if faults is not None:
        manifest_extra["faults"] = faults.to_dict()
    if args.oracle:
        manifest_extra["oracle"] = True
    if sinr is not None:
        manifest_extra["sinr"] = sinr.to_dict()
    telemetry = None
    if args.telemetry:
        from repro.sim.telemetry import Telemetry

        telemetry = Telemetry()
    results = farm.run(
        args.protocols.split(","), list(SCENARIOS), list(rates), list(seeds),
        _scale_make_config(args.scale, faults=faults, oracle=args.oracle,
                           sinr=sinr),
        workers=args.workers, retries=args.retries,
        progress=default_progress if args.progress else None,
        manifest_extra=manifest_extra, telemetry=telemetry,
    )
    counters = farm.counters.as_dict()
    print("farm: " + ", ".join(f"{k.replace('points_', '')}={v}"
                               for k, v in counters.items()))
    if args.telemetry:
        import json

        with open(args.telemetry, "w") as fh:
            json.dump(telemetry.report().to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"farm telemetry -> {args.telemetry}")
    print(render_farm_status(farm_status(farm.path)), end="")
    print(f"farm store: {farm.path} ({len(farm)} merged points)")
    return _report_failures(results, args.fail_on_error)


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    from repro.experiments.farm import farm_status, make_status_server

    if args.once:
        import json

        print(json.dumps(farm_status(args.out), indent=1, sort_keys=True))
        return 0
    server = make_status_server(args.out, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving {args.out} on http://{host}:{port}/ "
          f"(JSON at /status; Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import Campaign
    from repro.experiments.report import render_status
    from repro.experiments.store import ResultStore

    campaign = Campaign(ResultStore(args.out, create=False))
    manifest = campaign.store.manifest() or {}
    make_config = None
    if manifest.get("scale") in FIGURE_SCALES:
        faults = None
        if manifest.get("faults") is not None:
            from repro.faults import FaultPlan

            faults = FaultPlan.from_dict(manifest["faults"])
        sinr = None
        if manifest.get("sinr") is not None:
            from repro.phy.sinr import SinrConfig

            sinr = SinrConfig.from_dict(manifest["sinr"])
        make_config = _scale_make_config(
            manifest["scale"], faults=faults,
            oracle=bool(manifest.get("oracle")), sinr=sinr,
        )
    status = campaign.status(make_config)
    print(render_status(status, title=f"campaign store: {campaign.path}"),
          end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("--protocol", default="rmac", choices=sorted(PROTOCOLS))
    run.add_argument("--nodes", type=int, default=25)
    run.add_argument("--width", type=float, default=290.0)
    run.add_argument("--height", type=float, default=175.0)
    run.add_argument("--rate", type=float, default=10.0)
    run.add_argument("--packets", type=int, default=100)
    run.add_argument("--speed", type=float, default=0.0,
                     help="max waypoint speed m/s (0 = stationary)")
    run.add_argument("--pause", type=float, default=10.0)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--kernel", choices=sorted(KERNELS), default="heap",
                     help="event-queue kernel (bit-identical results; "
                          "only the wall clock changes)")
    run.add_argument("--telemetry", metavar="OUT.json",
                     help="collect event-loop telemetry (events/sec, "
                          "per-label counts) and write it as JSON")
    run.add_argument("--trace-jsonl", metavar="OUT.jsonl",
                     help="stream the full protocol trace to a JSONL file "
                          "(bounded memory, any run length)")
    run.add_argument("--faults", metavar="PLAN.json",
                     help="inject faults from a JSON fault plan (node "
                          "crashes, link fades, corruption windows, "
                          "replacement bit-error model)")
    run.add_argument("--oracle", action="store_true",
                     help="check protocol invariants online against the "
                          "trace stream; exits 1 if any are violated")
    run.add_argument("--oracle-report", metavar="OUT.json",
                     help="write the oracle's violation report as JSON "
                          "(implies --oracle)")
    run.add_argument("--sinr", choices=sorted(SINR_PROFILES),
                     help="SINR interference reception on a named "
                          "propagation profile (accumulated in-air power, "
                          "decode by SINR threshold; see "
                          "repro.phy.sinr)")
    run.add_argument("--sinr-threshold", type=float, metavar="DB",
                     help="decode SINR threshold in dB (default 10)")
    run.add_argument("--sinr-sigma", type=float, metavar="DB",
                     help="lognormal shadowing sigma in dB (shadowing/"
                          "fading profiles; default 6)")
    run.add_argument("--sinr-fading", choices=("rayleigh", "rician"),
                     help="add fast fading per arrival to the chosen "
                          "profile")
    run.add_argument("--tx-jitter", type=float, metavar="DB",
                     help="heterogeneous radios: per-node uniform tx-power "
                          "jitter of +-DB (deterministic in the seed)")
    run.set_defaults(func=_cmd_run)

    bench = sub.add_parser(
        "bench",
        help="run the fixed perf sweep and compare against the committed "
             "baseline (see benchmarks/BENCH_*.json)",
    )
    bench.add_argument("--tier", choices=("smoke", "full", "large"),
                       help="point set to run: smoke (one ~1s run, the CI "
                            "gate), full (the committed 40-node sweep, the "
                            "default), or large (200/500/1000-node scaling "
                            "tier with grid-vs-brute comparisons)")
    bench.add_argument("--smoke", action="store_true",
                       help="alias for --tier smoke; what CI executes on "
                            "every push")
    bench.add_argument("--out", metavar="OUT.json",
                       help="report path (default BENCH_<rev>.json in cwd)")
    bench.add_argument("--baseline", metavar="FILE_OR_DIR",
                       help="baseline report, or a directory of BENCH_*.json "
                            "(default: newest in benchmarks/)")
    bench.add_argument("--max-regression", type=float, default=30.0,
                       metavar="PCT",
                       help="fail if a point's events/sec drops more than "
                            "this percentage vs the baseline (default 30)")
    bench.set_defaults(func=_cmd_bench)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("figure", choices=sorted(FIGURES))
    fig.add_argument("--scale", choices=("small", "medium", "paper"),
                     default="small")
    fig.add_argument("--from", dest="from_store", metavar="DIR",
                     help="read a campaign result store instead of "
                          "simulating (partial stores give partial rows)")
    _add_sweep_flags(fig)
    fig.add_argument("--csv")
    fig.set_defaults(func=_cmd_figure)

    topo = sub.add_parser("topology", help="Fig. 6 tree statistics")
    topo.add_argument("--nodes", type=int, default=75)
    topo.add_argument("--placements", type=int, default=10)
    topo.add_argument("--seed", type=int, default=1000)
    topo.set_defaults(func=_cmd_topology)

    fig4 = sub.add_parser("fig4", help="print the Fig. 4 handshake trace")
    fig4.set_defaults(func=_cmd_fig4)

    protocols = sub.add_parser("protocols", help="list registered protocols")
    protocols.set_defaults(func=_cmd_protocols)

    campaign = sub.add_parser(
        "campaign",
        help="checkpointed sweeps over an on-disk result store",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)
    campaign_run = campaign_sub.add_parser(
        "run",
        help="run (or resume) a checkpointed sweep; kill it any time -- "
             "completed points are on disk and are never re-simulated",
    )
    campaign_run.add_argument("--out", required=True, metavar="DIR",
                              help="result-store directory (created on "
                                   "first run; a v0 .json checkpoint "
                                   "here is migrated in place)")
    campaign_run.add_argument("--scale", choices=sorted(FIGURE_SCALES),
                              default="small")
    campaign_run.add_argument("--protocols", default="rmac,bmmm",
                              help="comma-separated protocol names")
    campaign_run.add_argument("--faults", metavar="PLAN.json",
                              help="inject the same fault plan into every "
                                   "point (part of each point's config "
                                   "hash, so resume stays exact)")
    campaign_run.add_argument("--oracle", action="store_true",
                              help="attach the invariant oracle to every "
                                   "point; per-point violation reports "
                                   "are persisted in the store")
    campaign_run.add_argument("--sinr", choices=sorted(SINR_PROFILES),
                              help="run every point under SINR "
                                   "interference reception on the named "
                                   "propagation profile (part of each "
                                   "point's config hash)")
    _add_sweep_flags(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_farm = campaign_sub.add_parser(
        "farm",
        help="run the matrix as a sharded multi-process farm: one "
             "result store per shard, work-stealing, dead workers' "
             "leases requeued, shards merged into the canonical store",
    )
    campaign_farm.add_argument("--out", required=True, metavar="DIR",
                               help="farm root directory (the merged "
                                    "canonical store; shards live in "
                                    "DIR/shards/, heartbeats in "
                                    "DIR/workers/)")
    campaign_farm.add_argument("--workers", type=int, default=None,
                               metavar="N",
                               help="worker processes / shards "
                                    "(default: all cores)")
    campaign_farm.add_argument("--scale", choices=sorted(FIGURE_SCALES),
                               default="small")
    campaign_farm.add_argument("--protocols", default="rmac,bmmm",
                               help="comma-separated protocol names")
    campaign_farm.add_argument("--retries", type=int, default=0,
                               help="re-run a crashed point up to N "
                                    "extra times")
    campaign_farm.add_argument("--progress", action="store_true",
                               help="print one line per finished "
                                    "(point, seed) run")
    campaign_farm.add_argument("--fail-on-error", action="store_true",
                               help="exit nonzero if any point failed")
    campaign_farm.add_argument("--faults", metavar="PLAN.json",
                               help="inject the same fault plan into "
                                    "every point")
    campaign_farm.add_argument("--oracle", action="store_true",
                               help="attach the invariant oracle to "
                                    "every point")
    campaign_farm.add_argument("--sinr", choices=sorted(SINR_PROFILES),
                               help="run every point under SINR "
                                    "interference reception on the "
                                    "named propagation profile")
    campaign_farm.add_argument("--telemetry", metavar="OUT.json",
                               help="write the farm counters (done/"
                                    "stolen/requeued, worker deaths) "
                                    "as a telemetry report")
    campaign_farm.set_defaults(func=_cmd_campaign_farm)

    campaign_serve = campaign_sub.add_parser(
        "serve",
        help="long-lived HTTP endpoint publishing a farm/campaign "
             "store's live progress, ETA and worker liveness",
    )
    campaign_serve.add_argument("--out", required=True, metavar="DIR",
                                help="farm root (or campaign store) "
                                     "directory")
    campaign_serve.add_argument("--host", default="127.0.0.1")
    campaign_serve.add_argument("--port", type=int, default=8765)
    campaign_serve.add_argument("--once", action="store_true",
                                help="print one JSON status snapshot to "
                                     "stdout and exit (no server)")
    campaign_serve.set_defaults(func=_cmd_campaign_serve)

    campaign_status = campaign_sub.add_parser(
        "status",
        help="progress of a campaign store: done/failed/stale/missing",
    )
    campaign_status.add_argument("--out", required=True, metavar="DIR",
                                 help="result-store directory")
    campaign_status.set_defaults(func=_cmd_campaign_status)

    validate = sub.add_parser(
        "validate",
        help="run the RMAC-vs-BMMM sweep and check every paper claim",
    )
    validate.add_argument("--scale", choices=sorted(FIGURE_SCALES),
                          default="small")
    validate.add_argument("--from", dest="from_store", metavar="DIR",
                          help="check claims against a campaign result "
                               "store instead of simulating")
    _add_sweep_flags(validate)
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
