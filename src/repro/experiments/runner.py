"""Sweep runner: executes scenario points, optionally in parallel.

A *point* is (protocol, scenario, rate); each point runs over several
seeds (the paper: ten random placements, identical across protocols so
the comparison is paired) and the summaries are averaged.

Multiprocessing: each run is an independent process-safe function of its
config, so ``run_sweep(..., workers=N)`` fans points x seeds over a
process pool. Per the hpc guidance, runs are CPU-bound pure Python, so
processes (not threads) are the right lever.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.summary import RunSummary
from repro.world.network import ScenarioConfig, build_network


def run_point(config: ScenarioConfig) -> RunSummary:
    """Build and run one scenario; returns its summary."""
    return build_network(config).run()


#: RunSummary fields averaged across seeds (None values are skipped).
_MEAN_FIELDS = (
    "delivery_ratio",
    "avg_delay_s",
    "avg_drop_ratio",
    "avg_retx_ratio",
    "avg_txoh_ratio",
    "mrts_len_avg",
    "abort_avg",
)
#: Fields combined with max / pooled p99 semantics.
_MAX_FIELDS = ("mrts_len_max", "max_delay_s", "abort_max")
_P99_FIELDS = ("mrts_len_p99", "abort_p99")


@dataclass(frozen=True)
class SweepResult:
    """Seed-averaged metrics for one (protocol, scenario, rate) point."""

    protocol: str
    scenario: str
    rate_pps: float
    n_seeds: int
    values: Dict[str, Optional[float]]
    per_seed: Tuple[RunSummary, ...]

    def __getitem__(self, key: str) -> Optional[float]:
        return self.values[key]


def aggregate(
    protocol: str, scenario: str, rate_pps: float, summaries: Sequence[RunSummary]
) -> SweepResult:
    """Average per-seed summaries into one sweep point."""
    values: Dict[str, Optional[float]] = {}
    for name in _MEAN_FIELDS + _P99_FIELDS:
        samples = [getattr(s, name) for s in summaries if getattr(s, name) is not None]
        values[name] = sum(samples) / len(samples) if samples else None
    for name in _MAX_FIELDS:
        samples = [getattr(s, name) for s in summaries if getattr(s, name) is not None]
        values[name] = max(samples) if samples else None
    return SweepResult(
        protocol=protocol,
        scenario=scenario,
        rate_pps=rate_pps,
        n_seeds=len(summaries),
        values=values,
        per_seed=tuple(summaries),
    )


def run_sweep(
    protocols: Sequence[str],
    scenarios: Sequence[str],
    rates: Sequence[float],
    seeds: Sequence[int],
    make_config,
    workers: int = 0,
) -> List[SweepResult]:
    """Run the full matrix and aggregate per point.

    ``make_config(protocol, scenario, rate, seed) -> ScenarioConfig`` lets
    callers choose paper-scale or bench-scale runs. ``workers > 1`` uses a
    process pool.
    """
    jobs: List[Tuple[str, str, float, ScenarioConfig]] = []
    for protocol in protocols:
        for scenario in scenarios:
            for rate in rates:
                for seed in seeds:
                    jobs.append(
                        (protocol, scenario, rate, make_config(protocol, scenario, rate, seed))
                    )
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            summaries = list(pool.map(run_point, [j[3] for j in jobs]))
    else:
        summaries = [run_point(j[3]) for j in jobs]

    results: List[SweepResult] = []
    index = 0
    for protocol in protocols:
        for scenario in scenarios:
            for rate in rates:
                chunk = summaries[index : index + len(seeds)]
                index += len(seeds)
                results.append(aggregate(protocol, scenario, rate, chunk))
    return results
