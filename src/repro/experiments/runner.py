"""Sweep runner: executes scenario points, in parallel and fault-tolerantly.

Ownership: this module owns **execution and aggregation** — turning a
(protocols x scenarios x rates x seeds) matrix into per-point
:class:`SweepResult` averages. Persistence lives in
:mod:`repro.experiments.store` (the runner only *writes through* a store
it is handed); workflow (manifest, resume, status) lives in
:mod:`repro.experiments.campaign`.

A *point* is (protocol, scenario, rate); each point runs over several
seeds (the paper: ten random placements, identical across protocols so
the comparison is paired) and the summaries are averaged.

Multiprocessing: each run is an independent process-safe function of its
config, so ``run_sweep(..., workers=N)`` fans points x seeds over a
process pool. Per the hpc guidance, runs are CPU-bound pure Python, so
processes (not threads) are the right lever.

Fault tolerance: paper-scale campaigns are hundreds of runs; one
crashing seed must not void the other 479. Every job is submitted as its
own future, a failure is captured as a :class:`PointFailure` naming the
exact (protocol, scenario, rate, seed) that died (with its traceback),
optionally retried, and the surviving seeds are still aggregated. Pass
``strict=True`` to get the old fail-fast behavior instead.

Checkpointing: pass ``store=ResultStore(dir)`` and every finished job is
appended to disk *as it completes* (success or captured failure), while
jobs whose exact configuration hash is already stored are served from
disk without simulating. Killing a sweep therefore costs only the
in-flight jobs; re-invoking with the same arguments resumes.
"""

from __future__ import annotations

import traceback as _traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.store import ResultStore, config_hash
from repro.metrics.summary import RunSummary
from repro.world.network import ScenarioConfig, build_network


def run_point(config: ScenarioConfig) -> RunSummary:
    """Build and run one scenario; returns its summary."""
    return build_network(config).run()


#: RunSummary fields averaged across seeds (None values are skipped).
_MEAN_FIELDS = (
    "delivery_ratio",
    "avg_delay_s",
    "avg_drop_ratio",
    "avg_retx_ratio",
    "avg_txoh_ratio",
    "mrts_len_avg",
    "abort_avg",
)
#: Fields combined with max / pooled p99 semantics.
_MAX_FIELDS = ("mrts_len_max", "max_delay_s", "abort_max")
_P99_FIELDS = ("mrts_len_p99", "abort_p99")


@dataclass(frozen=True)
class PointFailure:
    """One (protocol, scenario, rate, seed) run that raised."""

    protocol: str
    scenario: str
    rate_pps: float
    seed: int
    error: str
    traceback: str
    #: How many times the job was attempted (1 + retries used).
    attempts: int

    @property
    def key(self) -> str:
        return f"{self.protocol}|{self.scenario}|{self.rate_pps}|{self.seed}"

    def __str__(self) -> str:
        return f"{self.key}: {self.error} (after {self.attempts} attempt(s))"


@dataclass(frozen=True)
class SweepResult:
    """Seed-averaged metrics for one (protocol, scenario, rate) point."""

    protocol: str
    scenario: str
    rate_pps: float
    n_seeds: int
    values: Dict[str, Optional[float]]
    per_seed: Tuple[RunSummary, ...]
    #: Seeds of this point whose runs raised (empty on a clean sweep).
    failures: Tuple[PointFailure, ...] = ()

    def __getitem__(self, key: str) -> Optional[float]:
        return self.values[key]


def aggregate(
    protocol: str,
    scenario: str,
    rate_pps: float,
    summaries: Sequence[RunSummary],
    failures: Sequence[PointFailure] = (),
) -> SweepResult:
    """Average per-seed summaries into one sweep point."""
    values: Dict[str, Optional[float]] = {}
    for name in _MEAN_FIELDS + _P99_FIELDS:
        samples = [getattr(s, name) for s in summaries if getattr(s, name) is not None]
        values[name] = sum(samples) / len(samples) if samples else None
    for name in _MAX_FIELDS:
        samples = [getattr(s, name) for s in summaries if getattr(s, name) is not None]
        values[name] = max(samples) if samples else None
    return SweepResult(
        protocol=protocol,
        scenario=scenario,
        rate_pps=rate_pps,
        n_seeds=len(summaries),
        values=values,
        per_seed=tuple(summaries),
        failures=tuple(failures),
    )


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a single (point, seed) run."""

    protocol: str
    scenario: str
    rate_pps: float
    seed: int
    config: ScenarioConfig

    @property
    def key(self) -> str:
        return f"{self.protocol}|{self.scenario}|{self.rate_pps}|{self.seed}"


#: Backwards-compatible alias (Job was private before the farm needed it).
_Job = Job


def build_jobs(
    protocols: Sequence[str],
    scenarios: Sequence[str],
    rates: Sequence[float],
    seeds: Sequence[int],
    make_config,
) -> List[Job]:
    """The full matrix as jobs, in canonical matrix order.

    The order is load-bearing: :func:`collect_results` slices the job
    list back into (protocol, scenario, rate) points ``len(seeds)`` at a
    time, and the store/farm layers key caches by :attr:`Job.key`.
    """
    jobs: List[Job] = []
    for protocol in protocols:
        for scenario in scenarios:
            for rate in rates:
                for seed in seeds:
                    jobs.append(
                        Job(protocol, scenario, rate, seed,
                            make_config(protocol, scenario, rate, seed))
                    )
    return jobs


def collect_results(
    jobs: Sequence[Job],
    seeds: Sequence[int],
    outcomes: Dict[str, object],
) -> List[SweepResult]:
    """Fold per-job outcomes (``RunSummary`` or ``PointFailure`` keyed by
    :attr:`Job.key`) into seed-averaged points, in matrix order."""
    results: List[SweepResult] = []
    for index in range(0, len(jobs), max(len(seeds), 1)):
        chunk_jobs = jobs[index : index + len(seeds)]
        if not chunk_jobs:
            break
        chunk = [outcomes[j.key] for j in chunk_jobs]
        summaries = [o for o in chunk if isinstance(o, RunSummary)]
        failures = [o for o in chunk if isinstance(o, PointFailure)]
        first = chunk_jobs[0]
        results.append(
            aggregate(first.protocol, first.scenario, first.rate_pps,
                      summaries, failures)
        )
    return results


#: Progress callback: (done, total, job_key, error_or_None).
ProgressFn = Callable[[int, int, str, Optional[str]], None]

#: Completion hook: called with (job, RunSummary | PointFailure) the
#: moment a job's outcome is final (after retries). The store
#: write-through path; runs in the submitting process.
ResultFn = Callable[["_Job", object], None]


def _failure(job: _Job, exc: BaseException, attempts: int) -> PointFailure:
    return PointFailure(
        protocol=job.protocol,
        scenario=job.scenario,
        rate_pps=job.rate_pps,
        seed=job.seed,
        error=f"{type(exc).__name__}: {exc}",
        traceback="".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
    )


def _run_serial(
    jobs: Sequence[_Job],
    retries: int,
    strict: bool,
    progress: Optional[ProgressFn],
    on_result: Optional[ResultFn] = None,
) -> Dict[str, object]:
    outcomes: Dict[str, object] = {}
    for done, job in enumerate(jobs, start=1):
        for attempt in range(1, retries + 2):
            try:
                outcomes[job.key] = run_point(job.config)
                break
            except Exception as exc:
                if strict:
                    raise
                outcomes[job.key] = _failure(job, exc, attempt)
        result = outcomes[job.key]
        if on_result is not None:
            on_result(job, result)
        if progress is not None:
            error = result.error if isinstance(result, PointFailure) else None
            progress(done, len(jobs), job.key, error)
    return outcomes


def _run_parallel(
    jobs: Sequence[_Job],
    workers: int,
    retries: int,
    strict: bool,
    progress: Optional[ProgressFn],
    on_result: Optional[ResultFn] = None,
) -> Dict[str, object]:
    outcomes: Dict[str, object] = {}
    done = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending: Dict[Future, Tuple[_Job, int]] = {
            pool.submit(run_point, job.config): (job, 1) for job in jobs
        }
        while pending:
            finished, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                job, attempt = pending.pop(future)
                exc = future.exception()
                if exc is None:
                    outcomes[job.key] = future.result()
                elif strict:
                    raise exc
                elif attempt <= retries:
                    pending[pool.submit(run_point, job.config)] = (job, attempt + 1)
                    continue
                else:
                    outcomes[job.key] = _failure(job, exc, attempt)
                done += 1
                if on_result is not None:
                    on_result(job, outcomes[job.key])
                if progress is not None:
                    result = outcomes[job.key]
                    error = result.error if isinstance(result, PointFailure) else None
                    progress(done, len(jobs), job.key, error)
    return outcomes


def run_sweep(
    protocols: Sequence[str],
    scenarios: Sequence[str],
    rates: Sequence[float],
    seeds: Sequence[int],
    make_config,
    workers: int = 0,
    *,
    retries: int = 0,
    strict: bool = False,
    progress: Optional[ProgressFn] = None,
    store: Optional[ResultStore] = None,
) -> List[SweepResult]:
    """Run the full matrix and aggregate per point.

    ``make_config(protocol, scenario, rate, seed) -> ScenarioConfig`` lets
    callers choose paper-scale or bench-scale runs. ``workers > 1`` uses a
    process pool with one future per job, so one crashing run never aborts
    the rest of the matrix.

    Parameters
    ----------
    retries:
        Re-run a failed job up to this many extra times before recording
        it as a :class:`PointFailure`.
    strict:
        Re-raise the first failure instead of capturing it (the pre-
        fault-tolerance behavior).
    progress:
        Called after every finished job as ``progress(done, total,
        job_key, error_or_None)`` -- e.g. for live console reporting.
        Jobs served from the store count too (key suffixed " (cached)").
    store:
        A :class:`~repro.experiments.store.ResultStore` to resume from
        and write through: jobs whose exact config hash is already
        stored are not re-simulated, and every finished job (success or
        captured failure) is appended as it completes, so an
        interrupted sweep loses only its in-flight jobs.
    """
    jobs = build_jobs(protocols, scenarios, rates, seeds, make_config)

    cached: Dict[str, RunSummary] = {}
    on_result: Optional[ResultFn] = None
    run_progress = progress
    if store is not None:
        hashes = {job.key: config_hash(job.config) for job in jobs}
        for job in jobs:
            hit = store.get(job.protocol, job.scenario, job.rate_pps,
                            job.seed, hashes[job.key])
            if hit is not None:
                cached[job.key] = hit
        if progress is not None:
            for done, key in enumerate(cached, start=1):
                progress(done, len(jobs), key + " (cached)", None)
            base, total = len(cached), len(jobs)

            def run_progress(done, _pending_total, key, error,
                             _base=base, _total=total):
                progress(_base + done, _total, key, error)

        def on_result(job, outcome):
            if isinstance(outcome, RunSummary):
                store.record_success(job.protocol, job.scenario, job.rate_pps,
                                     job.seed, hashes[job.key], outcome)
            else:
                store.record_failure(job.protocol, job.scenario, job.rate_pps,
                                     job.seed, hashes[job.key],
                                     error=outcome.error,
                                     attempts=outcome.attempts)

    to_run = [job for job in jobs if job.key not in cached]
    if workers and workers > 1:
        outcomes = _run_parallel(to_run, workers, retries, strict,
                                 run_progress, on_result)
    else:
        outcomes = _run_serial(to_run, retries, strict, run_progress, on_result)
    outcomes.update(cached)
    return collect_results(jobs, seeds, outcomes)


def sweep_failures(results: Sequence[SweepResult]) -> List[PointFailure]:
    """Every captured failure across a sweep's results, in matrix order."""
    collected: List[PointFailure] = []
    for result in results:
        collected.extend(result.failures)
    return collected


def results_from_store(
    store: ResultStore,
    protocols: Optional[Sequence[str]] = None,
) -> List[SweepResult]:
    """Aggregate whatever a store holds, without simulating anything.

    Groups every completed point by (protocol, scenario, rate) — a
    partially-populated store yields partial results, each point
    averaged over the seeds actually present. Powers ``repro figure
    --from DIR`` and ``repro validate --from DIR``.
    """
    groups: Dict[Tuple[str, str, float], List[Tuple[int, RunSummary]]] = {}
    for (protocol, scenario, rate, seed), summary in store.completed().items():
        if protocols is not None and protocol not in protocols:
            continue
        groups.setdefault((protocol, scenario, rate), []).append((seed, summary))
    results: List[SweepResult] = []
    for (protocol, scenario, rate) in sorted(groups):
        per_seed = [s for _, s in sorted(groups[(protocol, scenario, rate)],
                                         key=lambda pair: pair[0])]
        results.append(aggregate(protocol, scenario, rate, per_seed))
    return results
