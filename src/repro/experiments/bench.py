"""The ``repro bench`` performance benchmark.

Ownership: this module owns **performance measurement** -- a fixed,
committed workload and its baseline comparison. It deliberately does
not use the sweep runner or the result store: a benchmark wants
identical, unresumed, freshly-timed runs every time, where a campaign
wants to skip everything it already knows.

A fixed sweep of paper-scale scenarios measured for event-loop
throughput, with the result committed to the repository as
``benchmarks/BENCH_<rev>.json``. Each PR that touches the kernel or the
PHY re-runs the sweep and compares against the committed baseline, so
"make the hot path faster" (the ROADMAP's north star) is a measured
claim instead of a hope, and accidental slowdowns fail CI.

Three tiers:

* **full** -- three 40-node paper-scale runs (RMAC x2 seeds, BMMM x1),
  a few hundred thousand events each. This is the number quoted in
  ``BENCH_*.json`` and in PR descriptions.
* **smoke** -- a 12-node run (~13k events) finishing in well under a
  second, plus a same-scale ``sinr-shadowing`` companion through the
  SINR interference subsystem; cheap enough for CI on every push. CI
  compares events/sec against the committed baseline with a generous
  regression threshold (wall-clock on shared runners is noisy), which
  also fails the build if SINR work slows the threshold path.
* **large** -- the scaling tier (200/500/1000 nodes, static + random
  waypoint) exercising the spatial-grid link path, a ``sinr-500``
  point measuring accumulated-power reception under shadowing at 500
  nodes, plus
  ``neighbor-rebuild`` microbenchmark points that time whole-bucket
  link-table rebuilds on the grid path against the brute-force
  per-sender path on identical trajectories (asserting the tables are
  exactly equal first). The 1000-node waypoint point additionally
  re-runs the full stack with indexing forced to brute and asserts
  bit-identical ``RunSummary`` metrics -- the "measurably faster,
  bit-identical results" contract, measured.

The smoke/full sweeps are **static-only** (no mobility) on purpose:
static scenarios exercise the frozen-link fast path and keep the
per-run ``metrics`` block bit-identical across machines and across
mobility-model changes, so the baseline doubles as a determinism
regression check -- same seeds must produce the same delivery/
retransmission/delay numbers, or something changed protocol behavior
rather than just speed. (At 12-40 nodes they also stay below the
``auto`` grid threshold, so they time the original brute path
unchanged.)
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.scenarios import sinr_preset
from repro.world.network import ScenarioConfig, build_network

#: RunSummary fields captured per point; all deterministic given the seed.
METRIC_FIELDS = (
    "delivery_ratio",
    "avg_delay_s",
    "max_delay_s",
    "avg_drop_ratio",
    "avg_retx_ratio",
    "avg_txoh_ratio",
    "mrts_len_avg",
    "mrts_len_max",
    "abort_avg",
    "n_generated",
    "total_deliveries",
    "total_drops",
    "total_retransmissions",
)


def _point(mode: str, protocol: str, seed: int, repeat: int = 1, **config) -> dict:
    return {"mode": mode, "protocol": protocol, "seed": seed,
            "repeat": repeat, "config": config}


_FULL_SCALE = dict(n_nodes=40, width=360.0, height=220.0, rate_pps=20.0, n_packets=120)

#: The committed full sweep (static, paper-scale).
FULL_POINTS: List[dict] = [
    _point("full", "rmac", 1, **_FULL_SCALE),
    _point("full", "rmac", 2, **_FULL_SCALE),
    _point("full", "bmmm", 3, **_FULL_SCALE),
]

#: The CI smoke sweep: one small static run, best-of-3 -- a cold
#: process's first run pays interpreter warm-up that would otherwise
#: read as a 30%+ "regression" on an 80 ms benchmark. The labeled
#: ``sinr-shadowing`` companion runs the same scale through the SINR
#: subsystem (accumulated-power reception under lognormal shadowing),
#: so CI measures the interference path's cost separately -- the
#: unlabeled threshold-path point must stay untouched by SINR work.
#: Point configs hold live ``SinrConfig`` objects; points are consumed
#: in-process by :func:`run_point` and never serialized (only the
#: resulting records are).
SMOKE_POINTS: List[dict] = [
    _point("smoke", "rmac", 2, repeat=3, n_nodes=12, width=200.0,
           height=140.0, rate_pps=5.0, n_packets=10),
    {**_point("smoke", "rmac", 5, repeat=3, n_nodes=12, width=200.0,
              height=140.0, rate_pps=5.0, n_packets=10,
              sinr=sinr_preset("shadowing")),
     "label": "sinr-shadowing"},
    # The same scenario through the calendar kernel: CI's cheap guard
    # that the alternative kernel neither breaks nor bit-rots (its
    # metrics must stay identical to the unlabeled heap point's, and
    # its events/sec rides the same regression gate).
    {**_point("smoke", "rmac", 2, repeat=3, n_nodes=12, width=200.0,
              height=140.0, rate_pps=5.0, n_packets=10),
     "label": "kernel-calendar", "kernel": "calendar"},
]

#: Field sizes for the scaling tier, chosen to keep the paper's node
#: density (75 nodes per 500x300 m) roughly constant so connected
#: placements stay drawable at every size.
_LARGE_FIELDS: Dict[int, Tuple[float, float]] = {
    200: (715.0, 450.0),
    500: (1130.0, 700.0),
    1000: (1600.0, 1000.0),
}

#: Light traffic for the scaling tier: the point is topology scale, not
#: offered load, and 1000-node full-stack runs must finish in minutes.
_LARGE_TRAFFIC = dict(rate_pps=2.0, n_packets=6, warmup_s=2.0, drain_s=2.0)


def _large_point(n_nodes: int, mobile: bool, seed: int, **extra) -> dict:
    width, height = _LARGE_FIELDS[n_nodes]
    point = _point("large", "rmac", seed, n_nodes=n_nodes, width=width,
                   height=height, mobile=mobile, **_LARGE_TRAFFIC)
    point["label"] = f"{'waypoint' if mobile else 'static'}-{n_nodes}"
    point.update(extra)
    return point


def _rebuild_point(n_nodes: int, epochs: int, seed: int = 1) -> dict:
    width, height = _LARGE_FIELDS[n_nodes]
    return {"mode": "large", "protocol": "neighbors", "seed": seed,
            "kind": "neighbor-rebuild", "label": f"rebuild-{n_nodes}",
            "n_nodes": n_nodes, "width": width, "height": height,
            "epochs": epochs}


def _kernel_point(kernel: str, n_events: int = 400_000) -> dict:
    return {"mode": "large", "protocol": "kernel", "seed": 1,
            "kind": "kernel-micro", "label": f"kernel-{kernel}",
            "kernel": kernel, "n_events": n_events}


#: The scaling tier. Full-stack points run with the default ``auto``
#: indexing (grid at these sizes); ``compare_brute`` re-runs the same
#: scenario with indexing forced to brute and asserts bit-identical
#: metrics. ``neighbor-rebuild`` points time the link-table layer alone
#: (grid vs brute) -- the apples-to-apples number for the spatial index
#: itself, free of event-loop dilution.
LARGE_POINTS: List[dict] = [
    _large_point(200, False, 1),
    _large_point(200, True, 1),
    _large_point(500, False, 1),
    _large_point(500, True, 1),
    _large_point(1000, False, 1),
    # The headline point (ROADMAP: the 1M events/sec lane) runs on the
    # calendar kernel; ``compare_kernel`` re-runs it on the heap and
    # asserts bit-identical metrics, recording ``heap_eps`` and the
    # kernel speedup alongside the brute-indexing comparison. Best-of-3
    # like the gated smoke points: a single sample of a 5-second run on
    # a shared machine is too noisy for a headline number.
    _large_point(1000, True, 1, repeat=3, compare_brute=True,
                 compare_kernel=True, kernel="calendar"),
    # SINR scaling point: 500 static nodes under lognormal shadowing
    # with interference accounting on -- the nightly number for "what
    # does accumulated-power reception cost at scale". Crafted by hand
    # because the sinr config must land inside ``config`` (where
    # ``_large_point``'s extra kwargs land top-level).
    {**_point("large", "rmac", 1, n_nodes=500,
              width=_LARGE_FIELDS[500][0], height=_LARGE_FIELDS[500][1],
              mobile=False, sinr=sinr_preset("shadowing"),
              **_LARGE_TRAFFIC),
     "label": "sinr-500"},
    _rebuild_point(200, epochs=40),
    _rebuild_point(500, epochs=30),
    _rebuild_point(1000, epochs=20),
    # Kernel microbenchmarks: the synthetic scheduling workload of
    # :func:`_run_kernel_point` on each kernel, free of protocol-stack
    # dilution -- the apples-to-apples number for the queues themselves.
    _kernel_point("heap"),
    _kernel_point("calendar"),
]

#: ``repro bench --tier <name>`` choices.
TIER_NAMES = ("smoke", "full", "large")


def tier_points(tier: str) -> List[dict]:
    """The point set for one tier.

    Resolved at call time (not via a module-level dict frozen at import),
    so tests can monkeypatch the point lists.
    """
    try:
        return {"smoke": SMOKE_POINTS, "full": FULL_POINTS,
                "large": LARGE_POINTS}[tier]
    except KeyError:
        raise ValueError(f"unknown bench tier {tier!r}") from None


def git_rev(cwd: Optional[str] = None) -> str:
    """Short git revision of ``cwd`` (or the process cwd); ``unknown``
    outside a repository or without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_point(point: dict) -> dict:
    """Run one benchmark point and return its JSON-serializable record.

    A point with ``repeat > 1`` runs that many times and keeps the
    fastest repetition's timing (standard microbenchmark practice: the
    minimum is the least-noisy estimator). Every repetition must produce
    identical events and metrics -- a free determinism check; a mismatch
    raises rather than silently averaging nondeterministic runs.

    ``kind: "neighbor-rebuild"`` points bypass the full stack and time
    the link-table layer directly (see :func:`_run_rebuild_point`).
    """
    if point.get("kind") == "neighbor-rebuild":
        return _run_rebuild_point(point)
    if point.get("kind") == "kernel-micro":
        return _run_kernel_point(point)
    kernel = point.get("kernel", "heap")
    best = None
    for _ in range(max(1, int(point.get("repeat", 1)))):
        config = ScenarioConfig(
            protocol=point["protocol"],
            seed=point["seed"],
            collect_telemetry=True,
            **point["config"],
        )
        summary = build_network(config, kernel=kernel).run()
        telemetry = summary.telemetry or {}
        record = {
            "mode": point["mode"],
            "protocol": point["protocol"],
            "seed": point["seed"],
            "label": point.get("label"),
            "kernel": kernel,
            "events": summary.events_processed,
            "wall_s": summary.wall_time_s,
            "eps": summary.events_per_sec,
            "metrics": {name: getattr(summary, name) for name in METRIC_FIELDS},
            "subsystem_wall_s": telemetry.get("subsystem_wall_s", {}),
        }
        neighbors = telemetry.get("neighbors")
        if neighbors is not None:
            record["neighbors"] = neighbors
        if best is None:
            best = record
        else:
            if (record["events"], record["metrics"]) != (best["events"], best["metrics"]):
                raise RuntimeError(
                    f"nondeterministic benchmark point {point['protocol']}/"
                    f"seed{point['seed']}: repeated run diverged"
                )
            if (record["wall_s"] or 0.0) < (best["wall_s"] or 0.0):
                best = record
    if point.get("compare_brute"):
        # Same scenario, same seeds, indexing forced to brute on the
        # built network (ScenarioConfig -- and so every config_hash --
        # is untouched). The metrics must match bit-for-bit; the wall
        # clocks are the honest end-to-end grid-vs-brute comparison.
        config = ScenarioConfig(
            protocol=point["protocol"],
            seed=point["seed"],
            collect_telemetry=True,
            **point["config"],
        )
        network = build_network(config, kernel=kernel)
        network.testbed.neighbors.force_indexing("brute")
        brute = network.run()
        brute_metrics = {name: getattr(brute, name) for name in METRIC_FIELDS}
        if brute_metrics != best["metrics"]:
            drifted = sorted(name for name in METRIC_FIELDS
                             if brute_metrics[name] != best["metrics"][name])
            raise RuntimeError(
                f"grid vs brute metrics diverged on {point.get('label')}: "
                f"{', '.join(drifted)}"
            )
        best["brute_eps"] = brute.events_per_sec
        if brute.events_per_sec and best["eps"]:
            best["e2e_speedup_vs_brute"] = best["eps"] / brute.events_per_sec
    if point.get("compare_kernel"):
        # Same scenario on the *other* kernel (heap when the primary is
        # calendar and vice versa). Kernels are bit-identical by
        # contract, so the metrics must match exactly; the two clocks
        # are the end-to-end kernel comparison at full-stack scale.
        other = "heap" if kernel != "heap" else "calendar"
        config = ScenarioConfig(
            protocol=point["protocol"],
            seed=point["seed"],
            collect_telemetry=True,
            **point["config"],
        )
        alt = build_network(config, kernel=other).run()
        alt_metrics = {name: getattr(alt, name) for name in METRIC_FIELDS}
        if alt_metrics != best["metrics"]:
            drifted = sorted(name for name in METRIC_FIELDS
                             if alt_metrics[name] != best["metrics"][name])
            raise RuntimeError(
                f"{kernel} vs {other} kernel metrics diverged on "
                f"{point.get('label')}: {', '.join(drifted)}"
            )
        best[f"{other}_eps"] = alt.events_per_sec
        if alt.events_per_sec and best["eps"]:
            best["kernel_speedup"] = best["eps"] / alt.events_per_sec
    return best


def _run_rebuild_point(point: dict) -> dict:
    """Time whole-bucket link-table rebuilds: grid vs brute, same world.

    Places ``n_nodes`` nodes, attaches random-waypoint mobility, then
    queries every sender's links across ``epochs`` consecutive mobility
    buckets -- the dense access pattern under which the grid path runs
    its batched whole-bucket rebuilds (the adaptive first epoch, served
    lazily before the density upgrade kicks in, is included in the timed
    pass). Waypoint legs are materialized up front so neither timed pass
    pays them, and the two paths' tables are asserted exactly equal
    (first and last epoch) before anything is timed. ``speedup`` is the
    recorded grid-over-brute link-evaluation throughput ratio.
    """
    import random as _random
    from time import perf_counter

    from repro.mobility.base import MobilityProvider
    from repro.mobility.waypoint import RandomWaypointModel
    from repro.phy.neighbors import NeighborService
    from repro.phy.propagation import UnitDiskModel
    from repro.sim.rng import derive_seed
    from repro.world.placement import random_placement

    n = point["n_nodes"]
    epochs = point["epochs"]
    width, height = point["width"], point["height"]
    window = 50_000_000
    master = _random.Random(derive_seed(point["seed"], "bench-rebuild"))
    coords = random_placement(n, width, height, master,
                              require_connected=False)
    models = [
        RandomWaypointModel(
            x, y, width, height, 0.5, 8.0, 2.0,
            _random.Random(derive_seed(point["seed"], "bench-rebuild-wp", i)),
        )
        for i, (x, y) in enumerate(coords)
    ]
    provider = MobilityProvider(models)
    times = [epoch * window for epoch in range(epochs)]
    for t in times:
        provider.positions(t)
    model = UnitDiskModel(75.0)

    check_grid = NeighborService(provider, model, cache_window=window,
                                 indexing="grid")
    check_brute = NeighborService(provider, model, cache_window=window,
                                  indexing="brute")
    for t in (times[0], times[-1]):
        for sender in range(n):
            if check_grid.links_from(sender, t) != check_brute.links_from(sender, t):
                raise RuntimeError(
                    f"grid vs brute link tables diverged at n={n}, t={t}")

    # Interleaved best-of-5 (fresh service each repeat, same min-wall
    # precedent as the smoke point): shared hosts show multi-second CPU
    # steal windows, so alternating the passes lets both mins sample the
    # same quiet periods instead of one path eating a noisy stretch.
    walls = {"brute": float("inf"), "grid": float("inf")}
    served = {}
    for _ in range(5):
        for mode in ("brute", "grid"):
            service = NeighborService(provider, model, cache_window=window,
                                      indexing=mode)
            count = 0
            start = perf_counter()
            for t in times:
                for sender in range(n):
                    count += len(service.links_from(sender, t))
            walls[mode] = min(walls[mode], perf_counter() - start)
            served[mode] = count
    if served["grid"] != served["brute"]:
        raise RuntimeError("grid vs brute served different link counts")
    links = served["grid"]
    return {
        "mode": point["mode"],
        "protocol": point["protocol"],
        "seed": point["seed"],
        "label": point["label"],
        "kind": "neighbor-rebuild",
        "n_nodes": n,
        "epochs": epochs,
        # Excluded from the report's event-loop aggregate on purpose:
        # these are link evaluations, not simulator events.
        "events": 0,
        "wall_s": 0.0,
        "eps": None,
        "links_built": links,
        "brute_wall_s": walls["brute"],
        "grid_wall_s": walls["grid"],
        "links_per_sec_brute": links / walls["brute"] if walls["brute"] > 0 else 0.0,
        "links_per_sec_grid": links / walls["grid"] if walls["grid"] > 0 else 0.0,
        "speedup": (walls["brute"] / walls["grid"]) if walls["grid"] > 0 else 0.0,
        "metrics": {"links_built": links},
    }


def _run_kernel_point(point: dict) -> dict:
    """Time the event kernel alone on a synthetic scheduling workload.

    The workload mirrors the simulator's real timing structure -- the
    distribution calendar queues exploit and heaps pay log(n) for:

    * 64 self-rescheduling ticks at the 20 us slot quantum with small
      per-"node" phase skews (the MAC backoff pumps);
    * every 16th tick, an 8-way ``schedule_many`` fan-out at
      millisecond-scale offsets (the PHY arrival fan-out);
    * every 32nd tick, a cancellable timer, half of them cancelled
      before firing (lazy-deletion pressure on the queue).

    Pure scheduling -- the callbacks do no protocol work -- so the
    events/sec here is the kernel ceiling, free of stack dilution.
    Best-of-3, min wall.
    """
    from time import perf_counter

    from repro.sim.engine import FastEvent, Simulator

    slot = 20_000  # ns, the MAC slot quantum

    class _Noop(FastEvent):
        __slots__ = ()
        label = "kernel-fanout"

        def __call__(self) -> None:
            pass

    noop = _Noop()

    class _Tick(FastEvent):
        __slots__ = ("sim", "phase", "count")
        label = "kernel-tick"

        def __init__(self, sim: Simulator, phase: int):
            self.sim = sim
            self.phase = phase
            self.count = 0

        def __call__(self) -> None:
            sim = self.sim
            count = self.count = self.count + 1
            now = sim.now
            if not count % 16:
                base = now + 1_000_000 + self.phase * 131
                sim.schedule_many(
                    [(base + i * 37_000, noop) for i in range(8)])
            if not count % 32:
                handle = sim.after(250_000 + self.phase * 7,
                                   _cancel_target, label="kernel-timer")
                if not count % 64:
                    handle.cancel()
            sim.schedule_fast(now + slot + (self.phase & 7) * 1_500, self)

    def _cancel_target() -> None:
        pass

    kernel = point["kernel"]
    n_events = point["n_events"]
    best = float("inf")
    executed = 0
    for _ in range(3):
        sim = Simulator(kernel=kernel)
        for phase in range(64):
            sim.after(phase * 311, _Tick(sim, phase), label="kernel-tick")
        start = perf_counter()
        sim.run(max_events=n_events)
        best = min(best, perf_counter() - start)
        executed = sim.events_processed
    return {
        "mode": point["mode"],
        "protocol": point["protocol"],
        "seed": point["seed"],
        "label": point["label"],
        "kind": "kernel-micro",
        "kernel": kernel,
        "events": executed,
        "wall_s": best,
        "eps": (executed / best) if best > 0 else 0.0,
        "metrics": {"events": executed},
    }


def run_bench(points: Sequence[dict], rev: Optional[str] = None,
              progress=None) -> dict:
    """Run ``points`` and assemble the benchmark report.

    ``progress``, when given, is called with each finished point record.
    The report's top-level ``events_per_sec`` is the aggregate (total
    events over total wall time), which weights long runs more -- the
    honest number for "how fast is the kernel".
    """
    records = []
    for point in points:
        record = run_point(point)
        records.append(record)
        if progress is not None:
            progress(record)
    total_events = sum(r["events"] or 0 for r in records)
    total_wall = sum(r["wall_s"] or 0.0 for r in records)
    return {
        "rev": rev if rev is not None else git_rev(),
        "events": total_events,
        "wall_s": total_wall,
        "events_per_sec": (total_events / total_wall) if total_wall > 0 else 0.0,
        "points": records,
    }


# ----------------------------------------------------------------------
# Baseline discovery and comparison
# ----------------------------------------------------------------------
def find_baseline(directory: str) -> Optional[str]:
    """Path of the newest committed ``BENCH_<rev>.json`` in ``directory``
    (by modification time; None if the directory has no baselines)."""
    try:
        names = [
            name for name in os.listdir(directory)
            if name.startswith("BENCH_") and name.endswith(".json")
        ]
    except OSError:
        return None
    if not names:
        return None
    paths = [os.path.join(directory, name) for name in names]
    return max(paths, key=os.path.getmtime)


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare(report: dict, baseline: dict,
            max_regression: float = 0.30) -> Tuple[bool, List[str]]:
    """Compare ``report`` against a committed ``baseline``.

    Returns ``(ok, lines)``. The run **fails** (ok=False) when a point
    present in both sweeps lost more than ``max_regression`` of its
    events/sec. Metric drift on matching points is *reported* but does
    not fail the comparison here -- it means behavior changed, which a
    benchmark threshold is the wrong tool to police (the tier-1 suite
    owns correctness); it still deserves a loud line in the output.
    """
    by_key: Dict[tuple, dict] = {
        _point_key(p): p for p in baseline.get("points", [])
    }
    ok = True
    lines: List[str] = []
    for point in report.get("points", []):
        key = _point_key(point)
        base = by_key.get(key)
        label = _point_label(point)
        if base is None:
            lines.append(f"{label}: no baseline point (new)")
            continue
        old_eps, new_eps = base.get("eps") or 0.0, point.get("eps") or 0.0
        if old_eps > 0:
            ratio = new_eps / old_eps
            line = (f"{label}: {new_eps:,.0f} ev/s vs baseline "
                    f"{old_eps:,.0f} ({ratio:.2f}x)")
            if ratio < 1.0 - max_regression:
                ok = False
                line += f"  REGRESSION (> {max_regression:.0%} slower)"
            lines.append(line)
        if base.get("metrics") != point.get("metrics"):
            old_metrics = base.get("metrics", {})
            new_metrics = point.get("metrics", {})
            drifted = sorted(
                name for name in set(old_metrics) | set(new_metrics)
                if old_metrics.get(name) != new_metrics.get(name)
            )
            lines.append(f"{label}: METRIC DRIFT in {', '.join(drifted)} -- "
                         f"same seed no longer reproduces the baseline run")
    return ok, lines


def _point_key(point: dict) -> tuple:
    """Identity of a point across reports. ``label`` distinguishes the
    scaling-tier points (which share mode/protocol/seed); older baseline
    files have no labels and key as None, matching unlabeled points."""
    return (point["mode"], point["protocol"], point["seed"], point.get("label"))


def _point_label(point: dict) -> str:
    label = f"{point['mode']} {point['protocol']}/seed{point['seed']}"
    if point.get("label"):
        label += f" [{point['label']}]"
    return label


def render(report: dict) -> str:
    """A compact human-readable view of one report."""
    lines = [f"rev {report['rev']}: {report['events']} events in "
             f"{report['wall_s']:.2f}s = {report['events_per_sec']:,.0f} ev/s"]
    for point in report["points"]:
        lines.append("  " + render_point(point))
    return "\n".join(lines)


def render_point(point: dict) -> str:
    """One point's result as a single line (also the progress format)."""
    if point.get("kind") == "neighbor-rebuild":
        return (
            f"{_point_label(point)}: {point['links_built']} links x "
            f"{point['epochs']} epochs, grid "
            f"{point['links_per_sec_grid']:,.0f} links/s vs brute "
            f"{point['links_per_sec_brute']:,.0f} ({point['speedup']:.1f}x)"
        )
    if point.get("kind") == "kernel-micro":
        return (f"{_point_label(point)}: {point['events']} synthetic ev @ "
                f"{point['eps']:,.0f}/s on the {point['kernel']} kernel")
    top = sorted((point.get("subsystem_wall_s") or {}).items(),
                 key=lambda kv: -kv[1])[:4]
    subsystems = ", ".join(f"{name}={secs * 1e3:.0f}ms" for name, secs in top)
    line = (f"{_point_label(point)}: "
            f"{point['events']} ev @ {point['eps']:,.0f}/s")
    if point.get("kernel") and point["kernel"] != "heap":
        line += f" [{point['kernel']} kernel]"
    if point.get("brute_eps"):
        line += (f" (brute rerun {point['brute_eps']:,.0f}/s, "
                 f"{point.get('e2e_speedup_vs_brute', 0.0):.2f}x e2e)")
    if point.get("heap_eps"):
        line += (f" (heap rerun {point['heap_eps']:,.0f}/s, "
                 f"{point.get('kernel_speedup', 0.0):.2f}x kernel)")
    if subsystems:
        line += f"  [{subsystems}]"
    return line


def markdown_table(report: dict, baseline: Optional[dict] = None) -> str:
    """A GitHub-flavored markdown comparison table (for CI job summaries).

    One row per point: current events/sec against the committed
    baseline's. Rebuild points report link evaluations/sec and their
    grid-over-brute speedup instead.
    """
    by_key: Dict[tuple, dict] = {
        _point_key(p): p for p in (baseline or {}).get("points", [])
    }
    lines = ["| point | events/sec | baseline | ratio |",
             "| --- | ---: | ---: | ---: |"]
    for point in report.get("points", []):
        base = by_key.get(_point_key(point))
        if point.get("kind") == "neighbor-rebuild":
            current = f"{point['links_per_sec_grid']:,.0f} links/s"
            base_eps = (base or {}).get("links_per_sec_grid")
            base_cell = f"{base_eps:,.0f} links/s" if base_eps else "--"
            ratio = (f"{point['links_per_sec_grid'] / base_eps:.2f}x"
                     if base_eps else f"{point['speedup']:.1f}x vs brute")
            lines.append(f"| {_point_label(point)} | {current} "
                         f"| {base_cell} | {ratio} |")
            continue
        eps = point.get("eps") or 0.0
        base_eps = (base or {}).get("eps") or 0.0
        ratio = f"{eps / base_eps:.2f}x" if base_eps > 0 else "--"
        base_cell = f"{base_eps:,.0f}" if base_eps > 0 else "--"
        lines.append(f"| {_point_label(point)} | {eps:,.0f} "
                     f"| {base_cell} | {ratio} |")
    return "\n".join(lines)
