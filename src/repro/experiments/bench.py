"""The ``repro bench`` performance benchmark.

Ownership: this module owns **performance measurement** -- a fixed,
committed workload and its baseline comparison. It deliberately does
not use the sweep runner or the result store: a benchmark wants
identical, unresumed, freshly-timed runs every time, where a campaign
wants to skip everything it already knows.

A fixed sweep of paper-scale scenarios measured for event-loop
throughput, with the result committed to the repository as
``benchmarks/BENCH_<rev>.json``. Each PR that touches the kernel or the
PHY re-runs the sweep and compares against the committed baseline, so
"make the hot path faster" (the ROADMAP's north star) is a measured
claim instead of a hope, and accidental slowdowns fail CI.

Two modes:

* **full** -- three 40-node paper-scale runs (RMAC x2 seeds, BMMM x1),
  a few hundred thousand events each. This is the number quoted in
  ``BENCH_*.json`` and in PR descriptions.
* **smoke** -- one 12-node run (~13k events) finishing in well under a
  second; cheap enough for CI on every push. CI compares its
  events/sec against the committed baseline with a generous regression
  threshold (wall-clock on shared runners is noisy).

The sweep is **static-only** (no mobility) on purpose: static scenarios
exercise the frozen-link fast path and keep the per-run ``metrics``
block bit-identical across machines and across mobility-model changes,
so the baseline doubles as a determinism regression check -- same
seeds must produce the same delivery/retransmission/delay numbers,
or something changed protocol behavior rather than just speed.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Dict, List, Optional, Sequence, Tuple

from repro.world.network import ScenarioConfig, build_network

#: RunSummary fields captured per point; all deterministic given the seed.
METRIC_FIELDS = (
    "delivery_ratio",
    "avg_delay_s",
    "max_delay_s",
    "avg_drop_ratio",
    "avg_retx_ratio",
    "avg_txoh_ratio",
    "mrts_len_avg",
    "mrts_len_max",
    "abort_avg",
    "n_generated",
    "total_deliveries",
    "total_drops",
    "total_retransmissions",
)


def _point(mode: str, protocol: str, seed: int, repeat: int = 1, **config) -> dict:
    return {"mode": mode, "protocol": protocol, "seed": seed,
            "repeat": repeat, "config": config}


_FULL_SCALE = dict(n_nodes=40, width=360.0, height=220.0, rate_pps=20.0, n_packets=120)

#: The committed full sweep (static, paper-scale).
FULL_POINTS: List[dict] = [
    _point("full", "rmac", 1, **_FULL_SCALE),
    _point("full", "rmac", 2, **_FULL_SCALE),
    _point("full", "bmmm", 3, **_FULL_SCALE),
]

#: The CI smoke sweep: one small static run, best-of-3 -- a cold
#: process's first run pays interpreter warm-up that would otherwise
#: read as a 30%+ "regression" on an 80 ms benchmark.
SMOKE_POINTS: List[dict] = [
    _point("smoke", "rmac", 2, repeat=3, n_nodes=12, width=200.0,
           height=140.0, rate_pps=5.0, n_packets=10),
]


def git_rev(cwd: Optional[str] = None) -> str:
    """Short git revision of ``cwd`` (or the process cwd); ``unknown``
    outside a repository or without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_point(point: dict) -> dict:
    """Run one benchmark point and return its JSON-serializable record.

    A point with ``repeat > 1`` runs that many times and keeps the
    fastest repetition's timing (standard microbenchmark practice: the
    minimum is the least-noisy estimator). Every repetition must produce
    identical events and metrics -- a free determinism check; a mismatch
    raises rather than silently averaging nondeterministic runs.
    """
    best = None
    for _ in range(max(1, int(point.get("repeat", 1)))):
        config = ScenarioConfig(
            protocol=point["protocol"],
            seed=point["seed"],
            collect_telemetry=True,
            **point["config"],
        )
        summary = build_network(config).run()
        telemetry = summary.telemetry or {}
        record = {
            "mode": point["mode"],
            "protocol": point["protocol"],
            "seed": point["seed"],
            "events": summary.events_processed,
            "wall_s": summary.wall_time_s,
            "eps": summary.events_per_sec,
            "metrics": {name: getattr(summary, name) for name in METRIC_FIELDS},
            "subsystem_wall_s": telemetry.get("subsystem_wall_s", {}),
        }
        if best is None:
            best = record
        else:
            if (record["events"], record["metrics"]) != (best["events"], best["metrics"]):
                raise RuntimeError(
                    f"nondeterministic benchmark point {point['protocol']}/"
                    f"seed{point['seed']}: repeated run diverged"
                )
            if (record["wall_s"] or 0.0) < (best["wall_s"] or 0.0):
                best = record
    return best


def run_bench(points: Sequence[dict], rev: Optional[str] = None,
              progress=None) -> dict:
    """Run ``points`` and assemble the benchmark report.

    ``progress``, when given, is called with each finished point record.
    The report's top-level ``events_per_sec`` is the aggregate (total
    events over total wall time), which weights long runs more -- the
    honest number for "how fast is the kernel".
    """
    records = []
    for point in points:
        record = run_point(point)
        records.append(record)
        if progress is not None:
            progress(record)
    total_events = sum(r["events"] or 0 for r in records)
    total_wall = sum(r["wall_s"] or 0.0 for r in records)
    return {
        "rev": rev if rev is not None else git_rev(),
        "events": total_events,
        "wall_s": total_wall,
        "events_per_sec": (total_events / total_wall) if total_wall > 0 else 0.0,
        "points": records,
    }


# ----------------------------------------------------------------------
# Baseline discovery and comparison
# ----------------------------------------------------------------------
def find_baseline(directory: str) -> Optional[str]:
    """Path of the newest committed ``BENCH_<rev>.json`` in ``directory``
    (by modification time; None if the directory has no baselines)."""
    try:
        names = [
            name for name in os.listdir(directory)
            if name.startswith("BENCH_") and name.endswith(".json")
        ]
    except OSError:
        return None
    if not names:
        return None
    paths = [os.path.join(directory, name) for name in names]
    return max(paths, key=os.path.getmtime)


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def compare(report: dict, baseline: dict,
            max_regression: float = 0.30) -> Tuple[bool, List[str]]:
    """Compare ``report`` against a committed ``baseline``.

    Returns ``(ok, lines)``. The run **fails** (ok=False) when a point
    present in both sweeps lost more than ``max_regression`` of its
    events/sec. Metric drift on matching points is *reported* but does
    not fail the comparison here -- it means behavior changed, which a
    benchmark threshold is the wrong tool to police (the tier-1 suite
    owns correctness); it still deserves a loud line in the output.
    """
    by_key: Dict[tuple, dict] = {
        (p["mode"], p["protocol"], p["seed"]): p for p in baseline.get("points", [])
    }
    ok = True
    lines: List[str] = []
    for point in report.get("points", []):
        key = (point["mode"], point["protocol"], point["seed"])
        base = by_key.get(key)
        label = f"{key[0]} {key[1]}/seed{key[2]}"
        if base is None:
            lines.append(f"{label}: no baseline point (new)")
            continue
        old_eps, new_eps = base.get("eps") or 0.0, point.get("eps") or 0.0
        if old_eps > 0:
            ratio = new_eps / old_eps
            line = (f"{label}: {new_eps:,.0f} ev/s vs baseline "
                    f"{old_eps:,.0f} ({ratio:.2f}x)")
            if ratio < 1.0 - max_regression:
                ok = False
                line += f"  REGRESSION (> {max_regression:.0%} slower)"
            lines.append(line)
        if base.get("metrics") != point.get("metrics"):
            drifted = sorted(
                name for name in METRIC_FIELDS
                if base.get("metrics", {}).get(name) != point.get("metrics", {}).get(name)
            )
            lines.append(f"{label}: METRIC DRIFT in {', '.join(drifted)} -- "
                         f"same seed no longer reproduces the baseline run")
    return ok, lines


def render(report: dict) -> str:
    """A compact human-readable view of one report."""
    lines = [f"rev {report['rev']}: {report['events']} events in "
             f"{report['wall_s']:.2f}s = {report['events_per_sec']:,.0f} ev/s"]
    for point in report["points"]:
        top = sorted((point.get("subsystem_wall_s") or {}).items(),
                     key=lambda kv: -kv[1])[:4]
        subsystems = ", ".join(f"{name}={secs * 1e3:.0f}ms" for name, secs in top)
        lines.append(
            f"  {point['mode']} {point['protocol']}/seed{point['seed']}: "
            f"{point['events']} ev @ {point['eps']:,.0f}/s"
            + (f"  [{subsystems}]" if subsystems else "")
        )
    return "\n".join(lines)
