"""Checkpointed experiment campaigns (the orchestration layer).

Ownership: :class:`Campaign` owns the **workflow** — defining the
matrix, recording it in the store's manifest, resuming after an
interruption, and reporting progress. Execution (process pool, retries,
failure capture) is delegated to :func:`repro.experiments.runner.run_sweep`,
which writes through the store as jobs complete; persistence (record
format, hashing, durability) is owned by
:class:`repro.experiments.store.ResultStore`.

A paper-scale sweep (480 runs at 10 000 packets) takes hours in pure
Python. A campaign makes that survivable: every finished (protocol,
scenario, rate, seed) point is durably appended to the store before the
next one starts, so the process can be killed at any instant and
re-invoked — only missing, failed, or configuration-changed points are
re-simulated, and the resumed aggregates are bit-identical to an
uninterrupted run (``tests/experiments/test_campaign.py`` asserts this).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ProgressFn,
    SweepResult,
    aggregate,
    run_sweep,
)
from repro.experiments.store import PointKey, ResultStore, config_hash, point_key
from repro.world.network import ScenarioConfig

MakeConfig = Callable[[str, str, float, int], ScenarioConfig]


class Campaign:
    """A resumable sweep persisted to an on-disk result store.

    ``store`` is a directory path (created on demand; a v0 single-file
    JSON checkpoint at that path is migrated in place) or an already-open
    :class:`ResultStore`.
    """

    def __init__(self, store):
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)

    @property
    def path(self) -> str:
        return self.store.directory

    def __len__(self) -> int:
        """Completed points on disk."""
        return len(self.store)

    # ------------------------------------------------------------------
    def run(
        self,
        protocols: Sequence[str],
        scenarios: Sequence[str],
        rates: Sequence[float],
        seeds: Sequence[int],
        make_config: MakeConfig,
        *,
        workers: int = 0,
        retries: int = 0,
        strict: bool = False,
        progress: Optional[ProgressFn] = None,
        manifest_extra: Optional[dict] = None,
    ) -> List[SweepResult]:
        """Run (or resume) the matrix; every completed point is durably
        on disk before the next begins. Returns aggregated results.

        Accepts the runner's execution knobs (``workers``, ``retries``,
        ``strict``, ``progress``) unchanged. ``manifest_extra`` merges
        extra keys (e.g. the CLI's ``scale``) into the stored manifest
        so ``repro campaign status`` can rebuild the matrix later.
        """
        manifest = {
            "protocols": [str(p) for p in protocols],
            "scenarios": [str(s) for s in scenarios],
            "rates": [float(r) for r in rates],
            "seeds": [int(s) for s in seeds],
        }
        manifest.update(manifest_extra or {})
        self.store.write_manifest(manifest)
        return run_sweep(
            protocols, scenarios, rates, seeds, make_config,
            workers, retries=retries, strict=strict, progress=progress,
            store=self.store,
        )

    # ------------------------------------------------------------------
    def aggregate(
        self,
        protocols: Sequence[str],
        scenarios: Sequence[str],
        rates: Sequence[float],
        seeds: Sequence[int],
    ) -> List[SweepResult]:
        """Aggregate stored points for a matrix (only points present are
        used; a point with no stored seeds is omitted entirely)."""
        completed = self.store.completed()
        results: List[SweepResult] = []
        for protocol in protocols:
            for scenario in scenarios:
                for rate in rates:
                    summaries = []
                    for seed in seeds:
                        summary = completed.get(point_key(protocol, scenario, rate, seed))
                        if summary is not None:
                            summaries.append(summary)
                    if summaries:
                        results.append(aggregate(protocol, scenario, rate, summaries))
        return results

    # ------------------------------------------------------------------
    def expected_hashes(self, make_config: MakeConfig) -> Optional[Dict[PointKey, str]]:
        """key -> config hash for the manifest's full matrix (no
        simulation — just config construction), or None without a
        manifest."""
        manifest = self.store.manifest()
        if manifest is None:
            return None
        expected: Dict[PointKey, str] = {}
        for protocol in manifest["protocols"]:
            for scenario in manifest["scenarios"]:
                for rate in manifest["rates"]:
                    for seed in manifest["seeds"]:
                        config = make_config(protocol, scenario, rate, seed)
                        expected[point_key(protocol, scenario, rate, seed)] = (
                            config_hash(config)
                        )
        return expected

    def status(self, make_config: Optional[MakeConfig] = None) -> dict:
        """Progress report: totals plus per-(protocol, scenario) rows.

        With ``make_config`` (and a stored manifest) the report also
        distinguishes *stale* points — completed under a configuration
        whose hash no longer matches — from missing ones.
        """
        expected = self.expected_hashes(make_config) if make_config else None
        totals = self.store.status(expected)
        per_group: Dict[tuple, dict] = {}

        def group(protocol, scenario):
            return per_group.setdefault(
                (protocol, scenario),
                {"protocol": protocol, "scenario": scenario,
                 "done": 0, "failed": 0, "stale": 0,
                 "total": 0 if expected is not None else None},
            )

        if expected is not None:
            for (protocol, scenario, _r, _s) in expected:
                group(protocol, scenario)["total"] += 1
        for (protocol, scenario, rate, seed), record in self.store.records():
            row = group(protocol, scenario)
            key = (protocol, scenario, rate, seed)
            if record["status"] != "ok":
                row["failed"] += 1
            elif expected is not None and expected.get(key) not in (
                    None, record["config_hash"]):
                row["stale"] += 1
            else:
                row["done"] += 1
        totals["rows"] = [per_group[k] for k in sorted(per_group)]
        return totals
