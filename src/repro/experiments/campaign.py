"""Checkpointed experiment campaigns.

A paper-scale sweep (480 runs at 10 000 packets) takes hours in pure
Python; a campaign persists every finished point to a JSON file so the
sweep can be interrupted and resumed, and the analysis notebooks can load
partial results. Results are keyed by (protocol, scenario, rate, seed) and
a fingerprint of the scenario config, so a changed configuration never
silently reuses stale points.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import SweepResult, aggregate, run_point
from repro.metrics.summary import RunSummary
from repro.world.network import ScenarioConfig


def _config_fingerprint(config: ScenarioConfig) -> str:
    payload = asdict(config)
    return json.dumps(payload, sort_keys=True, default=str)


def _point_key(protocol: str, scenario: str, rate: float, seed: int) -> str:
    return f"{protocol}|{scenario}|{rate}|{seed}"


class Campaign:
    """A resumable sweep persisted to a JSON file."""

    def __init__(self, path: str):
        self.path = path
        self._store: Dict[str, dict] = {}
        if os.path.exists(path):
            with open(path) as fh:
                self._store = json.load(fh)

    # ------------------------------------------------------------------
    def _save(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._store, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    def run(
        self,
        protocols: Sequence[str],
        scenarios: Sequence[str],
        rates: Sequence[float],
        seeds: Sequence[int],
        make_config: Callable[[str, str, float, int], ScenarioConfig],
        progress: Optional[Callable[[str, int, int], None]] = None,
    ) -> List[SweepResult]:
        """Run (or resume) the matrix; every completed point is flushed to
        disk immediately. Returns aggregated sweep results."""
        matrix: List[Tuple[str, str, float, int]] = [
            (p, sc, r, se)
            for p in protocols for sc in scenarios for r in rates for se in seeds
        ]
        done = 0
        for protocol, scenario, rate, seed in matrix:
            key = _point_key(protocol, scenario, rate, seed)
            config = make_config(protocol, scenario, rate, seed)
            fingerprint = _config_fingerprint(config)
            entry = self._store.get(key)
            if entry is None or entry["fingerprint"] != fingerprint:
                summary = run_point(config)
                self._store[key] = {
                    "fingerprint": fingerprint,
                    "summary": asdict(summary),
                }
                self._save()
            done += 1
            if progress is not None:
                progress(key, done, len(matrix))
        return self.aggregate(protocols, scenarios, rates, seeds)

    def aggregate(
        self,
        protocols: Sequence[str],
        scenarios: Sequence[str],
        rates: Sequence[float],
        seeds: Sequence[int],
    ) -> List[SweepResult]:
        """Aggregate stored points (only points present are used)."""
        results: List[SweepResult] = []
        for protocol in protocols:
            for scenario in scenarios:
                for rate in rates:
                    summaries = []
                    for seed in seeds:
                        entry = self._store.get(_point_key(protocol, scenario, rate, seed))
                        if entry is not None:
                            summaries.append(RunSummary(**entry["summary"]))
                    if summaries:
                        results.append(aggregate(protocol, scenario, rate, summaries))
        return results
