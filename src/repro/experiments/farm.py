"""Distributed campaign farm: a sharded multi-process work-queue executor.

Ownership: this module owns **distributed execution** — sharding a
campaign's (protocol, scenario, rate, seed) points across worker
processes, keeping the workers fed (work-stealing), surviving their
deaths (lease requeue + shard replay), and folding the per-shard result
stores back into one canonical store. Scenario construction stays in
:mod:`~repro.experiments.scenarios`, persistence in
:mod:`~repro.experiments.store` (the farm only composes ``ResultStore``
directories), aggregation in :mod:`~repro.experiments.runner`.

Why not just ``run_sweep(workers=N)``? A process pool ties the
campaign's durability to one coordinator's ``results.jsonl`` and gives
a crashed worker's in-flight work back only via pool semantics. At the
ROADMAP's 10^5–10^6-point scale the farm needs stronger properties:

* **Sharded stores.** Every worker appends to its *own*
  ``ResultStore`` directory (``DIR/shards/shard-NN/``), so there is no
  cross-process write contention and a worker's completed points are
  durable the instant its ``record_success`` returns — independent of
  every other process, the coordinator included.
* **Deterministic point→shard assignment.** A point's home shard is
  ``int(config_hash, 16) % n_shards``. The assignment depends only on
  the point's configuration, so a re-invoked farm rebuilds the same
  queues and a shard store can always be traced back to the points it
  was responsible for.
* **Work-stealing.** A worker whose home queue drains steals from the
  *longest* remaining queue, so one slow shard (an unlucky mix of
  high-rate points) cannot leave the other cores idle. Stolen points
  are recorded in the thief's shard store; the merge does not care.
* **Crash detection + lease requeue.** The coordinator leases exactly
  one job to a worker at a time and watches process liveness. A killed
  worker's leased job returns to the front of its home queue and runs
  elsewhere; the dead worker's partial shard store is *replayed* on the
  next farm run (its completed points are served as cached), never
  discarded.
* **Deterministic merge.** :func:`repro.experiments.store.merge_stores`
  folds the shard stores into the canonical root store
  (``DIR/results.jsonl``) — per point bit-identical (``config_hash``
  and ``RunSummary`` dict) to a single-process ``repro campaign run``
  of the same spec, because every point is a deterministic function of
  its config and the record format is shared.

Liveness is observable while the farm runs: the coordinator maintains
``DIR/farm.json`` and every worker heartbeats ``DIR/workers/worker-NN
.json`` (atomic replace, one write per lease/completion), which is what
``repro campaign serve --out DIR`` reads — see :func:`farm_status` for
the exact fields. Farm counters (done/stolen/requeued, worker deaths)
thread into the :class:`~repro.sim.telemetry.Telemetry` pipeline as a
``"farm"`` section.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.runner import (
    Job,
    PointFailure,
    ProgressFn,
    SweepResult,
    build_jobs,
    collect_results,
    run_point,
)
from repro.experiments.store import (
    ResultStore,
    config_hash,
    merge_stores,
)
from repro.metrics.summary import RunSummary

#: Subdirectory of the farm root holding one ResultStore per shard.
SHARDS_DIR = "shards"
#: Subdirectory holding one heartbeat JSON file per worker.
WORKERS_DIR = "workers"
#: Coordinator state file (started_at, totals, progress, state).
FARM_STATE = "farm.json"

#: A worker heartbeat older than this is reported dead by the serve
#: endpoint even if its pid still exists (e.g. a stopped process).
HEARTBEAT_STALE_S = 30.0


class FarmError(RuntimeError):
    """The farm cannot make progress (every worker died)."""


def shard_index(point_hash: str, n_shards: int) -> int:
    """Deterministic home shard for a point: hash mod shard count."""
    return int(point_hash, 16) % n_shards


def shard_name(index: int) -> str:
    return f"shard-{index:02d}"


def shard_dirs(root: str, n_shards: int) -> List[str]:
    return [os.path.join(root, SHARDS_DIR, shard_name(i))
            for i in range(n_shards)]


def existing_shard_dirs(root: str) -> List[str]:
    """Every shard store directory present under ``root``, sorted —
    including shards left by an earlier run with a different worker
    count (their points replay into the new queues all the same)."""
    base = os.path.join(root, SHARDS_DIR)
    if not os.path.isdir(base):
        return []
    return sorted(
        os.path.join(base, name) for name in os.listdir(base)
        if os.path.isdir(os.path.join(base, name))
    )


@dataclass
class FarmCounters:
    """Execution counters for one farm run (a telemetry section)."""

    points_total: int = 0
    points_cached: int = 0
    points_done: int = 0
    points_failed: int = 0
    points_stolen: int = 0
    points_requeued: int = 0
    workers_spawned: int = 0
    workers_died: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "points_total": self.points_total,
            "points_cached": self.points_cached,
            "points_done": self.points_done,
            "points_failed": self.points_failed,
            "points_stolen": self.points_stolen,
            "points_requeued": self.points_requeued,
            "workers_spawned": self.workers_spawned,
            "workers_died": self.workers_died,
        }


def _write_json_atomic(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _write_heartbeat(path: str, worker_id: int, done: int, status: str,
                     last_key: Optional[str]) -> None:
    _write_json_atomic(path, {
        "worker": worker_id,
        "pid": os.getpid(),
        "time": time.time(),
        "status": status,
        "done": done,
        "last_key": last_key,
    })


def _worker_main(worker_id: int, shard_dir: str, heartbeat_path: str,
                 task_queue, result_queue, retries: int) -> None:
    """One farm worker: lease → simulate → append to own shard → ack.

    The shard-store append (fsynced) happens *before* the ack, so a
    worker killed between the two leaves a durable record; the
    coordinator requeues the lease and the re-run's identical record is
    deduplicated by the merge.
    """
    store = ResultStore(shard_dir)
    done = 0
    while True:
        task = task_queue.get()
        if task is None:
            _write_heartbeat(heartbeat_path, worker_id, done, "stopped", None)
            return
        job, job_hash = task
        _write_heartbeat(heartbeat_path, worker_id, done, "leased", job.key)
        summary: Optional[RunSummary] = None
        error: Optional[str] = None
        attempts = 0
        for attempt in range(1, retries + 2):
            attempts = attempt
            try:
                summary = run_point(job.config)
                break
            except Exception as exc:  # captured, never fatal to the farm
                error = f"{type(exc).__name__}: {exc}"
        if summary is not None:
            store.record_success(job.protocol, job.scenario, job.rate_pps,
                                 job.seed, job_hash, summary)
            error = None
        else:
            store.record_failure(job.protocol, job.scenario, job.rate_pps,
                                 job.seed, job_hash, error=error or "unknown",
                                 attempts=attempts)
        done += 1
        _write_heartbeat(heartbeat_path, worker_id, done, "idle", job.key)
        result_queue.put((worker_id, job.key, summary, error, attempts))


class CampaignFarm:
    """A sharded multi-process campaign over one farm directory.

    ``out`` is the farm root; it doubles as the canonical merged
    :class:`ResultStore`, so after :meth:`run` the directory works with
    every store consumer unchanged (``repro campaign status --out``,
    ``repro figure --from``, ``repro validate --from``).
    """

    def __init__(self, out: str):
        self.store = ResultStore(out)
        self.counters = FarmCounters()

    @property
    def path(self) -> str:
        return self.store.directory

    def __len__(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    def run(
        self,
        protocols: Sequence[str],
        scenarios: Sequence[str],
        rates: Sequence[float],
        seeds: Sequence[int],
        make_config,
        *,
        workers: Optional[int] = None,
        retries: int = 0,
        progress: Optional[ProgressFn] = None,
        manifest_extra: Optional[dict] = None,
        telemetry=None,
        poll_s: float = 0.2,
    ) -> List[SweepResult]:
        """Run (or resume) the matrix across ``workers`` processes.

        Resume sources, in order: the canonical root store, then every
        existing shard store (a dead worker's partial shard is replayed
        here). Completed points are served as cached; everything else is
        queued to its home shard, executed, merged, and aggregated.
        ``telemetry`` (a :class:`~repro.sim.telemetry.Telemetry`) gets
        the farm counters as a ``"farm"`` section.
        """
        jobs = build_jobs(protocols, scenarios, rates, seeds, make_config)
        hashes = {job.key: config_hash(job.config) for job in jobs}
        n_workers = max(1, min(workers or os.cpu_count() or 1,
                               max(len(jobs), 1)))

        manifest = {
            "protocols": [str(p) for p in protocols],
            "scenarios": [str(s) for s in scenarios],
            "rates": [float(r) for r in rates],
            "seeds": [int(s) for s in seeds],
            "farm": {"workers": n_workers, "shards": n_workers},
        }
        manifest.update(manifest_extra or {})
        self.store.write_manifest(manifest)

        # -- resume: root store first, then every shard left on disk ----
        cached: Dict[str, RunSummary] = {}
        replay_stores = [ResultStore(d) for d in
                         existing_shard_dirs(self.path)]
        for job in jobs:
            hit = self.store.get(job.protocol, job.scenario, job.rate_pps,
                                 job.seed, hashes[job.key])
            for source in replay_stores if hit is None else ():
                hit = source.get(job.protocol, job.scenario, job.rate_pps,
                                 job.seed, hashes[job.key])
                if hit is not None:
                    break
            if hit is not None:
                cached[job.key] = hit

        counters = self.counters = FarmCounters(
            points_total=len(jobs), points_cached=len(cached))
        to_run = [job for job in jobs if job.key not in cached]
        total = len(jobs)
        done_offset = len(cached)
        if progress is not None:
            for done, key in enumerate(cached, start=1):
                progress(done, total, key + " (cached)", None)

        outcomes: Dict[str, object] = dict(cached)
        started_at = time.time()
        self._write_state("running", started_at, total, counters)

        if to_run:
            self._execute(to_run, hashes, n_workers, retries, progress,
                          total, done_offset, outcomes, counters,
                          started_at, poll_s)

        # -- merge: fold every shard store into the canonical root ------
        merged = merge_stores(
            self.store,
            [ResultStore(d) for d in existing_shard_dirs(self.path)],
        )
        self._write_state("done", started_at, total, counters,
                          merged=merged)
        if telemetry is not None:
            telemetry.set_section("farm", counters.as_dict())
        return collect_results(jobs, seeds, outcomes)

    # ------------------------------------------------------------------
    def _execute(self, to_run, hashes, n_workers, retries, progress,
                 total, done_offset, outcomes, counters, started_at,
                 poll_s) -> None:
        """The coordinator loop: dispatch, steal, detect death, requeue."""
        os.makedirs(os.path.join(self.path, WORKERS_DIR), exist_ok=True)
        jobs_by_key = {job.key: job for job in to_run}
        dirs = shard_dirs(self.path, n_workers)
        pending: List[Deque[Tuple[Job, str]]] = [deque()
                                                 for _ in range(n_workers)]
        for job in to_run:
            job_hash = hashes[job.key]
            pending[shard_index(job_hash, n_workers)].append((job, job_hash))

        ctx = multiprocessing.get_context()
        result_queue = ctx.Queue()
        task_queues = [ctx.Queue() for _ in range(n_workers)]
        procs: Dict[int, object] = {}
        heartbeat = {
            i: os.path.join(self.path, WORKERS_DIR, f"worker-{i:02d}.json")
            for i in range(n_workers)
        }
        for i in range(n_workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(i, dirs[i], heartbeat[i], task_queues[i],
                      result_queue, retries),
                daemon=True,
            )
            proc.start()
            procs[i] = proc
            counters.workers_spawned += 1

        leased: Dict[int, Tuple[Job, str]] = {}
        idle: Set[int] = set()
        dead: Set[int] = set()
        completed_keys: Set[str] = set()
        last_state_write = time.time()

        def next_task(worker_id: int):
            """Home queue first; otherwise steal from the longest one."""
            if pending[worker_id]:
                return pending[worker_id].popleft()
            richest = max(range(n_workers), key=lambda s: len(pending[s]))
            if pending[richest]:
                counters.points_stolen += 1
                return pending[richest].pop()
            return None

        def dispatch(worker_id: int) -> None:
            task = next_task(worker_id)
            if task is None:
                idle.add(worker_id)
                return
            leased[worker_id] = task
            task_queues[worker_id].put(task)

        def cancel_duplicate(key: str) -> None:
            """Drop a still-queued requeue of an already-completed job
            (the original worker's ack raced its death detection)."""
            for shard_queue in pending:
                for task in shard_queue:
                    if task[0].key == key:
                        shard_queue.remove(task)
                        return

        try:
            for i in range(n_workers):
                dispatch(i)
            while len(completed_keys) < len(to_run):
                try:
                    message = result_queue.get(timeout=poll_s)
                except queue_module.Empty:
                    message = None
                if message is not None:
                    worker_id, key, summary, error, attempts = message
                    task = leased.pop(worker_id, None)
                    job = jobs_by_key[key]
                    if summary is not None:
                        outcomes[key] = summary
                    else:
                        outcomes[key] = PointFailure(
                            protocol=job.protocol, scenario=job.scenario,
                            rate_pps=job.rate_pps, seed=job.seed,
                            error=error or "unknown",
                            traceback="(see the worker's shard store)",
                            attempts=attempts,
                        )
                    if key not in completed_keys:
                        completed_keys.add(key)
                        if summary is not None:
                            counters.points_done += 1
                        else:
                            counters.points_failed += 1
                        cancel_duplicate(key)
                        if progress is not None:
                            progress(done_offset + len(completed_keys),
                                     total, key, error)
                    if worker_id not in dead and task is not None:
                        dispatch(worker_id)
                # -- liveness: requeue the leases of dead workers -------
                for worker_id, proc in procs.items():
                    if worker_id in dead or proc.is_alive():
                        continue
                    dead.add(worker_id)
                    counters.workers_died += 1
                    task = leased.pop(worker_id, None)
                    if task is not None and task[0].key not in completed_keys:
                        counters.points_requeued += 1
                        job, job_hash = task
                        pending[shard_index(job_hash, n_workers)].appendleft(
                            task)
                        for w in sorted(idle - dead):
                            idle.discard(w)
                            dispatch(w)
                alive = [w for w in procs if w not in dead]
                if not alive and len(completed_keys) < len(to_run):
                    raise FarmError(
                        f"all {len(procs)} farm workers died with "
                        f"{len(to_run) - len(completed_keys)} point(s) "
                        f"unfinished; completed work is in the shard "
                        f"stores — re-run to resume")
                now = time.time()
                if now - last_state_write >= 1.0:
                    last_state_write = now
                    self._write_state("running", started_at, total, counters)
        finally:
            for worker_id, proc in procs.items():
                if proc.is_alive():
                    task_queues[worker_id].put(None)
            for proc in procs.values():
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for q in task_queues + [result_queue]:
                q.cancel_join_thread()
                q.close()

    # ------------------------------------------------------------------
    def _write_state(self, state: str, started_at: float, total: int,
                     counters: FarmCounters, merged: Optional[dict] = None,
                     ) -> None:
        payload = {
            "state": state,
            "pid": os.getpid(),
            "started_at": started_at,
            "updated_at": time.time(),
            "total": total,
            "counters": counters.as_dict(),
        }
        if merged is not None:
            payload["merged"] = merged
        _write_json_atomic(os.path.join(self.path, FARM_STATE), payload)


# ---------------------------------------------------------------------------
# Status (what `repro campaign serve` publishes)
# ---------------------------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (OSError, TypeError):
        return False
    return True


def farm_status(out: str, now: Optional[float] = None) -> dict:
    """One JSON-ready snapshot of a farm directory's live progress.

    Computed purely from on-disk state (shard manifests, heartbeats,
    ``farm.json``) so it works from any process at any moment — during
    the run, after a crash, or long after completion. Fields are
    documented in ``docs/campaign-farm.md`` ("The serve endpoint").
    """
    now = time.time() if now is None else now
    root = ResultStore(out, create=False)
    manifest = root.manifest() or {}
    state_path = os.path.join(out, FARM_STATE)
    state: dict = {}
    if os.path.exists(state_path):
        with open(state_path) as fh:
            state = json.load(fh)

    ok_keys: Set[tuple] = set()
    failed_keys: Set[tuple] = set()
    shards = []
    shard_stores = [("", root)]
    for directory in existing_shard_dirs(out):
        shard_stores.append((os.path.basename(directory),
                             ResultStore(directory)))
    for name, store in shard_stores:
        ok = failed = 0
        for key, record in store.records():
            if record["status"] == "ok":
                ok += 1
                ok_keys.add(key)
            else:
                failed += 1
                failed_keys.add(key)
        if name:
            shards.append({"shard": name, "ok": ok, "failed": failed})

    done = len(ok_keys)
    failed = len(failed_keys - ok_keys)
    total = None
    if all(k in manifest for k in ("protocols", "scenarios", "rates", "seeds")):
        total = (len(manifest["protocols"]) * len(manifest["scenarios"])
                 * len(manifest["rates"]) * len(manifest["seeds"]))
    missing = None if total is None else max(total - done - failed, 0)

    started_at = state.get("started_at")
    cached = (state.get("counters") or {}).get("points_cached", 0)
    points_per_sec = eta_s = None
    if started_at and now > started_at and done > cached:
        points_per_sec = (done - cached) / (now - started_at)
        if missing is not None and points_per_sec > 0:
            eta_s = missing / points_per_sec

    workers = []
    workers_dir = os.path.join(out, WORKERS_DIR)
    if os.path.isdir(workers_dir):
        for name in sorted(os.listdir(workers_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(workers_dir, name)) as fh:
                    beat = json.load(fh)
            except (OSError, ValueError):
                continue
            age = now - beat.get("time", 0.0)
            alive = (beat.get("status") not in ("stopped",)
                     and _pid_alive(beat.get("pid"))
                     and age < HEARTBEAT_STALE_S)
            workers.append({
                "worker": beat.get("worker"),
                "pid": beat.get("pid"),
                "status": beat.get("status"),
                "alive": alive,
                "age_s": round(age, 3),
                "done": beat.get("done"),
                "last_key": beat.get("last_key"),
            })

    return {
        "state": state.get("state", "unknown"),
        "total": total,
        "done": done,
        "failed": failed,
        "missing": missing,
        "cached": cached,
        "points_per_sec": points_per_sec,
        "eta_s": eta_s,
        "counters": state.get("counters"),
        "workers": workers,
        "workers_alive": sum(1 for w in workers if w["alive"]),
        "shards": shards,
        "updated_at": now,
    }


def render_farm_status(status: dict) -> str:
    """A compact human-readable form of :func:`farm_status`."""
    lines = []
    total = status["total"]
    head = (f"{status['done']}/{total}" if total is not None
            else str(status["done"]))
    lines.append(f"farm [{status['state']}]: {head} points done, "
                 f"{status['failed']} failed"
                 + (f", {status['missing']} missing"
                    if status["missing"] is not None else ""))
    if status["points_per_sec"]:
        eta = (f", eta {status['eta_s']:.0f}s"
               if status["eta_s"] is not None else "")
        lines.append(f"rate: {status['points_per_sec']:.2f} points/s{eta}")
    for worker in status["workers"]:
        flag = "alive" if worker["alive"] else "dead"
        lines.append(f"worker {worker['worker']}: {flag} "
                     f"({worker['status']}, {worker['done']} done, "
                     f"heartbeat {worker['age_s']:.1f}s ago)")
    for shard in status["shards"]:
        lines.append(f"{shard['shard']}: {shard['ok']} ok, "
                     f"{shard['failed']} failed")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The serve endpoint
# ---------------------------------------------------------------------------

def make_status_server(out: str, host: str = "127.0.0.1", port: int = 8765):
    """A threading HTTP server publishing a farm directory's status.

    ``GET /status`` returns the :func:`farm_status` JSON (recomputed
    from disk per request, so long-polling it streams live progress);
    ``GET /`` returns the human-readable rendering. The caller owns the
    server lifecycle (``serve_forever`` / ``shutdown``).
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            try:
                status = farm_status(out)
            except FileNotFoundError:
                self.send_error(404, "no farm store at %r" % out)
                return
            if self.path.rstrip("/") in ("", "/"):
                body = render_farm_status(status).encode()
                content_type = "text/plain; charset=utf-8"
            elif self.path == "/status":
                body = (json.dumps(status, indent=1, sort_keys=True)
                        + "\n").encode()
                content_type = "application/json"
            else:
                self.send_error(404, "unknown path (try / or /status)")
                return
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # quiet; status is pull-based
            pass

    return ThreadingHTTPServer((host, port), Handler)
