"""The paper's experiment matrix (Section 4.1).

Ownership: this module owns **scenario construction** -- mapping
(protocol, scenario, rate, seed) to a full ``ScenarioConfig`` at paper
or bench scale. It never executes anything; the runner calls these
factories, and the result store hashes their output to decide whether a
stored point is still valid.

Three mobility scenarios x eight source rates x two protocols, ten random
placements each, 10 000 packets of 500 bytes per run, on 75 nodes over
500 m x 300 m with 75 m range at 2 Mb/s.

Full paper scale takes hours in pure Python, so two presets exist:

* :func:`paper_scenario` -- the exact Section 4.1 parameters;
* :func:`scaled_scenario` -- the same network and rates with fewer
  packets/seeds, used by the committed benchmarks (each bench documents
  its scale). Shapes -- orderings, crossovers -- are preserved; absolute
  confidence intervals are wider.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.phy.sinr import SinrConfig
from repro.world.network import ScenarioConfig

#: The paper's eight source rates (packets/second).
PAPER_RATES: Tuple[int, ...] = (5, 10, 20, 40, 60, 80, 100, 120)

#: The three mobility scenarios of Section 4.1.2.
SCENARIOS: Dict[str, dict] = {
    "stationary": dict(mobile=False),
    "speed1": dict(mobile=True, min_speed=0.0, max_speed=4.0, pause_s=10.0),
    "speed2": dict(mobile=True, min_speed=0.0, max_speed=8.0, pause_s=5.0),
}


#: Named SINR/interference profiles (see :mod:`repro.phy.sinr`). Each is
#: a complete :class:`SinrConfig`; :func:`sinr_preset` applies overrides.
SINR_PROFILES: Dict[str, dict] = {
    # Log-distance path loss + lognormal shadowing (the default richer
    # channel): link-specific ranges, hidden interference, SINR decode.
    "shadowing": dict(propagation="shadowing"),
    # Deterministic log-distance path loss (circular ranges) with
    # accumulated-interference reception.
    "logdistance": dict(propagation="logdistance"),
    # The paper's fixed-range geometry with SINR reception on top:
    # every in-range signal is equally strong, so this reduces to the
    # overlap-collision rule (the equivalence-oracle profile).
    "unitdisk": dict(propagation="unitdisk"),
    # Shadowing plus Rayleigh fast fading per arrival.
    "fading": dict(propagation="shadowing", fading="rayleigh"),
}


def sinr_preset(profile: str, **overrides) -> SinrConfig:
    """A :class:`SinrConfig` from a named profile plus field overrides.

    ``sinr_preset("shadowing", shadowing_sigma_db=8.0)`` etc.; profiles
    are listed in :data:`SINR_PROFILES`.
    """
    if profile not in SINR_PROFILES:
        raise ValueError(
            f"unknown SINR profile {profile!r}; have {sorted(SINR_PROFILES)}")
    fields = dict(SINR_PROFILES[profile])
    fields.update(overrides)
    return SinrConfig(**fields)


def paper_scenario(
    protocol: str,
    scenario: str,
    rate_pps: float,
    seed: int,
    n_packets: int = 10_000,
) -> ScenarioConfig:
    """One run at the paper's full parameters."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}")
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=75,
        width=500.0,
        height=300.0,
        radio_range=75.0,
        rate_pps=rate_pps,
        n_packets=n_packets,
        payload_bytes=500,
        seed=seed,
        **SCENARIOS[scenario],
    )


def scaled_scenario(
    protocol: str,
    scenario: str,
    rate_pps: float,
    seed: int,
    n_packets: int = 300,
    n_nodes: int = 75,
) -> ScenarioConfig:
    """The bench-scale variant: fewer packets, and (optionally) fewer
    nodes on a proportionally smaller plain so node density -- and with
    it contention and tree depth per hop -- matches the paper's."""
    config = paper_scenario(protocol, scenario, rate_pps, seed, n_packets=n_packets)
    if n_nodes != config.n_nodes:
        shrink = (n_nodes / config.n_nodes) ** 0.5
        config = config.variant(
            n_nodes=n_nodes,
            width=config.width * shrink,
            height=config.height * shrink,
            # Scale speeds with the plain so relative mobility (meters
            # moved per radio range per second) matches the paper's.
            min_speed=config.min_speed * shrink,
            max_speed=config.max_speed * shrink,
        )
    return config
