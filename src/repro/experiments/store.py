"""Append-only on-disk result store for experiment campaigns.

Ownership: this module owns **persistence only** — the record format,
the config hash, durability, and migration of legacy checkpoints. It
knows nothing about how points are executed (``runner``), how they are
averaged (``runner.aggregate``), or what they mean (``figures``,
``analysis``); those layers read and write through :class:`ResultStore`.

A store is a *directory* holding:

* ``results.jsonl`` — one JSON record per line, append-only. A record
  is either a completed point or a captured failure; a later record for
  the same (protocol, scenario, rate, seed) supersedes earlier ones, so
  a re-run after a failure simply appends the success.
* ``manifest.json`` — optional campaign matrix (written by
  ``repro campaign run``) so ``repro campaign status`` can report
  missing and stale counts without the caller re-deriving the matrix.
* ``legacy.json`` — byte-for-byte backup of a migrated v0 store.

Record schema (version 1)::

    {"v": 1, "protocol": "rmac", "scenario": "stationary",
     "rate_pps": 10.0, "seed": 1, "config_hash": "<16 hex chars>",
     "status": "ok", "summary": {... RunSummary fields ...}}

    {"v": 1, ..., "status": "failed", "error": "...", "attempts": 2}

``config_hash`` is SHA-256 over the canonical JSON of the full
:class:`~repro.world.network.ScenarioConfig` (sorted keys), truncated
to 16 hex characters: a stored point is only reused when the *entire*
configuration that produced it is unchanged.

Compatibility rules:

* unknown top-level keys and unknown ``summary`` keys are ignored, so
  newer stores load under older code (forward compatibility);
* a record missing a required ``RunSummary`` field raises a clear
  ``ValueError`` when its summary is materialized — never a silent
  partial summary;
* a truncated final line (the process was killed mid-append) is
  skipped; malformed lines elsewhere are skipped too and counted in
  :attr:`ResultStore.corrupt_lines`;
* a *file* at the store path is treated as a v0 single-JSON campaign
  checkpoint (the pre-store ``Campaign`` format) and migrated in place:
  the file becomes a directory of the same name, the original bytes are
  kept as ``legacy.json``, and every entry is re-appended under schema
  v1. The v0 fingerprint was exactly the canonical config JSON, so its
  hash equals the new ``config_hash`` and migrated points survive a
  resume without re-simulating.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.metrics.summary import RunSummary

#: Record schema version written by this code.
SCHEMA_VERSION = 1

#: A point's identity within a store: (protocol, scenario, rate, seed).
PointKey = Tuple[str, str, float, int]


def _canonical_default(obj) -> object:
    """JSON fallback for non-dataclass config members.

    Objects exposing ``to_dict`` (the ``BitErrorModel`` inside a
    ``FaultPlan``) serialize through their stable parameter dict --
    ``str()`` would embed a memory address and break hash determinism.
    """
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return str(obj)


def canonical_config_json(config) -> str:
    """The canonical JSON form of a ScenarioConfig (hashing input).

    Fields still at the value they had before they existed (``faults``
    is None, ``oracle`` is False) are dropped, so every hash computed
    before those fields were added remains valid and stored campaign
    points survive the schema growth without re-simulating.
    """
    payload = asdict(config)
    if payload.get("faults", "absent") is None:
        del payload["faults"]
    if payload.get("oracle", "absent") is False:
        del payload["oracle"]
    if payload.get("sinr", "absent") is None:
        del payload["sinr"]
    return json.dumps(payload, sort_keys=True, default=_canonical_default)


def hash_canonical(canonical: str) -> str:
    """SHA-256 of a canonical config string, truncated to 16 hex chars."""
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def config_hash(config) -> str:
    """Stable fingerprint of a full scenario configuration."""
    return hash_canonical(canonical_config_json(config))


def point_key(protocol: str, scenario: str, rate_pps: float, seed: int) -> PointKey:
    """Normalized store key (rate as float, seed as int)."""
    return (str(protocol), str(scenario), float(rate_pps), int(seed))


class ResultStore:
    """An append-only directory store of completed sweep points.

    Open with ``ResultStore(path)`` to create-or-resume, or
    ``ResultStore(path, create=False)`` to require an existing store
    (the read-only CLI paths: ``status``, ``figure --from``).
    """

    RESULTS_NAME = "results.jsonl"
    MANIFEST_NAME = "manifest.json"
    LEGACY_NAME = "legacy.json"

    def __init__(self, directory: str, create: bool = True):
        if os.path.isfile(directory):
            self._migrate_legacy_file(directory)
        elif not os.path.isdir(directory):
            if not create:
                raise FileNotFoundError(f"no result store at {directory!r}")
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, self.RESULTS_NAME)
        #: Malformed non-final lines skipped during load.
        self.corrupt_lines = 0
        self._records: Dict[PointKey, dict] = {}
        self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            lines = fh.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = point_key(record["protocol"], record["scenario"],
                                record["rate_pps"], record["seed"])
            except (ValueError, KeyError, TypeError):
                # The final line may be a half-written record from a
                # killed process; anything else is counted as corrupt.
                if index != len(lines) - 1:
                    self.corrupt_lines += 1
                continue
            self._records[key] = record

    def _migrate_legacy_file(self, path: str) -> None:
        """Upgrade a v0 single-JSON checkpoint file into a directory."""
        with open(path) as fh:
            raw = fh.read()
        legacy = json.loads(raw)
        os.unlink(path)
        os.makedirs(path)
        with open(os.path.join(path, self.LEGACY_NAME), "w") as fh:
            fh.write(raw)
        with open(os.path.join(path, self.RESULTS_NAME), "w") as fh:
            for key, entry in legacy.items():
                protocol, scenario, rate, seed = key.split("|")
                record = {
                    "v": SCHEMA_VERSION,
                    "protocol": protocol,
                    "scenario": scenario,
                    "rate_pps": float(rate),
                    "seed": int(seed),
                    # The v0 fingerprint is the canonical config JSON.
                    "config_hash": hash_canonical(entry["fingerprint"]),
                    "status": "ok",
                    "summary": entry["summary"],
                }
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    # -- appending -----------------------------------------------------
    def _append(self, key: PointKey, record: dict) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._records[key] = record

    def record_success(self, protocol: str, scenario: str, rate_pps: float,
                       seed: int, config_hash: str,
                       summary: RunSummary) -> None:
        """Persist one completed point (durable before returning)."""
        key = point_key(protocol, scenario, rate_pps, seed)
        self._append(key, {
            "v": SCHEMA_VERSION,
            "protocol": key[0], "scenario": key[1],
            "rate_pps": key[2], "seed": key[3],
            "config_hash": config_hash,
            "status": "ok",
            "summary": summary.to_dict(),
        })

    def record_failure(self, protocol: str, scenario: str, rate_pps: float,
                       seed: int, config_hash: str, error: str,
                       attempts: int = 1) -> None:
        """Persist one captured failure (always re-run on resume)."""
        key = point_key(protocol, scenario, rate_pps, seed)
        self._append(key, {
            "v": SCHEMA_VERSION,
            "protocol": key[0], "scenario": key[1],
            "rate_pps": key[2], "seed": key[3],
            "config_hash": config_hash,
            "status": "failed",
            "error": error,
            "attempts": attempts,
        })

    # -- reading -------------------------------------------------------
    def get(self, protocol: str, scenario: str, rate_pps: float, seed: int,
            config_hash: str) -> Optional[RunSummary]:
        """The stored summary for a point, iff completed under this
        exact configuration hash (stale and failed records miss)."""
        record = self._records.get(point_key(protocol, scenario, rate_pps, seed))
        if (record is None or record["status"] != "ok"
                or record["config_hash"] != config_hash):
            return None
        return RunSummary.from_dict(record["summary"])

    def completed(self) -> Dict[PointKey, RunSummary]:
        """Every completed point, whatever its hash (aggregation input)."""
        return {
            key: RunSummary.from_dict(record["summary"])
            for key, record in self._records.items()
            if record["status"] == "ok"
        }

    def failures(self) -> Dict[PointKey, dict]:
        """Points whose latest record is a captured failure."""
        return {key: record for key, record in self._records.items()
                if record["status"] == "failed"}

    def records(self) -> Iterator[Tuple[PointKey, dict]]:
        """(key, latest record) pairs, unordered."""
        return iter(self._records.items())

    def __len__(self) -> int:
        return sum(1 for r in self._records.values() if r["status"] == "ok")

    def __contains__(self, key: PointKey) -> bool:
        record = self._records.get(key)
        return record is not None and record["status"] == "ok"

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, self.MANIFEST_NAME)

    def write_manifest(self, manifest: dict) -> None:
        """Record the campaign matrix (atomic replace)."""
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.manifest_path)

    def manifest(self) -> Optional[dict]:
        """The stored campaign matrix, or None if never written."""
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path) as fh:
            return json.load(fh)

    # -- status --------------------------------------------------------
    def status(self, expected: Optional[Dict[PointKey, str]] = None) -> dict:
        """Progress counts; with ``expected`` (key -> config_hash for
        the full matrix) also reports missing and stale points."""
        if expected is None:
            done = len(self)
            failed = len(self.failures())
            return {"total": None, "done": done, "failed": failed,
                    "stale": 0, "missing": None}
        done = failed = stale = 0
        for key, want_hash in expected.items():
            record = self._records.get(key)
            if record is None:
                continue
            if record["status"] == "ok" and record["config_hash"] == want_hash:
                done += 1
            elif record["status"] == "ok":
                stale += 1
            else:
                failed += 1
        total = len(expected)
        return {"total": total, "done": done, "failed": failed,
                "stale": stale, "missing": total - done - failed - stale}


def merge_stores(target: ResultStore,
                 sources: Sequence[ResultStore]) -> Dict[str, int]:
    """Fold ``sources`` (e.g. a farm's shard stores) into ``target``.

    Per point, the winning record is decided deterministically:

    * an ``ok`` record always beats a ``failed`` one (a success recorded
      by any shard supersedes a failure recorded by another);
    * between records of equal status, the *later* source wins
      (last-record-wins, with ``target``'s existing record counting as
      the earliest) — within one source the store's own replay already
      keeps only its last record per point;
    * a record identical to the one already in ``target`` is not
      re-appended, so merging is idempotent.

    ``target`` stays append-only: winners are appended (durably, one
    fsync each), never rewritten in place. A truncated final line in any
    source was already dropped by that store's load. Returns counts:
    ``{"added": .., "superseded": .., "unchanged": ..}``.
    """
    counts = {"added": 0, "superseded": 0, "unchanged": 0}
    for source in sources:
        for key, record in sorted(source.records()):
            current = target._records.get(key)
            if current is None:
                target._append(key, record)
                counts["added"] += 1
            elif record == current:
                counts["unchanged"] += 1
            elif current["status"] == "ok" and record["status"] != "ok":
                # Never let a stray failure clobber a completed point.
                counts["unchanged"] += 1
            else:
                target._append(key, record)
                counts["superseded"] += 1
    return counts
