"""Experiment harness: the paper's scenarios, sweep runner and figures.

Ownership boundaries within the package (each module's docstring is the
API reference for its layer):

* :mod:`~repro.experiments.scenarios` — the Section 4.1 matrix as
  config factories (``paper_scenario`` / ``scaled_scenario``); pure
  construction, no execution.
* :mod:`~repro.experiments.runner` — execution and aggregation:
  ``run_sweep`` fans (protocol, scenario, rate, seed) jobs over a
  process pool, captures failures, and averages seeds into
  ``SweepResult`` points; ``results_from_store`` aggregates without
  simulating.
* :mod:`~repro.experiments.store` — persistence: the append-only JSONL
  ``ResultStore``, the config hash, and legacy-store migration.
* :mod:`~repro.experiments.campaign` — workflow: ``Campaign`` ties the
  matrix, the store and the runner into a resumable, status-reporting
  long sweep.
* :mod:`~repro.experiments.farm` — distributed execution:
  ``CampaignFarm`` shards the matrix across worker processes (one
  store per shard, work-stealing, crash detection + lease requeue) and
  merges the shards back into the canonical store; ``farm_status`` and
  ``make_status_server`` power ``repro campaign serve``.
* :mod:`~repro.experiments.figures` — figure definitions: what each
  paper figure plots, and rows from results or straight from a store.
* :mod:`~repro.experiments.report` — presentation: text tables, CSV,
  campaign status rendering.
* :mod:`~repro.experiments.bench` — the fixed performance benchmark and
  its committed baseline (perf work's measured claim).
"""

from repro.experiments.scenarios import (
    PAPER_RATES,
    SCENARIOS,
    paper_scenario,
    scaled_scenario,
)
from repro.experiments.store import (
    ResultStore,
    config_hash,
    merge_stores,
    point_key,
)
from repro.experiments.campaign import Campaign
from repro.experiments.farm import CampaignFarm, FarmCounters, farm_status
from repro.experiments.runner import (
    PointFailure,
    SweepResult,
    results_from_store,
    run_point,
    run_sweep,
    sweep_failures,
)
from repro.experiments.figures import (
    FIGURES,
    FigureSpec,
    figure_rows,
    figure_rows_from_store,
)
from repro.experiments.report import format_table, render_status, rows_to_csv

__all__ = [
    "Campaign",
    "CampaignFarm",
    "FarmCounters",
    "PAPER_RATES",
    "ResultStore",
    "SCENARIOS",
    "config_hash",
    "farm_status",
    "merge_stores",
    "paper_scenario",
    "point_key",
    "scaled_scenario",
    "PointFailure",
    "SweepResult",
    "results_from_store",
    "run_point",
    "run_sweep",
    "sweep_failures",
    "FIGURES",
    "FigureSpec",
    "figure_rows",
    "figure_rows_from_store",
    "format_table",
    "render_status",
    "rows_to_csv",
]
