"""Experiment harness: the paper's scenarios, sweep runner and figures."""

from repro.experiments.scenarios import (
    PAPER_RATES,
    SCENARIOS,
    paper_scenario,
    scaled_scenario,
)
from repro.experiments.campaign import Campaign
from repro.experiments.runner import (
    PointFailure,
    SweepResult,
    run_point,
    run_sweep,
    sweep_failures,
)
from repro.experiments.figures import FIGURES, FigureSpec, figure_rows
from repro.experiments.report import format_table, rows_to_csv

__all__ = [
    "Campaign",
    "PAPER_RATES",
    "SCENARIOS",
    "paper_scenario",
    "scaled_scenario",
    "PointFailure",
    "SweepResult",
    "run_point",
    "run_sweep",
    "sweep_failures",
    "FIGURES",
    "FigureSpec",
    "figure_rows",
    "format_table",
    "rows_to_csv",
]
