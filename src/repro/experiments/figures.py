"""One entry per paper figure: which metric, which protocols, how plotted.

Ownership: this module owns the **figure definitions** -- which
RunSummary metric each paper figure plots, for which protocols, under
what label. It never runs simulations: ``figure_rows`` consumes
already-aggregated :class:`SweepResult` rows, and
``figure_rows_from_store`` reads them out of an on-disk result store
(``repro figure --from DIR``), so figures regenerate from a partially-
populated store without re-simulating anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import SweepResult, results_from_store
from repro.experiments.store import ResultStore


@dataclass(frozen=True)
class FigureSpec:
    """A paper figure reproduced by the harness."""

    figure: str
    title: str
    #: metric key(s) in SweepResult.values, with display labels.
    series: Tuple[Tuple[str, str], ...]
    #: protocols plotted ("rmac"/"bmmm") -- Figs. 12/13 are RMAC-only.
    protocols: Tuple[str, ...]


FIGURES: Dict[str, FigureSpec] = {
    "fig7": FigureSpec(
        "fig7",
        "Packet Delivery Ratio",
        (("delivery_ratio", "R_deliv"),),
        ("rmac", "bmmm"),
    ),
    "fig8": FigureSpec(
        "fig8",
        "Average Packet Drop Ratio",
        (("avg_drop_ratio", "R_drop"),),
        ("rmac", "bmmm"),
    ),
    "fig9": FigureSpec(
        "fig9",
        "Average End-to-End Delay (seconds)",
        (("avg_delay_s", "D"),),
        ("rmac", "bmmm"),
    ),
    "fig10": FigureSpec(
        "fig10",
        "Average Packet Retransmission Ratio",
        (("avg_retx_ratio", "R_retx"),),
        ("rmac", "bmmm"),
    ),
    "fig11": FigureSpec(
        "fig11",
        "Average Transmission Overhead Ratio",
        (("avg_txoh_ratio", "R_txoh"),),
        ("rmac", "bmmm"),
    ),
    "fig12": FigureSpec(
        "fig12",
        "Length of MRTS (bytes)",
        (
            ("mrts_len_avg", "Average"),
            ("mrts_len_max", "Maximum"),
            ("mrts_len_p99", "99 Percentile"),
        ),
        ("rmac",),
    ),
    "fig13": FigureSpec(
        "fig13",
        "MRTS Abortion Ratio",
        (
            ("abort_avg", "Average"),
            ("abort_max", "Maximum"),
            ("abort_p99", "99 Percentile"),
        ),
        ("rmac",),
    ),
}


def figure_rows(spec: FigureSpec, results: Sequence[SweepResult]) -> List[dict]:
    """Rows of (scenario, rate, <series per protocol>) for one figure."""
    wanted = [r for r in results if r.protocol in spec.protocols]
    keys = sorted({(r.scenario, r.rate_pps) for r in wanted})
    rows: List[dict] = []
    for scenario, rate in keys:
        row: dict = {"scenario": scenario, "rate_pps": rate}
        for result in wanted:
            if result.scenario != scenario or result.rate_pps != rate:
                continue
            for metric, label in spec.series:
                column = (
                    f"{result.protocol}:{label}"
                    if len(spec.protocols) > 1
                    else label
                )
                row[column] = result[metric]
        rows.append(row)
    return rows


def figure_rows_from_store(spec: FigureSpec, store: ResultStore) -> List[dict]:
    """``figure_rows`` over whatever points a result store holds --
    regenerating a figure from a (possibly partial) campaign store
    costs zero simulation time."""
    return figure_rows(spec, results_from_store(store, spec.protocols))
