"""Plain-text tables and CSV output for figure rows."""

from __future__ import annotations

import io
from typing import List, Optional, Sequence


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """Render rows (dicts sharing keys) as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in cells)) for i in range(len(columns))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(v.ljust(w) for v, w in zip(row, widths)) + "\n")
    return out.getvalue()


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Render rows as CSV (header from union of keys, insertion order)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        out.write(",".join(_fmt(row.get(c)) for c in columns) + "\n")
    return out.getvalue()
