"""Plain-text tables, CSV output, and campaign status rendering.

Ownership: this module owns **presentation only** -- turning row dicts
(figure rows, validation rows, campaign status rows) into aligned text
tables or CSV. It holds no experiment logic and reads nothing from
disk; ``render_status`` formats the progress dict that
``Campaign.status`` computes from the result store.
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], title: Optional[str] = None) -> str:
    """Render rows (dicts sharing keys) as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in cells)) for i in range(len(columns))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(v.ljust(w) for v, w in zip(row, widths)) + "\n")
    return out.getvalue()


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Render rows as CSV (header from union of keys, insertion order)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        out.write(",".join(_fmt(row.get(c)) for c in columns) + "\n")
    return out.getvalue()


def render_status(status: dict, title: Optional[str] = None) -> str:
    """Render a ``Campaign.status()`` dict: per-(protocol, scenario)
    table plus a one-line total (percentages only when the store has a
    manifest to define the full matrix)."""
    out = io.StringIO()
    if status.get("rows"):
        out.write(format_table(status["rows"], title=title))
    elif title:
        out.write(title + "\n(no points stored)\n")
    done, failed, stale = status["done"], status["failed"], status["stale"]
    if status["total"] is not None:
        pct = 100.0 * done / status["total"] if status["total"] else 100.0
        out.write(f"{done}/{status['total']} points done ({pct:.0f}%), "
                  f"{failed} failed, {stale} stale, "
                  f"{status['missing']} missing\n")
    else:
        out.write(f"{done} points done, {failed} failed (no manifest: "
                  f"totals unknown)\n")
    return out.getvalue()
