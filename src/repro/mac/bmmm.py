"""BMMM -- Batch Mode Multicast MAC (Sun et al., ICPP 2002; paper Fig. 1b).

One reliable transmission of a data frame to ``n`` receivers costs, after
a single contention phase:

    RTS_1/CTS_1 ... RTS_n/CTS_n, DATA, RAK_1/ACK_1 ... RAK_n/ACK_n

all SIFS-separated. RTS and RAK solicit CTS and ACK from each receiver
individually (serializing the feedback -- BMMM's answer to the feedback
collision problem RMAC solves with ordered ABTs). Receivers whose CTS or
ACK never arrived stay in the pending set; the round is repeated after a
backoff with doubled CW, up to the retry limit. Section 2 of the paper
works out the cost: 2n control-frame pairs at 632 n us per data frame.

Design notes (the BMMM paper leaves these open; choices documented here):

* the sender proceeds past a missing CTS after a timeout rather than
  aborting the round, and still RAKs that receiver (it may have caught
  the broadcast data anyway) -- both choices favor BMMM;
* receivers reply CTS to an RTS naming them regardless of NAV, since
  earlier CTS exchanges of the *same* transaction would otherwise block
  every receiver after the first;
* unreliable sends are one-shot broadcasts exactly as in 802.11.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mac.addresses import BROADCAST
from repro.mac.base import SendRequest
from repro.mac.dot11 import Dot11Base
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    RakFrame,
    RtsFrame,
)
from repro.sim.units import US


class BmmmProtocol(Dot11Base):
    """Batch Mode Multicast MAC."""

    NAME = "bmmm"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._request: Optional[SendRequest] = None
        self._pending: List[int] = []
        self._acked: List[int] = []
        self._failures = 0
        self._seq = 0
        self._phase = "idle"
        self._round_receivers: List[int] = []
        self._round_index = 0
        self._round_cts: Dict[int, bool] = {}
        self._round_ack: Dict[int, bool] = {}
        self._retx_counted = False
        # Receiver side: per-sender buffered data frame awaiting RAK.
        self._rx_buffer: Dict[int, DataFrame] = {}
        self._rx_expect: Dict[int, bool] = {}

    def _has_work(self) -> bool:
        return self._request is not None or super()._has_work()

    # ==================================================================
    # Sender side
    # ==================================================================
    def _begin_txn(self) -> None:
        if self._request is None:
            request = self.queue.pop()
            self._request = request
            self._seq = (self._seq + 1) & 0xFFFF
            self._failures = 0
            self._acked = []
            self._pending = list(request.receivers) if request.reliable else []
            self._retx_counted = False
        request = self._request
        if not request.reliable:
            frame = DataFrame(
                src=self.node_id,
                dst=request.receivers[0],
                seq=self._seq,
                payload_bytes=request.payload_bytes,
                reliable=False,
                payload=request.payload,
                overhead=self.config.data_overhead,
            )
            self.stats.count_tx("UDATA")
            self._phase = "tx-bcast"
            self._send_frame(frame, self._on_broadcast_sent)
            return
        # Start one batch round over the still-pending receivers.
        if self._failures > 0:
            self.stats.retransmissions += 1
        self._round_receivers = list(self._pending)
        self._round_index = 0
        self._round_cts = {}
        self._round_ack = {}
        self._phase = "rts"
        self._send_next_rts()

    def _on_broadcast_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        self._request = None
        self._phase = "idle"
        self.stats.unreliable_sent += 1
        assert request is not None
        self._complete(request, acked=(), failed=(), dropped=False)
        self._end_txn()

    # -- RTS/CTS sequence ------------------------------------------------
    def _send_next_rts(self) -> None:
        if self._round_index >= len(self._round_receivers):
            self._phase = "data"
            self.sim.after(self.config.phy.sifs, self._send_data, label="sifs-data")
            return
        receiver = self._round_receivers[self._round_index]
        rts = RtsFrame(self.node_id, receiver, aux=self._nav_remaining_us())
        self._send_frame(rts, self._on_rts_sent)

    def _on_rts_sent(self, frame: object, aborted: bool) -> None:
        self._phase = "wait-cts"
        self._phase_timer.start(self.config.response_timeout(CtsFrame.SIZE))

    def _handle_cts(self, frame: CtsFrame) -> None:
        if self._phase != "wait-cts" or frame.receiver != self.node_id:
            return
        expected = self._round_receivers[self._round_index]
        if frame.transmitter != expected:
            return
        self._phase_timer.cancel()
        self._round_cts[expected] = True
        self._advance_rts()

    def _advance_rts(self) -> None:
        self._round_index += 1
        if self._round_index < len(self._round_receivers):
            self._phase = "rts"
            self.sim.after(self.config.phy.sifs, self._send_next_rts, label="sifs-rts")
        else:
            self._phase = "data"
            self.sim.after(self.config.phy.sifs, self._send_data, label="sifs-data")

    # -- DATA --------------------------------------------------------------
    def _send_data(self) -> None:
        if self.radio.is_transmitting:  # extremely rare; retry one SIFS later
            self.sim.after(self.config.phy.sifs, self._send_data, label="sifs-data")
            return
        request = self._request
        assert request is not None
        frame = DataFrame(
            src=self.node_id,
            dst=BROADCAST,
            seq=self._seq,
            payload_bytes=request.payload_bytes,
            reliable=True,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self.stats.count_tx("RDATA")
        self._send_frame(frame, self._on_data_sent)

    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self._round_index = 0
        self._phase = "rak"
        self.sim.after(self.config.phy.sifs, self._send_next_rak, label="sifs-rak")

    # -- RAK/ACK sequence ---------------------------------------------------
    def _send_next_rak(self) -> None:
        if self._round_index >= len(self._round_receivers):
            self._finish_round()
            return
        if self.radio.is_transmitting:
            self.sim.after(self.config.phy.sifs, self._send_next_rak, label="sifs-rak")
            return
        receiver = self._round_receivers[self._round_index]
        rak = RakFrame(self.node_id, receiver, aux=self._seq)
        self._send_frame(rak, self._on_rak_sent)

    def _on_rak_sent(self, frame: object, aborted: bool) -> None:
        self._phase = "wait-ack"
        self._phase_timer.start(self.config.response_timeout(AckFrame.SIZE))

    def _handle_ack(self, frame: AckFrame) -> None:
        if self._phase != "wait-ack" or frame.receiver != self.node_id:
            return
        expected = self._round_receivers[self._round_index]
        if frame.transmitter != expected:
            return
        self._phase_timer.cancel()
        self._round_ack[expected] = True
        self._advance_rak()

    def _advance_rak(self) -> None:
        self._round_index += 1
        if self._round_index < len(self._round_receivers):
            self._phase = "rak"
            self.sim.after(self.config.phy.sifs, self._send_next_rak, label="sifs-rak")
        else:
            self._finish_round()

    # -- round bookkeeping ---------------------------------------------------
    def _on_phase_timeout(self) -> None:
        if self._phase == "wait-cts":
            self._advance_rts()  # missing CTS: proceed, receiver stays pending
        elif self._phase == "wait-ack":
            self._advance_rak()

    def _finish_round(self) -> None:
        request = self._request
        assert request is not None
        newly_acked = [r for r in self._round_receivers if self._round_ack.get(r)]
        self._acked.extend(newly_acked)
        self._pending = [r for r in self._pending if r not in self._round_ack]
        if not self._pending:
            self._phase = "idle"
            self._request = None
            self.backoff.reset_cw()
            self.stats.packets_delivered += 1
            self._complete(request, acked=tuple(self._acked), failed=(), dropped=False)
            self._end_txn()
            return
        self._failures += 1
        if self._failures > self.config.retry_limit:
            self._phase = "idle"
            self._request = None
            self.stats.packets_dropped += 1
            self.backoff.reset_cw()
            self._complete(
                request, acked=tuple(self._acked), failed=tuple(self._pending), dropped=True
            )
            self._end_txn()
        else:
            self._phase = "idle"
            self.backoff.double_cw()
            self._end_txn()  # re-contend; _begin_txn resumes the round

    def _nav_remaining_us(self) -> int:
        """Nominal remaining transaction time, for third-party NAVs."""
        phy = self.config.phy
        request = self._request
        assert request is not None
        n = len(self._round_receivers)
        i = self._round_index
        sifs = phy.sifs
        cts = phy.frame_airtime(CtsFrame.SIZE)
        rts = phy.frame_airtime(RtsFrame.SIZE)
        rak = phy.frame_airtime(RakFrame.SIZE)
        ack = phy.frame_airtime(AckFrame.SIZE)
        data = phy.frame_airtime(request.payload_bytes + self.config.data_overhead)
        remaining = (sifs + cts)  # the CTS answering this RTS
        remaining += (n - i - 1) * (sifs + rts + sifs + cts)
        remaining += sifs + data
        remaining += n * (sifs + rak + sifs + ack)
        return min(0xFFFF, remaining // US)

    # ==================================================================
    # Receiver side
    # ==================================================================
    def _handle_rts(self, frame: RtsFrame) -> None:
        if frame.receiver != self.node_id:
            return
        if self.radio.is_transmitting:
            return
        # Part of a batch transaction: answer regardless of NAV (see
        # module docstring), unless we are mid-transaction ourselves.
        if self.in_txn:
            return
        self._rx_expect[frame.transmitter] = True
        self._respond_after_sifs(CtsFrame(self.node_id, frame.transmitter))

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        # Broadcast-addressed batch data: buffer it if we expect from this
        # sender (RTS seen), or unconditionally -- a RAK may reveal that we
        # were an intended receiver whose CTS phase failed.
        self.stats.count_rx("RDATA")
        self._rx_buffer[frame.src] = frame
        if self._rx_expect.get(frame.src):
            self._deliver_data(frame)

    def _handle_rak(self, frame: RakFrame) -> None:
        if frame.receiver != self.node_id:
            return
        buffered = self._rx_buffer.get(frame.transmitter)
        if buffered is None or buffered.seq != frame.aux:
            return  # nothing to acknowledge: stay silent
        self._respond_after_sifs(AckFrame(self.node_id, frame.transmitter))
        self._deliver_data(buffered)
        self._rx_expect.pop(frame.transmitter, None)
