"""IEEE 802.11 DCF machinery and the plain DCF protocol.

This is the substrate the paper's comparison protocols (BMMM, BMW, LBP)
extend, simplified to what their evaluation exercises:

* physical carrier sense plus NAV (virtual carrier sense) from the
  duration field carried in RTS/CTS/DATA frames;
* DIFS deferral, slotted backoff with CW doubling and post-transmission
  backoff;
* SIFS-separated response frames (CTS, ACK) that preempt contention;
* the RTS/CTS/DATA/ACK exchange for reliable unicast and one-shot
  transmission for broadcast.

:class:`Dot11Base` owns contention and the receiver-side responder logic
with overridable hooks; :class:`Dot11Dcf` adds the standard unicast
transaction. BMMM/BMW/LBP subclass the base and replace the transaction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.mac.addresses import BROADCAST, MULTICAST_FLAG
from repro.mac.backoff import Backoff
from repro.mac.base import MacProtocol, SendRequest
from repro.mac.frames import (
    DOT11_DATA_OVERHEAD,
    AckFrame,
    CtsFrame,
    DataFrame,
    MrtsFrame,
    NakFrame,
    NctsFrame,
    RakFrame,
    RtsFrame,
)
from repro.phy.channel import Transmission
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.phy.radio import Radio
from repro.sim.engine import FastEvent, Simulator
from repro.sim.timers import Timer
from repro.sim.trace import NULL_TRACER, Tracer
from repro.sim.units import US

#: Control frame classes whose airtime counts as control overhead.
CONTROL_FRAMES = (RtsFrame, CtsFrame, AckFrame, RakFrame, NctsFrame, NakFrame, MrtsFrame)


@dataclass(frozen=True)
class Dot11Config:
    """Parameters for the 802.11-family protocols."""

    phy: PhyParams = field(default_factory=lambda: DEFAULT_PHY)
    #: Retry limit per packet (802.11 short retry limit).
    retry_limit: int = 7
    queue_capacity: Optional[int] = None
    #: MAC header + FCS bytes on data frames (802.11: 24 + 4).
    data_overhead: int = DOT11_DATA_OVERHEAD
    #: Extra slack added to CTS/ACK timeouts beyond SIFS + airtime + 2 tau.
    response_guard: int = 2 * US
    tau: int = 1 * US

    def response_timeout(self, response_bytes: int) -> int:
        """Timeout armed at the end of the soliciting frame's transmission."""
        return (
            self.phy.sifs
            + self.phy.frame_airtime(response_bytes)
            + 2 * self.tau
            + self.response_guard
        )


class _DcfPumpEvent(FastEvent):
    """The DCF backoff pump as a recycled fire-and-forget event."""

    __slots__ = ("mac",)
    label = "dcf-pump"

    def __init__(self, mac: "Dot11Base"):
        self.mac = mac

    def __call__(self) -> None:
        self.mac._tick()


class Dot11Base(MacProtocol):
    """Shared DCF machinery: DIFS + backoff contention, NAV, responders."""

    NAME = "dot11-base"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rng: random.Random,
        config: Optional[Dot11Config] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.config = config or Dot11Config()
        super().__init__(
            node_id,
            sim,
            radio,
            rng,
            queue_capacity=self.config.queue_capacity,
            tracer=tracer,
        )
        phy = self.config.phy
        self.backoff = Backoff(rng, phy.cw_min, phy.cw_max)
        self.nav_until: int = 0
        self.multicast_groups: set[int] = set()
        self.in_txn = False
        #: One reusable pump event (never cancelled, at most one in
        #: flight -- guarded by ``_pump_scheduled``): allocation-free
        #: per-slot countdown, mirroring the RMAC pump.
        self._pump_event = _DcfPumpEvent(self)
        self._pump_scheduled = False
        self._idle_wait_pending = False
        self._phase_timer = Timer(sim, self._on_phase_timeout, "phase")
        self._tx_done_cb: Optional[Callable[[object, bool], None]] = None
        self._response_queue: list[object] = []
        #: last delivered data seq per source (duplicate suppression on
        #: MAC-level retransmissions).
        self._delivered_seq: Dict[int, int] = {}

    # ==================================================================
    # Contention pump (DIFS + slotted backoff)
    # ==================================================================
    def _medium_busy(self) -> bool:
        return self.radio.data_busy() or self.nav_until > self.sim.now

    def _idle_duration(self) -> int:
        physical = self.radio.data_idle_duration()
        if physical == 0:
            return 0
        virtual = self.sim.now - self.nav_until
        return min(physical, max(0, virtual)) if self.nav_until > 0 else physical

    def _has_work(self) -> bool:
        return self.in_txn or bool(self.queue)

    def _kick(self) -> None:
        if not self._pump_scheduled and not self.in_txn:
            # 802.11: immediate access is allowed only if the medium has
            # already been idle for DIFS when the frame arrives; otherwise
            # the station must perform a backoff. Without the draw, sibling
            # receivers forwarding the same multicast all fire at once.
            if self.backoff.bi == 0 and self._idle_duration() < self.config.phy.difs:
                self.backoff.draw()
            self._pump_scheduled = True
            sim = self.sim
            sim.schedule_fast(sim.now, self._pump_event)

    def _ensure_pump(self, delay: int) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            sim = self.sim
            sim.schedule_fast(sim.now + delay, self._pump_event)

    def _tick(self) -> None:
        self._pump_scheduled = False
        if self.in_txn:
            return
        phy = self.config.phy
        if self.radio.is_transmitting:  # mid-response; try again next slot
            self._ensure_pump(phy.slot_time)
            return
        if not self.backoff.bi > 0 and not self._has_work():
            return  # nothing pending: pump stops
        if not self._medium_busy():
            idle_for = self._idle_duration()
            if idle_for >= phy.difs:
                if self.backoff.bi > 0:
                    self.backoff.decrement()
                if self.backoff.bi == 0 and self._has_work():
                    self.in_txn = True
                    self._begin_txn()
                    return
                if self.backoff.bi == 0:
                    return  # countdown done, nothing to send
                self._ensure_pump(phy.slot_time)
            else:
                # Physically idle but inside DIFS: check again right when
                # the DIFS requirement could first be met.
                self._ensure_pump(max(phy.slot_time, phy.difs - idle_for))
            return
        # Medium busy: sleep until the blocking condition lifts instead of
        # polling every slot.
        if self.radio.data_busy():
            if not self._idle_wait_pending:
                self._idle_wait_pending = True
                self.radio.notify_data_idle(self._on_medium_cleared)
        else:
            # Virtual carrier only: the NAV expiry time is known exactly.
            self._ensure_pump(max(phy.slot_time, self.nav_until - self.sim.now))

    def _on_medium_cleared(self) -> None:
        self._idle_wait_pending = False
        if not self.in_txn and (self.backoff.bi > 0 or self._has_work()):
            self._ensure_pump(self.config.phy.slot_time)

    def _end_txn(self, draw: bool = True) -> None:
        self.in_txn = False
        self._phase_timer.cancel()
        if draw:
            self.backoff.draw()
        if self.backoff.bi > 0 or self._has_work():
            self._ensure_pump(self.config.phy.slot_time)

    # ==================================================================
    # Frame transmission helpers
    # ==================================================================
    def _send_frame(
        self, frame: object, on_sent: Optional[Callable[[object, bool], None]] = None
    ) -> Transmission:
        self._tx_done_cb = on_sent
        if not isinstance(frame, DataFrame):  # data counted as RDATA/UDATA
            self.stats.count_tx(type(frame).__name__)
        return self.radio.transmit(frame)

    def _respond_after_sifs(self, frame: object) -> None:
        """Queue a SIFS-separated response (CTS/ACK/...). Responses preempt
        contention; if the radio is mid-transmission when the SIFS elapses
        the response is dropped, as on real hardware."""
        self.sim.after(self.config.phy.sifs, _Responder(self, frame), label="sifs-response")

    def _emit_response(self, frame: object) -> None:
        if self.radio.is_transmitting:
            return
        self._send_frame(frame, None)

    def on_tx_complete(self, frame: object, aborted: bool) -> None:
        duration = self.radio.frame_airtime(frame)
        if isinstance(frame, CONTROL_FRAMES):
            self.stats.control_tx_time += duration
        elif isinstance(frame, DataFrame) and frame.reliable:
            self.stats.data_tx_time += duration
        callback = self._tx_done_cb
        self._tx_done_cb = None
        if callback is not None:
            callback(frame, aborted)
        if not self.in_txn and (self.backoff.bi > 0 or self._has_work()):
            # e.g. a CTS/ACK response finished while our own traffic waits.
            self._ensure_pump(self.config.phy.slot_time)

    # ==================================================================
    # Receive path
    # ==================================================================
    def on_frame_received(self, frame: object, sender: int) -> None:
        addressed_to_me = getattr(frame, "receiver", None) == self.node_id or (
            isinstance(frame, DataFrame) and frame.dst == self.node_id
        )
        if isinstance(frame, CONTROL_FRAMES):
            self.stats.count_rx(type(frame).__name__)
            if addressed_to_me:
                # R_txoh counts control frames this node spends time
                # *participating* in, not everything it overhears --
                # otherwise dense neighborhoods inflate every node's
                # overhead with other transactions' control traffic.
                self.stats.control_rx_time += self.radio.frame_airtime(frame)
        if not addressed_to_me:
            self._update_nav(frame)
        if isinstance(frame, RtsFrame):
            self._handle_rts(frame)
        elif isinstance(frame, CtsFrame):
            self._handle_cts(frame)
        elif isinstance(frame, AckFrame):
            self._handle_ack(frame)
        elif isinstance(frame, RakFrame):
            self._handle_rak(frame)
        elif isinstance(frame, NctsFrame):
            self._handle_ncts(frame)
        elif isinstance(frame, NakFrame):
            self._handle_nak(frame)
        elif isinstance(frame, DataFrame):
            if frame.reliable:
                self._handle_reliable_data(frame)
            else:
                self._handle_unreliable_data(frame)

    def _update_nav(self, frame: object) -> None:
        duration_us = getattr(frame, "aux", 0)
        if isinstance(frame, DataFrame):
            duration_us = 0  # our data frames carry no NAV in this model
        if duration_us > 0:
            self.nav_until = max(self.nav_until, self.sim.now + duration_us * US)

    def _deliver_data(self, frame: DataFrame) -> None:
        """Deliver with duplicate suppression keyed on (src, seq)."""
        if self._delivered_seq.get(frame.src) == frame.seq:
            return
        self._delivered_seq[frame.src] = frame.seq
        self.deliver_up(frame.payload, frame.src)

    def _handle_unreliable_data(self, frame: DataFrame) -> None:
        accept = frame.dst in (self.node_id, BROADCAST)
        if frame.dst == MULTICAST_FLAG:
            accept = getattr(frame.payload, "group", None) in self.multicast_groups
        if accept:
            self.stats.count_rx("UDATA")
            self.deliver_up(frame.payload, frame.src)

    # -- hooks for subclasses ------------------------------------------
    def _begin_txn(self) -> None:
        raise NotImplementedError

    def _on_phase_timeout(self) -> None:
        raise NotImplementedError

    def _handle_rts(self, frame: RtsFrame) -> None:
        pass

    def _handle_cts(self, frame: CtsFrame) -> None:
        pass

    def _handle_ack(self, frame: AckFrame) -> None:
        pass

    def _handle_rak(self, frame: RakFrame) -> None:
        pass

    def _handle_ncts(self, frame: NctsFrame) -> None:
        pass

    def _handle_nak(self, frame: NakFrame) -> None:
        pass

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        pass


class _Responder:
    """Deferred SIFS response."""

    __slots__ = ("mac", "frame")

    def __init__(self, mac: Dot11Base, frame: object):
        self.mac = mac
        self.frame = frame

    def __call__(self) -> None:
        self.mac._emit_response(self.frame)


class Dot11Dcf(Dot11Base):
    """Plain IEEE 802.11 DCF: reliable unicast (RTS/CTS/DATA/ACK) and
    one-shot unreliable unicast/multicast/broadcast.

    Reliable *multicast* requests are rejected -- 802.11 has none; that
    gap is exactly the paper's motivation. Use BMMM/BMW/RMAC for it.
    """

    NAME = "dot11"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._request: Optional[SendRequest] = None
        self._failures = 0
        self._phase = "idle"
        self._seq = 0

    def _has_work(self) -> bool:
        return self._request is not None or super()._has_work()

    # ------------------------------------------------------------------
    def send_reliable(self, receivers, payload, payload_bytes, on_complete=None):
        if len(tuple(receivers)) != 1:
            raise ValueError("802.11 DCF supports reliable unicast only")
        return super().send_reliable(receivers, payload, payload_bytes, on_complete)

    def _begin_txn(self) -> None:
        if self._request is None:
            self._request = self.queue.pop()
            self._failures = 0
            self._seq = (self._seq + 1) & 0xFFFF
        request = self._request
        if not request.reliable:
            frame = DataFrame(
                src=self.node_id,
                dst=request.receivers[0],
                seq=self._seq,
                payload_bytes=request.payload_bytes,
                reliable=False,
                payload=request.payload,
                overhead=self.config.data_overhead,
            )
            self.stats.count_tx("UDATA")
            self._phase = "tx-bcast"
            self._send_frame(frame, self._on_broadcast_sent)
            return
        self._phase = "tx-rts"
        dst = request.receivers[0]
        phy = self.config.phy
        # NAV covers CTS + DATA + ACK with SIFS gaps.
        nav = (
            3 * phy.sifs
            + phy.frame_airtime(CtsFrame.SIZE)
            + phy.frame_airtime(request.payload_bytes + self.config.data_overhead)
            + phy.frame_airtime(AckFrame.SIZE)
        )
        rts = RtsFrame(self.node_id, dst, aux=min(0xFFFF, nav // US))
        self._send_frame(rts, self._on_rts_sent)

    def _on_broadcast_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        self._request = None
        self.stats.unreliable_sent += 1
        self._phase = "idle"
        assert request is not None
        self._complete(request, acked=(), failed=(), dropped=False)
        self._end_txn()

    def _on_rts_sent(self, frame: object, aborted: bool) -> None:
        self._phase = "wait-cts"
        self._phase_timer.start(self.config.response_timeout(CtsFrame.SIZE))

    def _handle_cts(self, frame: CtsFrame) -> None:
        if self._phase != "wait-cts" or frame.receiver != self.node_id:
            return
        self._phase_timer.cancel()
        request = self._request
        assert request is not None
        phy = self.config.phy
        data = DataFrame(
            src=self.node_id,
            dst=request.receivers[0],
            seq=self._seq,
            payload_bytes=request.payload_bytes,
            reliable=True,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self._phase = "send-data"
        self.sim.after(
            phy.sifs, lambda: self._send_frame(data, self._on_data_sent), label="sifs-data"
        )

    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self.stats.count_tx("RDATA")
        self._phase = "wait-ack"
        self._phase_timer.start(self.config.response_timeout(AckFrame.SIZE))

    def _handle_ack(self, frame: AckFrame) -> None:
        if self._phase != "wait-ack" or frame.receiver != self.node_id:
            return
        self._phase_timer.cancel()
        request = self._request
        self._request = None
        self._phase = "idle"
        self.backoff.reset_cw()
        self.stats.packets_delivered += 1
        assert request is not None
        self._complete(request, acked=request.receivers, failed=(), dropped=False)
        self._end_txn()

    def _on_phase_timeout(self) -> None:
        if self._phase not in ("wait-cts", "wait-ack"):
            return
        self._failures += 1
        request = self._request
        assert request is not None
        if self._failures > self.config.retry_limit:
            self._request = None
            self._phase = "idle"
            self.stats.packets_dropped += 1
            self.backoff.reset_cw()
            self._complete(request, acked=(), failed=request.receivers, dropped=True)
            self._end_txn()
        else:
            self.stats.retransmissions += 1
            self._phase = "idle"
            self.backoff.double_cw()
            self._end_txn()  # re-contend; _begin_txn resumes self._request

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _handle_rts(self, frame: RtsFrame) -> None:
        if frame.receiver != self.node_id:
            return
        if self.nav_until > self.sim.now:
            return  # virtual carrier sense forbids the CTS
        if self.radio.is_transmitting or self.in_txn:
            return
        phy = self.config.phy
        nav = max(0, frame.aux * US - phy.sifs - phy.frame_airtime(CtsFrame.SIZE))
        self._respond_after_sifs(CtsFrame(self.node_id, frame.transmitter, aux=nav // US))

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        if frame.dst != self.node_id:
            return
        self.stats.count_rx("RDATA")
        self._respond_after_sifs(AckFrame(self.node_id, frame.src))
        self._deliver_data(frame)
