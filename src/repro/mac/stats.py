"""Per-node MAC counters.

Every metric reported in the paper's evaluation (Figs. 8 and 10-13) is a
ratio over these counters:

* ``R_drop``  = packets_dropped / packets_offered            (Fig. 8)
* ``R_retx``  = retransmissions / packets_offered            (Fig. 10)
* ``R_txoh``  = (control tx + control rx + ABT check time)
                / reliable data tx time                      (Fig. 11)
* MRTS length distribution (Fig. 12) and
* ``R_abort`` = mrts_aborted / mrts_transmissions            (Fig. 13).

Counter semantics follow the paper's definitions: "packets to be
transmitted by that node" counts packets handed to the MAC's reliable
service; a *retransmission* is any repeat attempt of a data transaction
beyond the first for a given packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class MacStats:
    """Mutable per-node counter block. Times are in nanoseconds."""

    node_id: int = -1

    # -- packet-level accounting (reliable service) --------------------
    packets_offered: int = 0          # reliable packets handed to the MAC
    packets_delivered: int = 0        # completed with every receiver acked
    packets_dropped: int = 0          # retry limit exceeded
    queue_drops: int = 0              # transmit-queue overflow (if capped)
    retransmissions: int = 0          # repeat attempts beyond the first

    # -- unreliable service --------------------------------------------
    unreliable_sent: int = 0
    unreliable_aborted: int = 0       # unreliable data aborted on RBT

    # -- airtime accounting ---------------------------------------------
    control_tx_time: int = 0          # MRTS/RTS/CTS/ACK/RAK... transmitted
    control_rx_time: int = 0          # control frames received intact
    abt_check_time: int = 0           # time spent sensing ABT windows
    data_tx_time: int = 0             # reliable data frames transmitted

    # -- frame counts -----------------------------------------------------
    frames_tx: Dict[str, int] = field(default_factory=dict)
    frames_rx: Dict[str, int] = field(default_factory=dict)

    # -- RMAC-specific ----------------------------------------------------
    mrts_transmissions: int = 0       # MRTS transmissions started
    mrts_aborted: int = 0             # aborted due to RBT detection
    mrts_lengths: Dict[int, int] = field(default_factory=dict)  # bytes -> count

    def count_tx(self, kind: str) -> None:
        self.frames_tx[kind] = self.frames_tx.get(kind, 0) + 1

    def count_rx(self, kind: str) -> None:
        self.frames_rx[kind] = self.frames_rx.get(kind, 0) + 1

    def record_mrts_length(self, nbytes: int) -> None:
        self.mrts_lengths[nbytes] = self.mrts_lengths.get(nbytes, 0) + 1

    # ------------------------------------------------------------------
    # The paper's per-node ratios. Each returns None when undefined
    # (e.g. a leaf node that never forwarded a packet).
    # ------------------------------------------------------------------
    def drop_ratio(self) -> Optional[float]:
        if self.packets_offered == 0:
            return None
        return self.packets_dropped / self.packets_offered

    def retransmission_ratio(self) -> Optional[float]:
        if self.packets_offered == 0:
            return None
        return self.retransmissions / self.packets_offered

    def overhead_ratio(self) -> Optional[float]:
        if self.data_tx_time == 0:
            return None
        return (
            self.control_tx_time + self.control_rx_time + self.abt_check_time
        ) / self.data_tx_time

    def abort_ratio(self) -> Optional[float]:
        if self.mrts_transmissions == 0:
            return None
        return self.mrts_aborted / self.mrts_transmissions

    def mrts_length_values(self) -> list[int]:
        """Expanded MRTS length samples (bytes), for percentile statistics."""
        out: list[int] = []
        for length, count in sorted(self.mrts_lengths.items()):
            out.extend([length] * count)
        return out
