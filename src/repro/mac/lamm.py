"""LAMM -- Location Aware Multicast MAC (Sun et al., ICPP 2002)
[extension].

The second protocol of the BMMM paper, mentioned in RMAC's Section 2:
"LAMM utilizes location information by GPS to further improve BMMM."
The insight: an RTS/CTS pair exists to silence the *neighborhood of a
receiver*; receivers whose neighborhoods are already covered by another
receiver's CTS add no protection, so the sender need not solicit them.

This implementation keeps BMMM's batch structure but runs the RTS/CTS
phase only for a **covering subset** of the receivers, chosen by
location (each node is assumed GPS-equipped; the simulator's own
positions stand in for GPS readings):

* greedily pick the receiver farthest from the already-chosen set until
  every receiver lies within ``cover_radius`` (default: half the radio
  range) of some chosen one;
* RAK/ACK still runs for *every* receiver -- reliability is unchanged;
  only channel-reservation overhead shrinks.

With clustered receivers LAMM sends 1-2 RTS/CTS pairs instead of n,
saving ~208 us per skipped receiver; with spread-out receivers it
degrades gracefully to BMMM. The cover radius trades protection quality
for overhead exactly as the original paper describes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.mac.bmmm import BmmmProtocol


def covering_subset(
    positions: Sequence[Tuple[float, float]], cover_radius: float
) -> List[int]:
    """Greedy cover: indices of chosen receivers such that every receiver
    is within ``cover_radius`` of a chosen one.

    Deterministic: the first pick is the receiver farthest from the
    centroid; ties break toward the lower index.
    """
    n = len(positions)
    if n == 0:
        return []
    if cover_radius <= 0:
        return list(range(n))
    cx = sum(p[0] for p in positions) / n
    cy = sum(p[1] for p in positions) / n
    chosen: List[int] = []
    covered = [False] * n

    def dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    while not all(covered):
        best = None
        best_key = (-1.0, 0)
        for i in range(n):
            if covered[i]:
                continue
            if chosen:
                d = min(dist(positions[i], positions[j]) for j in chosen)
            else:
                d = dist(positions[i], (cx, cy))
            key = (d, -i)
            if key > best_key:
                best_key = key
                best = i
        assert best is not None
        chosen.append(best)
        for i in range(n):
            if not covered[i] and dist(positions[i], positions[best]) <= cover_radius:
                covered[i] = True
    return sorted(chosen)


class LammProtocol(BmmmProtocol):
    """Location Aware Multicast MAC: BMMM with a covered RTS/CTS phase."""

    NAME = "lamm"

    #: Receivers within this range of a CTS-polled receiver are considered
    #: protected by its CTS. Half the radio range by default.
    cover_radius: float = 37.5

    def _send_next_rts(self) -> None:
        # First entry into the RTS phase of a round: shrink the RTS list
        # to the covering subset (the RAK list keeps every receiver).
        if self._phase == "rts" and self._round_index == 0 and self._round_receivers:
            if self._round_receivers == list(self._pending):
                self._round_receivers = self._covered_receivers(self._pending)
        super()._send_next_rts()

    def _covered_receivers(self, receivers: Sequence[int]) -> List[int]:
        positions = [self._position_of(r) for r in receivers]
        chosen = covering_subset(positions, self.cover_radius)
        return [receivers[i] for i in chosen]

    def _position_of(self, node: int) -> Tuple[float, float]:
        """The GPS reading for ``node`` (the simulator's ground truth)."""
        coords = self.radio._data.neighbors.positions_at(self.sim.now)
        return (float(coords[node][0]), float(coords[node][1]))

    # The RAK phase must cover every pending receiver, not just the
    # RTS-covered subset: restore the full list after the data frame.
    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self._round_receivers = list(self._pending)
        super()._on_data_sent(frame, aborted)
