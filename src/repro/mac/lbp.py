"""LBP -- the Leader Based Protocol (Kuri & Kasera, 2001) [extension].

One receiver (here: the first in the request's receiver list, standing in
for the paper's leader-election machinery, whose difficulty the RMAC
paper cites as LBP's drawback) answers on behalf of the group:

* sender transmits an RTS naming the leader but carrying the multicast
  intent (the other receivers recognize membership from the group list
  distributed out of band -- here, the explicit receiver tuple);
* the leader replies CTS; a non-leader whose virtual carrier sense
  forbids the exchange replies NCTS instead, deliberately colliding with
  the CTS so the sender backs off;
* after the DATA, the leader replies ACK; a non-leader that *detected a
  corrupted copy* replies NAK, deliberately colliding with the ACK so the
  sender retransmits.

The protocol's structural weakness is preserved faithfully: a non-leader
that missed the DATA entirely (never started receiving it) stays silent,
so the sender can believe the multicast succeeded -- LBP trades full
reliability for constant feedback cost, which is exactly the contrast
RMAC's Section 2 draws.

Group membership signalling: receivers must know an RTS implicates them.
Real LBP uses a group address; here the sender's MAC shares the receiver
tuple with group members through the frame's ``aux``-less payload
side-channel is avoided -- instead non-leader receivers arm on the
*DATA* frame (multicast dst) and on corruption send NAK referencing the
sender. This keeps the wire format to standard 802.11 frames.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mac.addresses import BROADCAST
from repro.mac.base import SendRequest
from repro.mac.dot11 import Dot11Base
from repro.mac.frames import AckFrame, CtsFrame, DataFrame, NakFrame, NctsFrame, RtsFrame


class LbpProtocol(Dot11Base):
    """Leader Based Protocol."""

    NAME = "lbp"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._request: Optional[SendRequest] = None
        self._failures = 0
        self._seq = 0
        self._phase = "idle"
        #: src -> expiry of an overheard exchange window (set by an RTS from
        #: src; a frame error from src inside the window draws ONE NAK).
        self._exchange_window: dict[int, int] = {}

    def _has_work(self) -> bool:
        return self._request is not None or super()._has_work()

    # ==================================================================
    # Sender
    # ==================================================================
    def _begin_txn(self) -> None:
        if self._request is None:
            request = self.queue.pop()
            self._request = request
            self._seq = (self._seq + 1) & 0xFFFF
            self._failures = 0
        request = self._request
        if not request.reliable:
            frame = DataFrame(
                src=self.node_id,
                dst=request.receivers[0],
                seq=self._seq,
                payload_bytes=request.payload_bytes,
                reliable=False,
                payload=request.payload,
                overhead=self.config.data_overhead,
            )
            self.stats.count_tx("UDATA")
            self._phase = "tx-bcast"
            self._send_frame(frame, self._on_broadcast_sent)
            return
        leader = request.receivers[0]
        self._phase = "rts"
        self._send_frame(RtsFrame(self.node_id, leader), self._on_rts_sent)

    def _on_broadcast_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        self._request = None
        self._phase = "idle"
        self.stats.unreliable_sent += 1
        assert request is not None
        self._complete(request, acked=(), failed=(), dropped=False)
        self._end_txn()

    def _on_rts_sent(self, frame: object, aborted: bool) -> None:
        self._phase = "wait-cts"
        self._phase_timer.start(self.config.response_timeout(CtsFrame.SIZE))

    def _handle_cts(self, frame: CtsFrame) -> None:
        request = self._request
        if self._phase != "wait-cts" or frame.receiver != self.node_id:
            return
        assert request is not None
        if frame.transmitter != request.receivers[0]:
            return
        self._phase_timer.cancel()
        data = DataFrame(
            src=self.node_id,
            dst=BROADCAST,  # multicast data: all receivers decode it
            seq=self._seq,
            payload_bytes=request.payload_bytes,
            reliable=True,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self._phase = "send-data"
        self.sim.after(
            self.config.phy.sifs,
            lambda: self._send_frame(data, self._on_data_sent),
            label="sifs-data",
        )

    def _handle_ncts(self, frame: NctsFrame) -> None:
        # An explicit NCTS reached us intact: a receiver's channel is busy.
        if self._phase == "wait-cts" and frame.receiver == self.node_id:
            self._phase_timer.cancel()
            self._attempt_failed()

    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self.stats.count_tx("RDATA")
        self._phase = "wait-ack"
        self._phase_timer.start(self.config.response_timeout(AckFrame.SIZE))

    def _handle_ack(self, frame: AckFrame) -> None:
        request = self._request
        if self._phase != "wait-ack" or frame.receiver != self.node_id:
            return
        assert request is not None
        if frame.transmitter != request.receivers[0]:
            return
        # A clean ACK means the leader succeeded AND no NAK collided.
        self._phase_timer.cancel()
        self._request = None
        self._phase = "idle"
        self.backoff.reset_cw()
        self.stats.packets_delivered += 1
        self._complete(request, acked=request.receivers, failed=(), dropped=False)
        self._end_txn()

    def _handle_nak(self, frame: NakFrame) -> None:
        # A NAK that got through intact (no ACK to collide with).
        if self._phase == "wait-ack" and frame.receiver == self.node_id:
            self._phase_timer.cancel()
            self._attempt_failed()

    def _on_phase_timeout(self) -> None:
        if self._phase in ("wait-cts", "wait-ack"):
            self._attempt_failed()

    def _attempt_failed(self) -> None:
        request = self._request
        assert request is not None
        self._failures += 1
        if self._failures > self.config.retry_limit:
            self._request = None
            self._phase = "idle"
            self.stats.packets_dropped += 1
            self.backoff.reset_cw()
            self._complete(request, acked=(), failed=request.receivers, dropped=True)
        else:
            self.stats.retransmissions += 1
            self._phase = "idle"
            self.backoff.double_cw()
        self._end_txn()

    # ==================================================================
    # Receiver
    # ==================================================================
    def _handle_rts(self, frame: RtsFrame) -> None:
        # Every overheard RTS opens an exchange window: data from this
        # source is imminent, and a corrupted copy warrants one NAK.
        self._exchange_window[frame.transmitter] = self.sim.now + self.EXCHANGE_WINDOW
        if frame.receiver != self.node_id:
            return
        if self.radio.is_transmitting or self.in_txn:
            return
        if self.nav_until > self.sim.now:
            # LBP's negative channel feedback.
            self._respond_after_sifs(NctsFrame(self.node_id, frame.transmitter))
            return
        self._respond_after_sifs(CtsFrame(self.node_id, frame.transmitter))

    #: How long an overheard RTS keeps the exchange window open: covers
    #: CTS + a full-size data frame + slack.
    EXCHANGE_WINDOW = 10_000_000  # 10 ms

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        if frame.dst != BROADCAST:
            return
        self.stats.count_rx("RDATA")
        self._exchange_window.pop(frame.src, None)
        # The leader (who CTS'd) acknowledges. We approximate leadership
        # locally: a node ACKs iff it sent the CTS for this exchange --
        # tracked by the sender addressing the RTS to it; others stay
        # silent unless they saw corruption (NAK path via on_frame_error).
        if self._expecting_ack_for == frame.src:
            self._expecting_ack_for = None
            self._respond_after_sifs(AckFrame(self.node_id, frame.src))
        self._deliver_data(frame)

    _expecting_ack_for: Optional[int] = None

    def _respond_after_sifs(self, frame: object) -> None:
        if isinstance(frame, CtsFrame):
            self._expecting_ack_for = frame.receiver
        super()._respond_after_sifs(frame)

    def on_frame_error(self, sender: int) -> None:
        # A corrupted frame from a source with an open exchange window:
        # reply exactly one NAK to force a retransmission. Closing the
        # window here is what prevents NAK<->collision feedback storms.
        expiry = self._exchange_window.pop(sender, None)
        if expiry is not None and self.sim.now <= expiry:
            self._respond_after_sifs(NakFrame(self.node_id, sender))
