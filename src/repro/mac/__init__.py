"""MAC layer: frame formats, shared machinery, and the baseline protocols.

* :mod:`repro.mac.frames`  -- every frame type with exact on-air sizes
  (Fig. 3's MRTS, 802.11's RTS/CTS/ACK, BMMM's RAK, LBP's NCTS/NAK, data).
* :mod:`repro.mac.backoff` -- the CW/BI backoff engine of Section 3.3.1.
* :mod:`repro.mac.base`    -- the MacProtocol service interface (Reliable /
  Unreliable Send x unicast / multicast / broadcast) and the transmit queue.
* :mod:`repro.mac.stats`   -- per-node counters behind every figure.
* :mod:`repro.mac.dot11`   -- IEEE 802.11 DCF machinery (substrate).
* :mod:`repro.mac.bmmm`    -- the BMMM comparison protocol (Sun et al.).
* :mod:`repro.mac.bmw`     -- the BMW protocol (Tang & Gerla) [extension].
* :mod:`repro.mac.lbp`     -- the Leader Based Protocol [extension].
* :mod:`repro.mac.mx`      -- an 802.11MX-style receiver-initiated
  busy-tone NAK protocol [extension].
* :mod:`repro.mac.rmac`    -- RMAC itself, re-exported here so every
  protocol is importable from one package. The canonical home stays
  :mod:`repro.core` (the paper's contribution gets its own package) and
  ``repro.core.rmac`` imports keep working unchanged.
"""

from repro.mac.backoff import Backoff
from repro.mac.base import BROADCAST, MacProtocol, SendRequest, TransmitQueue
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    FrameType,
    MrtsFrame,
    NakFrame,
    NctsFrame,
    RakFrame,
    RtsFrame,
)
from repro.mac.stats import MacStats

#: RMAC names re-exported from :mod:`repro.mac.rmac`, resolved lazily
#: (PEP 562): the engine's own imports pass through this package while
#: :mod:`repro.core` is still initializing, so an eager import here
#: would be circular.
_RMAC_EXPORTS = ("RmacConfig", "RmacProtocol", "RmacState")


def __getattr__(name):
    if name in _RMAC_EXPORTS:
        from repro.mac import rmac

        return getattr(rmac, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "RmacConfig",
    "RmacProtocol",
    "RmacState",
    "Backoff",
    "BROADCAST",
    "MacProtocol",
    "SendRequest",
    "TransmitQueue",
    "FrameType",
    "MrtsFrame",
    "RtsFrame",
    "CtsFrame",
    "AckFrame",
    "RakFrame",
    "NctsFrame",
    "NakFrame",
    "DataFrame",
    "MacStats",
]
