"""MAC layer: frame formats, shared machinery, and the baseline protocols.

* :mod:`repro.mac.frames`  -- every frame type with exact on-air sizes
  (Fig. 3's MRTS, 802.11's RTS/CTS/ACK, BMMM's RAK, LBP's NCTS/NAK, data).
* :mod:`repro.mac.backoff` -- the CW/BI backoff engine of Section 3.3.1.
* :mod:`repro.mac.base`    -- the MacProtocol service interface (Reliable /
  Unreliable Send x unicast / multicast / broadcast) and the transmit queue.
* :mod:`repro.mac.stats`   -- per-node counters behind every figure.
* :mod:`repro.mac.dot11`   -- IEEE 802.11 DCF machinery (substrate).
* :mod:`repro.mac.bmmm`    -- the BMMM comparison protocol (Sun et al.).
* :mod:`repro.mac.bmw`     -- the BMW protocol (Tang & Gerla) [extension].
* :mod:`repro.mac.lbp`     -- the Leader Based Protocol [extension].
* :mod:`repro.mac.mx`      -- an 802.11MX-style receiver-initiated
  busy-tone NAK protocol [extension].

RMAC itself -- the paper's contribution -- lives in :mod:`repro.core`.
"""

from repro.mac.backoff import Backoff
from repro.mac.base import BROADCAST, MacProtocol, SendRequest, TransmitQueue
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    FrameType,
    MrtsFrame,
    NakFrame,
    NctsFrame,
    RakFrame,
    RtsFrame,
)
from repro.mac.stats import MacStats

__all__ = [
    "Backoff",
    "BROADCAST",
    "MacProtocol",
    "SendRequest",
    "TransmitQueue",
    "FrameType",
    "MrtsFrame",
    "RtsFrame",
    "CtsFrame",
    "AckFrame",
    "RakFrame",
    "NctsFrame",
    "NakFrame",
    "DataFrame",
    "MacStats",
]
