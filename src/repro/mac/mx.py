"""An 802.11MX-style receiver-initiated busy-tone multicast MAC
(after Gupta, Shankar & Lalwani, ICC 2003) [extension].

The contrast the paper draws in Section 2, reproduced executably:

* sender-initiated RMAC collects *positive* per-receiver feedback (ABTs)
  and can therefore guarantee full reliability;
* receiver-initiated MX uses a single *negative* feedback tone: after the
  multicast announcement (here reusing the MRTS frame as the multicast
  RTS) and the DATA frame, any intended receiver whose copy was corrupted
  raises the NAK tone; silence means success. A receiver that missed the
  announcement entirely never enters the NAK state, so the sender can
  falsely conclude success -- MX's structural reliability gap.

Implementation notes: the NAK tone rides the ABT channel (one
narrow-band tone channel, used negatively); retransmissions repeat the
full announcement + data to the *whole* group, since negative feedback
does not identify who failed.
"""

from __future__ import annotations

from typing import Optional

from repro.mac.addresses import BROADCAST
from repro.mac.base import SendRequest
from repro.mac.dot11 import Dot11Base
from repro.mac.frames import DataFrame, MrtsFrame
from repro.phy.busytone import ToneType
from repro.sim.timers import Timer
from repro.sim.units import US


class MxProtocol(Dot11Base):
    """Receiver-initiated busy-tone NAK multicast."""

    NAME = "mx"

    #: NAK tone window/duration: 2 tau + lambda, as for RMAC's ABT.
    NAK_WINDOW = 17 * US

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._request: Optional[SendRequest] = None
        self._failures = 0
        self._seq = 0
        self._phase = "idle"
        self._nak_check_start = 0
        self._nak_timer = Timer(self.sim, self._on_nak_window_done, "nak-window")
        # Receiver side.
        self._expect_from: Optional[int] = None
        self._expect_timer = Timer(self.sim, self._on_expect_timeout, "mx-expect")
        self._got_first_bit = False

    def _has_work(self) -> bool:
        return self._request is not None or super()._has_work()

    # ==================================================================
    # Sender
    # ==================================================================
    def _begin_txn(self) -> None:
        if self._request is None:
            request = self.queue.pop()
            self._request = request
            self._seq = (self._seq + 1) & 0xFFFF
            self._failures = 0
        request = self._request
        if not request.reliable:
            frame = DataFrame(
                src=self.node_id,
                dst=request.receivers[0],
                seq=self._seq,
                payload_bytes=request.payload_bytes,
                reliable=False,
                payload=request.payload,
                overhead=self.config.data_overhead,
            )
            self.stats.count_tx("UDATA")
            self._phase = "tx-bcast"
            self._send_frame(frame, self._on_broadcast_sent)
            return
        announce = MrtsFrame(self.node_id, tuple(request.receivers))
        self._phase = "announce"
        self.stats.count_tx("MRTS")
        self.stats.mrts_transmissions += 1
        self.stats.record_mrts_length(announce.size_bytes)
        self._send_frame(announce, self._on_announce_sent)

    def _on_broadcast_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        self._request = None
        self._phase = "idle"
        self.stats.unreliable_sent += 1
        assert request is not None
        self._complete(request, acked=(), failed=(), dropped=False)
        self._end_txn()

    def _on_announce_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        assert request is not None
        data = DataFrame(
            src=self.node_id,
            dst=BROADCAST,
            seq=self._seq,
            payload_bytes=request.payload_bytes,
            reliable=True,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self._phase = "send-data"
        self.sim.after(
            self.config.phy.sifs,
            lambda: self._send_frame(data, self._on_data_sent),
            label="sifs-data",
        )

    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self.stats.count_tx("RDATA")
        self._phase = "nak-window"
        self._nak_check_start = self.sim.now
        self._nak_timer.start(self.NAK_WINDOW)

    def _on_nak_window_done(self) -> None:
        request = self._request
        assert request is not None
        nak = (
            self.radio.tone_longest_presence(
                ToneType.ABT, self._nak_check_start, self.sim.now
            )
            >= self.config.phy.cca_time
        )
        self.stats.abt_check_time += self.NAK_WINDOW
        if not nak:
            # Silence: assume success (including receivers that never heard
            # the announcement -- the reliability gap).
            self._request = None
            self._phase = "idle"
            self.backoff.reset_cw()
            self.stats.packets_delivered += 1
            self._complete(request, acked=request.receivers, failed=(), dropped=False)
            self._end_txn()
            return
        self._failures += 1
        if self._failures > self.config.retry_limit:
            self._request = None
            self._phase = "idle"
            self.stats.packets_dropped += 1
            self.backoff.reset_cw()
            self._complete(request, acked=(), failed=request.receivers, dropped=True)
        else:
            self.stats.retransmissions += 1
            self._phase = "idle"
            self.backoff.double_cw()
        self._end_txn()

    def _on_phase_timeout(self) -> None:  # pragma: no cover - MX has none
        pass

    # ==================================================================
    # Receiver
    # ==================================================================
    def on_frame_received(self, frame: object, sender: int) -> None:
        if isinstance(frame, MrtsFrame):
            self.stats.count_rx("MRTS")
            if self.node_id in frame.receivers:
                self.stats.control_rx_time += self.radio.frame_airtime(frame)
            if self.node_id in frame.receivers and not self.in_txn:
                self._expect_from = frame.transmitter
                self._got_first_bit = False
                # DATA follows after SIFS; generous guard.
                self._expect_timer.start(
                    self.config.phy.sifs + 2 * self.config.tau + 4 * US
                )
            return
        super().on_frame_received(frame, sender)

    def on_rx_start(self, sender: int) -> None:
        if self._expect_from is not None and not self._got_first_bit:
            self._got_first_bit = True
            self._expect_timer.cancel()

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        if self._expect_from is None or frame.src != self._expect_from:
            return
        self._expect_from = None
        self.stats.count_rx("RDATA")
        self._deliver_data(frame)

    def on_frame_error(self, sender: int) -> None:
        if self._expect_from is not None and self._got_first_bit:
            # Corrupted copy: raise the NAK tone.
            self._expect_from = None
            self._nak_pulse()

    def _on_expect_timeout(self) -> None:
        if self._expect_from is not None and not self._got_first_bit:
            # Announcement heard but no data started: NAK as well.
            self._expect_from = None
            self._nak_pulse()

    def _nak_pulse(self) -> None:
        channel = self.radio.tone_channel(ToneType.ABT)
        if not channel.is_emitting(self.node_id):
            self.radio.tone_pulse(ToneType.ABT, self.NAK_WINDOW)
