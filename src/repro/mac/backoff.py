"""The backoff state of Section 3.3.1.

Every node keeps two variables, both in units of slot times:

* ``BI`` (Backoff Interval) -- the remaining deferral, persisted across
  suspensions (a busy channel pauses the countdown without redrawing);
* ``CW`` (Contention Window) -- doubled (up to ``cw_max``) on failed
  transmissions, reset to ``cw_min`` on success, and used to initialize
  BI uniformly in ``[0, CW]``.

The per-slot countdown loop itself lives in each protocol (RMAC senses
data + RBT channels; the 802.11 family senses data + NAV), so this class
only owns the variables, the draw, and the CW dynamics.
"""

from __future__ import annotations

import random


class Backoff:
    """CW/BI bookkeeping shared by RMAC and the 802.11-family protocols."""

    def __init__(self, rng: random.Random, cw_min: int = 31, cw_max: int = 1023):
        if cw_min < 0 or cw_max < cw_min:
            raise ValueError(f"invalid contention window bounds [{cw_min}, {cw_max}]")
        self._rng = rng
        self.cw_min = cw_min
        self.cw_max = cw_max
        self.cw = cw_min
        self.bi = 0
        #: Number of draws performed (instrumentation).
        self.draws = 0

    def draw(self) -> int:
        """Set BI to a uniform random slot count in ``[0, CW]`` and return it."""
        self.bi = self._rng.randint(0, self.cw)
        self.draws += 1
        return self.bi

    def decrement(self) -> None:
        """Count one idle slot down (clamped at zero)."""
        if self.bi > 0:
            self.bi -= 1

    @property
    def expired(self) -> bool:
        return self.bi == 0

    def double_cw(self) -> None:
        """Exponential increase after a failed transmission."""
        self.cw = min(self.cw_max, 2 * self.cw + 1)

    def reset_cw(self) -> None:
        """Reset after a successful transmission or a frame drop."""
        self.cw = self.cw_min

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Backoff BI={self.bi} CW={self.cw}>"
