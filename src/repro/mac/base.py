"""The MAC service interface shared by RMAC and the baselines.

RMAC (Section 3.3) exposes two services -- **Reliable Send** and
**Unreliable Send** -- each covering unicast, multicast and broadcast.
The same surface is implemented by every protocol in this repository, so
the network layer and the experiment harness are protocol-agnostic:

* ``send_reliable(receivers, payload, payload_bytes)`` -- receivers is an
  explicit tuple (one address = unicast; the whole neighbor set =
  reliable broadcast);
* ``send_unreliable(dst, payload, payload_bytes)`` -- dst is a node id,
  BROADCAST, or a multicast group sentinel.

Requests are queued in a FIFO :class:`TransmitQueue` (unbounded by
default, per the paper's loss model) and completed with a
:class:`SendOutcome`, which the network layer and the metrics collectors
observe.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.mac.addresses import BROADCAST, MULTICAST_FLAG, is_unicast
from repro.mac.stats import MacStats
from repro.phy.radio import Radio, RadioListener
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = [
    "BROADCAST",
    "MULTICAST_FLAG",
    "SendRequest",
    "SendOutcome",
    "TransmitQueue",
    "MacProtocol",
]


@dataclass
class SendRequest:
    """One queued MAC transmission request."""

    payload: object
    payload_bytes: int
    reliable: bool
    #: Reliable: ordered tuple of receiver node ids.
    #: Unreliable: single-element tuple holding the frame's dst address.
    receivers: Tuple[int, ...]
    enqueued_at: int = 0
    on_complete: Optional[Callable[["SendOutcome"], None]] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("negative payload size")
        if self.reliable:
            if not self.receivers:
                raise ValueError("reliable send needs at least one receiver")
            if len(set(self.receivers)) != len(self.receivers):
                raise ValueError("duplicate receivers in reliable send")
            if any(not is_unicast(r) for r in self.receivers):
                raise ValueError("reliable receivers must be concrete node ids")
        else:
            if len(self.receivers) != 1:
                raise ValueError("unreliable send takes exactly one dst address")


@dataclass(frozen=True)
class SendOutcome:
    """Completion report for a :class:`SendRequest`."""

    request: SendRequest
    #: Receivers confirmed (reliable) -- empty for unreliable sends.
    acked: Tuple[int, ...]
    #: Receivers still unconfirmed when the retry limit hit (reliable).
    failed: Tuple[int, ...]
    #: True if the frame was dropped (retry exhaustion or queue overflow).
    dropped: bool
    completed_at: int = 0


class TransmitQueue:
    """FIFO transmit queue with an optional capacity cap."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._items: deque[SendRequest] = deque()
        self.capacity = capacity
        self.enqueued = 0
        self.overflowed = 0

    def push(self, request: SendRequest) -> bool:
        """Enqueue; returns False (and counts an overflow) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.overflowed += 1
            return False
        self._items.append(request)
        self.enqueued += 1
        return True

    def pop(self) -> SendRequest:
        return self._items.popleft()

    def peek(self) -> SendRequest:
        return self._items[0]

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class MacProtocol(RadioListener, ABC):
    """Base class for every MAC protocol in the repository.

    Subclasses implement the channel-access machinery and frame handling;
    this base owns the queue, stats, upper-layer delivery and the service
    entry points.
    """

    #: Human-readable protocol name (used in reports).
    NAME = "mac"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rng: random.Random,
        queue_capacity: Optional[int] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.node_id = node_id
        self.sim = sim
        self.radio = radio
        self.rng = rng
        self.tracer = tracer
        self.queue = TransmitQueue(queue_capacity)
        self.stats = MacStats(node_id=node_id)
        #: Upper-layer receive callback: (payload, src_node) -> None.
        self.upper_rx: Optional[Callable[[object, int], None]] = None
        radio.attach(self)

    # ------------------------------------------------------------------
    # Service entry points (the paper's Reliable / Unreliable Send)
    # ------------------------------------------------------------------
    def send_reliable(
        self,
        receivers: Tuple[int, ...],
        payload: object,
        payload_bytes: int,
        on_complete: Optional[Callable[[SendOutcome], None]] = None,
    ) -> bool:
        """Queue a Reliable Send to an explicit, ordered receiver set.

        Unicast = one receiver; reliable broadcast = the caller's full
        one-hop neighbor set (the paper folds all three modes into the
        address sequence this way).
        """
        request = SendRequest(
            payload=payload,
            payload_bytes=payload_bytes,
            reliable=True,
            receivers=tuple(receivers),
            enqueued_at=self.sim.now,
            on_complete=on_complete,
        )
        return self._enqueue(request)

    def send_unreliable(
        self,
        dst: int,
        payload: object,
        payload_bytes: int,
        on_complete: Optional[Callable[[SendOutcome], None]] = None,
    ) -> bool:
        """Queue an Unreliable Send (one shot, no recovery)."""
        request = SendRequest(
            payload=payload,
            payload_bytes=payload_bytes,
            reliable=False,
            receivers=(dst,),
            enqueued_at=self.sim.now,
            on_complete=on_complete,
        )
        return self._enqueue(request)

    def _enqueue(self, request: SendRequest) -> bool:
        if request.reliable:
            self.stats.packets_offered += 1
        if not self.queue.push(request):
            self.stats.queue_drops += 1
            self._complete(request, acked=(), failed=request.receivers, dropped=True)
            return False
        self._kick()
        return True

    def _complete(
        self,
        request: SendRequest,
        acked: Tuple[int, ...],
        failed: Tuple[int, ...],
        dropped: bool,
    ) -> None:
        if request.on_complete is not None:
            outcome = SendOutcome(
                request=request,
                acked=acked,
                failed=failed,
                dropped=dropped,
                completed_at=self.sim.now,
            )
            request.on_complete(outcome)

    def deliver_up(self, payload: object, src: int) -> None:
        """Hand a received payload to the network layer."""
        if self.upper_rx is not None:
            self.upper_rx(payload, src)

    # ------------------------------------------------------------------
    @abstractmethod
    def _kick(self) -> None:
        """Ensure the protocol engine is running (queue just got work)."""

    def start(self) -> None:
        """Called once when the simulation begins (default: nothing)."""
