"""RMAC under the MAC package: a re-export of :mod:`repro.core.rmac`.

The protocol engine has always lived in :mod:`repro.core` (the paper's
contribution gets its own package), but RMAC *is* a MAC protocol and
callers comparing protocols naturally import them side by side::

    from repro.mac.bmmm import BmmmProtocol
    from repro.mac.rmac import RmacProtocol

Both module paths resolve to the same classes; ``repro.core.rmac``
remains the canonical home and keeps working unchanged.
"""

from repro.core.config import RmacConfig
from repro.core.rmac import RmacProtocol
from repro.core.states import RmacState

__all__ = ["RmacConfig", "RmacProtocol", "RmacState"]
