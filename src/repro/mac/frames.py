"""MAC frame formats with exact on-air sizes and wire serialization.

Sizes follow the paper (Section 2 and Fig. 3):

* MRTS: ``1 (type) + 6 (transmitter) + 1 (count) + 6n (receivers) + 4 (FCS)``
  = ``12 + 6n`` bytes;
* RTS 20 bytes; CTS / ACK / RAK 14 bytes (as in IEEE 802.11 / BMMM);
* LBP's NCTS / NAK mirror CTS / ACK at 14 bytes;
* data frames carry a MAC header + FCS on top of the payload. For RMAC
  reliable data the overhead is 22 bytes, which makes the paper's
  Section 3.4 arithmetic exact: shortest MRTS (18 B -> 168 us) plus
  shortest data frame (22 B -> 184 us) = 352 us, hence the 20-receiver
  limit 352/17. The 802.11-family data frames use the standard
  24 + 4 = 28-byte header+FCS.

``to_bytes`` / ``from_bytes`` implement a real wire format (MAC addresses
are 48-bit node ids, FCS is CRC-32 over the body) so property tests can
round-trip every frame type. The simulator itself passes frame *objects*
around and only uses ``size_bytes`` for timing, as network simulators do.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import ClassVar, Tuple

from repro.mac.addresses import BROADCAST

#: Wire overheads, in bytes.
MRTS_FIXED_BYTES = 12  # type + transmitter + count + FCS
ADDRESS_BYTES = 6
RTS_BYTES = 20
CTS_BYTES = 14
ACK_BYTES = 14
RAK_BYTES = 14
NCTS_BYTES = 14
NAK_BYTES = 14
#: RMAC reliable-data MAC overhead (header + FCS). See module docstring.
RMAC_DATA_OVERHEAD = 22
#: IEEE 802.11 data MAC overhead (24-byte header + 4-byte FCS).
DOT11_DATA_OVERHEAD = 28


class FrameType:
    """Frame type codes used on the wire and for quick dispatch."""

    MRTS = 0x01
    RTS = 0x02
    CTS = 0x03
    ACK = 0x04
    RAK = 0x05
    NCTS = 0x06
    NAK = 0x07
    DATA_RELIABLE = 0x08
    DATA_UNRELIABLE = 0x09

    NAMES: ClassVar[dict] = {
        0x01: "MRTS",
        0x02: "RTS",
        0x03: "CTS",
        0x04: "ACK",
        0x05: "RAK",
        0x06: "NCTS",
        0x07: "NAK",
        0x08: "RDATA",
        0x09: "UDATA",
    }


class FrameDecodeError(ValueError):
    """Raised when a byte string cannot be decoded into a frame."""


def _pack_addr(node: int) -> bytes:
    if not -2 <= node < 2**48 - 1:
        raise ValueError(f"node id {node} not representable as a MAC address")
    # Map sentinels (-1 broadcast, -2 multicast-group flag) to the top ids.
    raw = node if node >= 0 else 2**48 + node
    return raw.to_bytes(ADDRESS_BYTES, "big")


def _unpack_addr(data: bytes) -> int:
    raw = int.from_bytes(data, "big")
    return raw - 2**48 if raw >= 2**48 - 2 else raw


def _with_fcs(body: bytes) -> bytes:
    return body + struct.pack(">I", zlib.crc32(body))


def _strip_fcs(data: bytes, what: str) -> bytes:
    if len(data) < 4:
        raise FrameDecodeError(f"{what}: too short for an FCS")
    body, fcs = data[:-4], struct.unpack(">I", data[-4:])[0]
    if zlib.crc32(body) != fcs:
        raise FrameDecodeError(f"{what}: FCS mismatch")
    return body


@dataclass(frozen=True)
class MrtsFrame:
    """The Multicast Request-To-Send frame (paper Fig. 3).

    ``receivers`` is the *ordered* address sequence; a receiver's index in
    it determines its ABT response slot.
    """

    transmitter: int
    receivers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ValueError("MRTS needs at least one receiver")
        if len(set(self.receivers)) != len(self.receivers):
            raise ValueError("MRTS receivers must be distinct")
        if len(self.receivers) > 255:
            raise ValueError("MRTS receiver count field is one byte")

    @property
    def size_bytes(self) -> int:
        return MRTS_FIXED_BYTES + ADDRESS_BYTES * len(self.receivers)

    def index_of(self, node: int) -> int:
        """The ABT slot index of ``node`` (raises ValueError if absent)."""
        return self.receivers.index(node)

    def to_bytes(self) -> bytes:
        body = bytes([FrameType.MRTS]) + _pack_addr(self.transmitter)
        body += bytes([len(self.receivers)])
        for r in self.receivers:
            body += _pack_addr(r)
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MrtsFrame":
        body = _strip_fcs(data, "MRTS")
        if len(body) < 8 or body[0] != FrameType.MRTS:
            raise FrameDecodeError("not an MRTS frame")
        transmitter = _unpack_addr(body[1:7])
        count = body[7]
        if len(body) != 8 + ADDRESS_BYTES * count:
            raise FrameDecodeError("MRTS length does not match receiver count")
        receivers = tuple(
            _unpack_addr(body[8 + 6 * i : 14 + 6 * i]) for i in range(count)
        )
        return cls(transmitter, receivers)

    def __str__(self) -> str:
        return f"MRTS({self.transmitter}->{list(self.receivers)})"


@dataclass(frozen=True)
class _ControlFrame:
    """Shared shape of the fixed-size control frames.

    Wire layouts follow IEEE 802.11: a 20-byte RTS carries both the
    receiver and the transmitter address; the 14-byte responses (CTS,
    ACK, and the protocol extensions RAK/NCTS/NAK) carry only the
    receiver address -- the transmitter is implied by timing on real
    hardware. The simulation passes frame *objects* around, so the
    ``transmitter`` attribute is always populated in memory; only
    ``to_bytes``/``from_bytes`` reflect the wire truncation
    (``from_bytes`` restores ``transmitter = -1`` for response frames).
    The 2-byte ``aux`` field holds the NAV duration (RTS/CTS), BMW's
    expected sequence number (CTS), or BMMM's RAK sequence number.
    """

    transmitter: int
    receiver: int

    TYPE: ClassVar[int] = 0
    SIZE: ClassVar[int] = 14
    #: True if the wire format carries the transmitter address (RTS).
    WIRE_TRANSMITTER: ClassVar[bool] = False
    aux: int = 0

    @property
    def size_bytes(self) -> int:
        return self.SIZE

    def to_bytes(self) -> bytes:
        body = bytes([self.TYPE]) + _pack_addr(self.receiver)
        if self.WIRE_TRANSMITTER:
            body += _pack_addr(self.transmitter)
        body += struct.pack(">H", self.aux & 0xFFFF)
        pad = self.SIZE - 4 - len(body)
        if pad < 0:
            raise ValueError(f"{type(self).__name__} layout exceeds {self.SIZE} bytes")
        body += bytes(pad)
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, data: bytes):
        if len(data) != cls.SIZE:
            raise FrameDecodeError(f"{cls.__name__}: wrong size {len(data)}")
        body = _strip_fcs(data, cls.__name__)
        if body[0] != cls.TYPE:
            raise FrameDecodeError(f"not a {cls.__name__}")
        receiver = _unpack_addr(body[1:7])
        offset = 7
        transmitter = -1
        if cls.WIRE_TRANSMITTER:
            transmitter = _unpack_addr(body[7:13])
            offset = 13
        aux = struct.unpack(">H", body[offset : offset + 2])[0]
        return cls(transmitter, receiver, aux)

    def __str__(self) -> str:
        name = FrameType.NAMES.get(self.TYPE, "CTRL")
        return f"{name}({self.transmitter}->{self.receiver})"


@dataclass(frozen=True)
class RtsFrame(_ControlFrame):
    TYPE: ClassVar[int] = FrameType.RTS
    SIZE: ClassVar[int] = RTS_BYTES
    WIRE_TRANSMITTER: ClassVar[bool] = True


@dataclass(frozen=True)
class CtsFrame(_ControlFrame):
    TYPE: ClassVar[int] = FrameType.CTS
    SIZE: ClassVar[int] = CTS_BYTES


@dataclass(frozen=True)
class AckFrame(_ControlFrame):
    TYPE: ClassVar[int] = FrameType.ACK
    SIZE: ClassVar[int] = ACK_BYTES


@dataclass(frozen=True)
class RakFrame(_ControlFrame):
    """BMMM's Request-for-ACK frame."""

    TYPE: ClassVar[int] = FrameType.RAK
    SIZE: ClassVar[int] = RAK_BYTES


@dataclass(frozen=True)
class NctsFrame(_ControlFrame):
    """LBP's Not-Clear-To-Send negative channel feedback."""

    TYPE: ClassVar[int] = FrameType.NCTS
    SIZE: ClassVar[int] = NCTS_BYTES


@dataclass(frozen=True)
class NakFrame(_ControlFrame):
    """LBP's Negative Acknowledgment."""

    TYPE: ClassVar[int] = FrameType.NAK
    SIZE: ClassVar[int] = NAK_BYTES


@dataclass(frozen=True)
class DataFrame:
    """A MAC data frame (reliable or unreliable).

    ``dst`` is a node id, :data:`~repro.mac.addresses.BROADCAST`, or a
    multicast group sentinel; reliable multicast under RMAC addresses
    receivers via the preceding MRTS, so ``dst`` is then informational.
    ``payload`` is an opaque object handed up to the network layer;
    ``payload_bytes`` is its on-air size.
    """

    src: int
    dst: int
    seq: int
    payload_bytes: int
    reliable: bool
    payload: object = field(default=None, compare=False)
    #: MAC header + FCS overhead; set per protocol family.
    overhead: int = RMAC_DATA_OVERHEAD

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("negative payload size")
        if self.overhead < 0:
            raise ValueError("negative overhead")

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes + self.overhead

    @property
    def frame_type(self) -> int:
        return FrameType.DATA_RELIABLE if self.reliable else FrameType.DATA_UNRELIABLE

    def to_bytes(self) -> bytes:
        body = bytes([self.frame_type]) + _pack_addr(self.src) + _pack_addr(self.dst)
        body += struct.pack(">HB H", self.seq & 0xFFFF, self.overhead & 0xFF,
                            self.payload_bytes & 0xFFFF)
        body += bytes(self.payload_bytes)  # payload contents are opaque
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DataFrame":
        body = _strip_fcs(data, "DataFrame")
        if len(body) < 18 or body[0] not in (
            FrameType.DATA_RELIABLE,
            FrameType.DATA_UNRELIABLE,
        ):
            raise FrameDecodeError("not a data frame")
        src = _unpack_addr(body[1:7])
        dst = _unpack_addr(body[7:13])
        seq, overhead, payload_bytes = struct.unpack(">HB H", body[13:18])
        if len(body) != 18 + payload_bytes:
            raise FrameDecodeError("data frame length mismatch")
        return cls(
            src=src,
            dst=dst,
            seq=seq,
            payload_bytes=payload_bytes,
            reliable=body[0] == FrameType.DATA_RELIABLE,
            overhead=overhead,
        )

    def __str__(self) -> str:
        kind = "RDATA" if self.reliable else "UDATA"
        dst = "BCAST" if self.dst == BROADCAST else self.dst
        return f"{kind}({self.src}->{dst} seq={self.seq} {self.payload_bytes}B)"
