"""Address sentinels shared across the MAC layer."""

from __future__ import annotations

#: The broadcast address (all one-hop neighbors).
BROADCAST: int = -1

#: Sentinel marking a multicast-group-addressed unreliable data frame;
#: the actual group id travels in the frame's payload object.
MULTICAST_FLAG: int = -2


def is_unicast(address: int) -> bool:
    """True for a concrete node address (not broadcast / multicast)."""
    return address >= 0
