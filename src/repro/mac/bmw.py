"""BMW -- Broadcast Medium Window (Tang & Gerla, MILCOM 2001; Fig. 1a).

Reliable broadcast realized as one RTS/CTS/DATA/ACK *unicast per
receiver*, each preceded by its own contention phase, while the other
receivers try to overhear the DATA frame:

* the CTS carries the receiver's next expected sequence number (``aux``);
  if the receiver already overheard the current frame the sender skips
  the DATA/ACK and moves to the next receiver -- BMW's saving;
* every node delivers overheard reliable DATA promiscuously (with
  duplicate suppression), since the frame is meant for the whole
  neighborhood;
* a missing CTS/ACK retries the same receiver after backoff with CW
  doubling; at the retry limit that receiver is marked failed and the
  round-robin continues -- this sequencing is what produces the
  arbitrarily long per-receiver delays the paper criticizes in Section 2.

The full BMW queue/window machinery (receivers requesting old sequence
numbers) collapses in this workload to the overhear-skip above, because
the network layer hands the MAC one packet at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mac.base import SendRequest
from repro.mac.dot11 import Dot11Base
from repro.mac.frames import AckFrame, CtsFrame, DataFrame, RtsFrame


class BmwProtocol(Dot11Base):
    """Broadcast Medium Window."""

    NAME = "bmw"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._request: Optional[SendRequest] = None
        self._pending: List[int] = []
        self._acked: List[int] = []
        self._failed: List[int] = []
        self._failures = 0
        self._seq = 0
        self._phase = "idle"
        self._drop_counted = False
        #: receiver side: highest seq seen per sender (for the CTS field).
        self._last_seen: Dict[int, int] = {}

    def _has_work(self) -> bool:
        return self._request is not None or super()._has_work()

    # ==================================================================
    # Sender
    # ==================================================================
    def _begin_txn(self) -> None:
        if self._request is None:
            request = self.queue.pop()
            self._request = request
            self._seq = (self._seq + 1) & 0xFFFF
            self._pending = list(request.receivers) if request.reliable else []
            self._acked = []
            self._failed = []
            self._failures = 0
            self._drop_counted = False
        request = self._request
        if not request.reliable:
            frame = DataFrame(
                src=self.node_id,
                dst=request.receivers[0],
                seq=self._seq,
                payload_bytes=request.payload_bytes,
                reliable=False,
                payload=request.payload,
                overhead=self.config.data_overhead,
            )
            self.stats.count_tx("UDATA")
            self._phase = "tx-bcast"
            self._send_frame(frame, self._on_broadcast_sent)
            return
        if not self._pending:  # everyone handled; finish
            self._finish()
            return
        if self._failures > 0:
            self.stats.retransmissions += 1
        target = self._pending[0]
        self._phase = "rts"
        self._send_frame(RtsFrame(self.node_id, target), self._on_rts_sent)

    def _on_broadcast_sent(self, frame: object, aborted: bool) -> None:
        request = self._request
        self._request = None
        self._phase = "idle"
        self.stats.unreliable_sent += 1
        assert request is not None
        self._complete(request, acked=(), failed=(), dropped=False)
        self._end_txn()

    def _on_rts_sent(self, frame: object, aborted: bool) -> None:
        self._phase = "wait-cts"
        self._phase_timer.start(self.config.response_timeout(CtsFrame.SIZE))

    def _handle_cts(self, frame: CtsFrame) -> None:
        if self._phase != "wait-cts" or frame.receiver != self.node_id:
            return
        if not self._pending or frame.transmitter != self._pending[0]:
            return
        self._phase_timer.cancel()
        if frame.aux > self._seq:
            # Receiver already overheard this frame: skip the DATA.
            self._receiver_done(acked=True)
            return
        request = self._request
        assert request is not None
        data = DataFrame(
            src=self.node_id,
            dst=self._pending[0],
            seq=self._seq,
            payload_bytes=request.payload_bytes,
            reliable=True,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self._phase = "send-data"
        self.sim.after(
            self.config.phy.sifs,
            lambda: self._send_frame(data, self._on_data_sent),
            label="sifs-data",
        )

    def _on_data_sent(self, frame: object, aborted: bool) -> None:
        self.stats.count_tx("RDATA")
        self._phase = "wait-ack"
        self._phase_timer.start(self.config.response_timeout(AckFrame.SIZE))

    def _handle_ack(self, frame: AckFrame) -> None:
        if self._phase != "wait-ack" or frame.receiver != self.node_id:
            return
        if not self._pending or frame.transmitter != self._pending[0]:
            return
        self._phase_timer.cancel()
        self._receiver_done(acked=True)

    def _on_phase_timeout(self) -> None:
        if self._phase not in ("wait-cts", "wait-ack"):
            return
        self._failures += 1
        if self._failures > self.config.retry_limit:
            self._receiver_done(acked=False)
        else:
            self._phase = "idle"
            self.backoff.double_cw()
            self._end_txn()  # back off, then retry the same receiver

    def _receiver_done(self, acked: bool) -> None:
        target = self._pending.pop(0)
        (self._acked if acked else self._failed).append(target)
        if not acked and not self._drop_counted:
            self._drop_counted = True
            self.stats.packets_dropped += 1
        self._failures = 0
        self.backoff.reset_cw()
        self._phase = "idle"
        if self._pending:
            self._end_txn()  # contention phase before the next unicast
        else:
            self._finish()

    def _finish(self) -> None:
        request = self._request
        self._request = None
        self._phase = "idle"
        assert request is not None
        if not self._failed:
            self.stats.packets_delivered += 1
        self._complete(
            request,
            acked=tuple(self._acked),
            failed=tuple(self._failed),
            dropped=self._drop_counted,
        )
        self._end_txn()

    # ==================================================================
    # Receiver
    # ==================================================================
    def _handle_rts(self, frame: RtsFrame) -> None:
        if frame.receiver != self.node_id:
            return
        if self.radio.is_transmitting or self.in_txn:
            return
        next_expected = self._last_seen.get(frame.transmitter, 0) + 1
        self._respond_after_sifs(
            CtsFrame(self.node_id, frame.transmitter, aux=next_expected)
        )

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        # Promiscuous: BMW data is broadcast content riding in a unicast.
        self.stats.count_rx("RDATA")
        self._last_seen[frame.src] = max(self._last_seen.get(frame.src, 0), frame.seq)
        if frame.dst == self.node_id:
            self._respond_after_sifs(AckFrame(self.node_id, frame.src))
        self._deliver_data(frame)
