"""MRTS construction and the Section 3.4 receiver-splitting refinement.

A Reliable Send with more receivers than ``max_receivers`` is divided
into multiple invocations ("with any two consecutive invocations
separated by a backoff procedure"); the split keeps the caller's receiver
order. The limit exists to keep the MRTS short and to prevent mixed-up
ABTs (Fig. 5): the shortest MRTS + shortest data exchange lasts 352 us,
and an ABT check takes 17 us, so at most 352/17 = 20 windows fit before a
neighboring transaction's ABT could alias into ours.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.mac.frames import MrtsFrame


def split_receivers(receivers: Sequence[int], max_receivers: int) -> List[Tuple[int, ...]]:
    """Split a receiver sequence into chunks of at most ``max_receivers``.

    Order is preserved; every receiver appears in exactly one chunk.
    """
    if max_receivers < 1:
        raise ValueError("max_receivers must be >= 1")
    receivers = tuple(receivers)
    if not receivers:
        raise ValueError("empty receiver sequence")
    return [
        receivers[i : i + max_receivers] for i in range(0, len(receivers), max_receivers)
    ]


def build_mrts(transmitter: int, pending: Sequence[int]) -> MrtsFrame:
    """Construct an MRTS for the not-yet-acknowledged receivers.

    On a retransmission the paper "reconstructs an MRTS frame that
    contains the MAC addresses of those receivers for which no ABTs are
    detected" -- so the frame shrinks as receivers are confirmed, which
    is why Fig. 12 sees shorter MRTSs under load and mobility.
    """
    return MrtsFrame(transmitter=transmitter, receivers=tuple(pending))
