"""The RMAC protocol engine (Section 3.3 and the appendix).

One :class:`RmacProtocol` instance runs per node. It implements:

* the backoff procedure of Section 3.3.1 -- BI/CW in slot units, the
  countdown sensing *both* the data channel and the RBT channel each
  slot, suspension without redraw when either is busy, and a backoff
  after every completed transmission or drop;
* the Reliable Send procedure of Section 3.3.2 -- MRTS addressing an
  ordered receiver list, receivers raising RBT and waiting ``Twf_rdata``
  for the first bit of data, the sender waiting ``Twf_rbt`` for RBT,
  collision-free data under RBT protection, ordered ABT response windows,
  and selective retransmission via a reconstructed MRTS;
* abort-on-RBT for MRTS and unreliable data transmissions (steps 3 of
  Sections 3.3.2/3.3.3), the mechanism behind Fig. 13;
* the Unreliable Send procedure of Section 3.3.3;
* the Section 3.4 refinement splitting large receiver sets across
  multiple invocations separated by backoff.

The node state always holds one of the appendix's eight
:class:`~repro.core.states.RmacState` values and every change is checked
against the Fig. 14 transition table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import RmacConfig
from repro.core.mrts import build_mrts, split_receivers
from repro.core.states import RmacState, valid_transition
from repro.mac.addresses import BROADCAST, MULTICAST_FLAG
from repro.mac.backoff import Backoff
from repro.mac.base import MacProtocol, SendRequest
from repro.mac.frames import DataFrame, MrtsFrame
from repro.phy.busytone import ToneType
from repro.phy.channel import Transmission
from repro.phy.radio import Radio
from repro.sim.engine import EventHandle, FastEvent, Simulator
from repro.sim.timers import Timer
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class _ReliableTransaction:
    """Sender-side state for one Reliable Send request."""

    request: SendRequest
    chunks: List[Tuple[int, ...]]
    seq: int
    chunk_index: int = 0
    pending: List[int] = field(default_factory=list)
    acked: List[int] = field(default_factory=list)
    failed: List[int] = field(default_factory=list)
    #: Failed attempts of the *current* chunk (abort / no RBT / missing ABTs).
    failures: int = 0
    #: MRTS transmissions started for the current chunk.
    attempts: int = 0
    drop_counted: bool = False

    def load_chunk(self) -> None:
        self.pending = list(self.chunks[self.chunk_index])
        self.failures = 0
        self.attempts = 0

    @property
    def exhausted(self) -> bool:
        return self.chunk_index >= len(self.chunks)


class _PumpEvent(FastEvent):
    """The reusable backoff-pump tick (one per node, never cancelled).

    The per-slot countdown is the most frequent event in a paper-scale
    run; recycling a single fire-and-forget event through
    ``Simulator.schedule_fast`` makes each tick allocation-free (no
    EventHandle, no closure). At most one is in flight per node,
    guarded by ``RmacProtocol._pump_scheduled``.
    """

    __slots__ = ("mac",)

    label = "rmac-pump"

    def __init__(self, mac: "RmacProtocol"):
        self.mac = mac

    def __call__(self) -> None:
        self.mac._tick()


class RmacProtocol(MacProtocol):
    """RMAC: reliable + unreliable send over busy tones."""

    NAME = "rmac"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rng: random.Random,
        config: Optional[RmacConfig] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.config = config or RmacConfig()
        super().__init__(
            node_id,
            sim,
            radio,
            rng,
            queue_capacity=self.config.queue_capacity,
            tracer=tracer,
        )
        phy = self.config.phy
        #: Slot duration (ns), cached off the config chain for the pump.
        self._slot_time = phy.slot_time
        self.state = RmacState.IDLE
        self.backoff = Backoff(rng, phy.cw_min, phy.cw_max)
        self.multicast_groups: set[int] = set()

        # Sender-side context.
        self._txn: Optional[_ReliableTransaction] = None
        self._current_tx: Optional[Transmission] = None
        self._rbt_window_start: int = 0
        self._abt_check_event: Optional[EventHandle] = None
        self._seq = 0

        # Receiver-side context.
        self._rx_mrts: Optional[MrtsFrame] = None
        self._rx_index: int = -1
        self._rx_first_bit = False
        self._twf_rdata = Timer(sim, self._on_twf_rdata_expired, "Twf_rdata")
        self._twf_rbt = Timer(sim, self._on_twf_rbt_expired, "Twf_rbt")

        #: One reusable pump event (never cancelled, at most one in
        #: flight -- guarded by ``_pump_scheduled``), so the per-slot
        #: countdown schedules with zero allocations.
        self._pump_event = _PumpEvent(self)
        self._pump_scheduled = False
        #: Raw sensing maps (see Radio.sense_maps): the pump senses both
        #: channels with dict lookups instead of four method calls.
        self._busy_map, self._tx_map, self._rbt_map = radio.sense_maps(ToneType.RBT)
        self._idle_wait_pending = False
        self._pending_unreliable: Optional[SendRequest] = None

    # ==================================================================
    # State bookkeeping
    # ==================================================================
    def _set_state(self, new: RmacState) -> None:
        if new is self.state:
            return
        assert valid_transition(self.state, new), (
            f"node {self.node_id}: illegal transition {self.state.value} -> {new.value}"
        )
        if self.tracer.enabled:
            # Guarded: enum ``.value`` is a Python-level descriptor call,
            # and state changes are among the most frequent events in a run.
            self.tracer.emit(
                self.sim.now, self.node_id, "state", frm=self.state.value, to=new.value
            )
        self.state = new

    def _channels_idle(self) -> bool:
        """Both the data channel and the RBT channel are idle (3.3.1)."""
        node = self.node_id
        return (node not in self._busy_map and node not in self._tx_map
                and self._rbt_map.get(node, 0) <= 0)

    def _has_work(self) -> bool:
        return self._txn is not None or bool(self.queue)

    # ==================================================================
    # The backoff pump (Section 3.3.1)
    # ==================================================================
    def _kick(self) -> None:
        if not self._pump_scheduled and self.state in (RmacState.IDLE, RmacState.BACKOFF):
            # Backoff condition (1): "a node has a packet to transmit, but
            # either data or RBT channel is busy" invokes the backoff
            # procedure, i.e. draws a fresh BI. A zero idle duration means
            # the channel was busy at this very instant (typically: the
            # packet was handed down at the end of a reception) -- without
            # the draw, sibling receivers of the same multicast would all
            # start forwarding simultaneously and collide forever.
            if self.backoff.bi == 0 and (
                not self._channels_idle() or self.radio.data_idle_duration() == 0
            ):
                self.backoff.draw()
            # C1/C10 allow an immediate transmission when BI is 0 and the
            # channels are idle, so the first tick runs now, not a slot later.
            self._pump_scheduled = True
            sim = self.sim
            sim.schedule_fast(sim.now, self._pump_event)

    def _ensure_pump(self, delay: int) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            sim = self.sim
            sim.schedule_fast(sim.now + delay, self._pump_event)

    def _tick(self) -> None:
        self._pump_scheduled = False
        state = self.state
        if state is not RmacState.IDLE and state is not RmacState.BACKOFF:
            return  # a transaction owns the node; it will resume the pump
        # _channels_idle() inlined: the pump fires every 20 us slot and
        # the call overhead exceeds the three map probes. Tests cripple a
        # node's sensing by swapping the instance's map references (see
        # test_without_suppression_hidden_node_collides), which this
        # inline honors just like the method does.
        node = self.node_id
        if (node not in self._busy_map and node not in self._tx_map
                and self._rbt_map.get(node, 0) <= 0):
            backoff = self.backoff
            bi = backoff.bi
            if bi > 0:
                if state is not RmacState.BACKOFF:
                    self._set_state(RmacState.BACKOFF)  # C8
                backoff.bi = bi = bi - 1
            if bi == 0:
                if self._txn is not None or self.queue:
                    # "When BI counts down to 0, the sender begins frame
                    # transmission immediately."  (C6/C14, or C1/C10.)
                    self._start_transmission()
                    return
                if self.state is not RmacState.IDLE:  # may have just entered BACKOFF
                    self._set_state(RmacState.IDLE)  # C9: nothing to send
                return
            if not self._pump_scheduled:
                self._pump_scheduled = True
                sim = self.sim
                sim.schedule_fast(sim.now + self._slot_time, self._pump_event)
        else:
            if state is not RmacState.IDLE:
                self._set_state(RmacState.IDLE)  # C9: suspended, BI kept
            # Rather than polling every slot through a multi-millisecond
            # busy period, sleep until the busy channel clears (the
            # channels report the transition exactly), then resume the
            # slotted countdown.
            if self.backoff.bi > 0 or self._txn is not None or self.queue:
                self._wait_for_idle()

    def _wait_for_idle(self) -> None:
        if self._idle_wait_pending:
            return
        self._idle_wait_pending = True
        if self.radio.data_busy():
            self.radio.notify_data_idle(self._on_channel_cleared)
        else:
            self.radio.tone_channel(ToneType.RBT).notify_clear(
                self.node_id, self._on_channel_cleared
            )

    def _on_channel_cleared(self) -> None:
        # One of the two channels cleared; re-run the pump a slot later --
        # the tick re-checks both and re-waits if the other is still busy.
        self._idle_wait_pending = False
        if self.state in (RmacState.IDLE, RmacState.BACKOFF) and (
            self.backoff.bi > 0 or self._has_work()
        ):
            self._ensure_pump(self._slot_time)

    def _enter_contention(self, draw: bool) -> None:
        """Return to IDLE/BACKOFF, optionally invoking the backoff draw."""
        if draw:
            self.backoff.draw()
        if self.backoff.bi > 0 and self._channels_idle():
            self._set_state(RmacState.BACKOFF)
        else:
            self._set_state(RmacState.IDLE)
        if self.backoff.bi > 0 or self._has_work():
            self._ensure_pump(self._slot_time)

    # ==================================================================
    # Transmission start (pump reached BI == 0 with work queued)
    # ==================================================================
    def _start_transmission(self) -> None:
        if self._txn is None:
            request = self.queue.pop()
            if request.reliable:
                self._txn = _ReliableTransaction(
                    request=request,
                    chunks=split_receivers(request.receivers, self.config.max_receivers),
                    seq=self._next_seq(),
                )
                self._txn.load_chunk()
            else:
                self._transmit_unreliable(request)
                return
        self._transmit_mrts()

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) & 0xFFFF
        return self._seq

    # ------------------------------------------------------------------
    # Reliable Send, sender side (Section 3.3.2)
    # ------------------------------------------------------------------
    def _transmit_mrts(self) -> None:
        txn = self._txn
        assert txn is not None and txn.pending
        mrts = build_mrts(self.node_id, txn.pending)
        self._set_state(RmacState.TX_MRTS)  # C10 / C14
        if txn.attempts > 0:
            self.stats.retransmissions += 1
        txn.attempts += 1
        if self.tracer.enabled:
            # Guarded: the tuple() copy is only worth making when traced.
            self.tracer.emit(
                self.sim.now, self.node_id, "mrts-tx",
                receivers=tuple(txn.pending), seq=txn.seq, attempt=txn.attempts,
            )
        self.stats.mrts_transmissions += 1
        self.stats.record_mrts_length(mrts.size_bytes)
        self.stats.count_tx("MRTS")
        self._current_tx = self.radio.transmit(mrts)
        # Step 3: abort if an RBT is detected during the MRTS transmission.
        self.radio.watch_tone(ToneType.RBT, self._on_rbt_detected_during_tx)

    def _on_rbt_detected_during_tx(self, tone: ToneType) -> None:
        if self.state not in (RmacState.TX_MRTS, RmacState.TX_UNRDATA):
            return
        tx = self._current_tx
        if tx is None or self.radio.current_tx() is not tx:
            return
        self.radio.abort(tx)  # on_tx_complete(aborted=True) fires inside

    def _on_twf_rbt_expired(self) -> None:
        assert self.state is RmacState.WF_RBT
        detected = (
            self.radio.tone_longest_presence(
                ToneType.RBT, self._rbt_window_start, self.sim.now
            )
            >= self.config.detect_time
        )
        txn = self._txn
        assert txn is not None
        if detected:
            # C18: at least one receiver is ready; send the data frame.
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, self.node_id, "rbt-detected",
                    window_start=self._rbt_window_start,
                )
            frame = DataFrame(
                src=self.node_id,
                dst=BROADCAST,
                seq=txn.seq,
                payload_bytes=txn.request.payload_bytes,
                reliable=True,
                payload=txn.request.payload,
                overhead=self.config.data_overhead,
            )
            self._set_state(RmacState.TX_RDATA)
            self.stats.count_tx("RDATA")
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, self.node_id, "rdata-tx",
                    seq=txn.seq, n_pending=len(txn.pending),
                )
            self._current_tx = self.radio.transmit(frame)
        else:
            # C12/C15: nobody heard the MRTS; back off and retransmit.
            self.tracer.emit(self.sim.now, self.node_id, "no-rbt")
            self._attempt_failed()

    def _begin_abt_check(self, data_tx_end: int) -> None:
        """Cycle ``Twf_abt`` n times; evaluate every window at the end.

        The sender is passive throughout WF_ABT, so a single event at the
        end of the last window that inspects each window's tone-presence
        history is equivalent to the paper's per-window timer cycling.
        """
        txn = self._txn
        assert txn is not None
        n = len(txn.pending)
        end = data_tx_end + n * self.config.l_abt
        self._abt_check_event = self.sim.at(end, self._on_abt_windows_done, label="Twf_abt")

    def _on_abt_windows_done(self) -> None:
        self._abt_check_event = None
        assert self.state is RmacState.WF_ABT
        txn = self._txn
        assert txn is not None
        n = len(txn.pending)
        l_abt = self.config.l_abt
        start = self.sim.now - n * l_abt
        self.stats.abt_check_time += n * l_abt
        still_pending: List[int] = []
        for i, receiver in enumerate(txn.pending):
            t0 = start + i * l_abt
            t1 = t0 + l_abt
            presence = self.radio.tone_longest_presence(ToneType.ABT, t0, t1)
            if presence >= self.config.detect_time:
                txn.acked.append(receiver)
                self.tracer.emit(self.sim.now, self.node_id, "abt-heard", receiver=receiver)
            else:
                still_pending.append(receiver)
        txn.pending = still_pending
        if not txn.pending:
            self._chunk_succeeded()
        else:
            self.tracer.emit(
                self.sim.now, self.node_id, "abt-missing", receivers=tuple(still_pending)
            )
            self._attempt_failed()

    def _chunk_succeeded(self) -> None:
        txn = self._txn
        assert txn is not None
        self.backoff.reset_cw()
        txn.chunk_index += 1
        self._advance_transaction()

    def _attempt_failed(self) -> None:
        """A Reliable Send attempt failed (abort, no RBT, or missing ABTs)."""
        txn = self._txn
        assert txn is not None
        txn.failures += 1
        if txn.failures > self.config.retry_limit:
            # "If this limit is exceeded, the frame will be dropped."
            txn.failed.extend(txn.pending)
            txn.pending = []
            if not txn.drop_counted:
                txn.drop_counted = True
                self.stats.packets_dropped += 1
            self.tracer.emit(self.sim.now, self.node_id, "drop", seq=txn.seq)
            self.backoff.reset_cw()
            txn.chunk_index += 1
            self._advance_transaction()
        else:
            self.backoff.double_cw()
            self._enter_contention(draw=True)

    def _advance_transaction(self) -> None:
        """Move to the next chunk or complete the request."""
        txn = self._txn
        assert txn is not None
        if txn.exhausted:
            self._txn = None
            if not txn.failed:
                self.stats.packets_delivered += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, self.node_id, "reliable-done",
                    requested=tuple(txn.request.receivers),
                    acked=tuple(txn.acked), failed=tuple(txn.failed),
                    dropped=txn.drop_counted,
                )
            self._complete(
                txn.request,
                acked=tuple(txn.acked),
                failed=tuple(txn.failed),
                dropped=txn.drop_counted,
            )
        else:
            txn.load_chunk()
            txn.seq = self._next_seq()
        # Backoff separates invocations and successive transmissions alike.
        self._enter_contention(draw=True)

    # ------------------------------------------------------------------
    # Unreliable Send (Section 3.3.3)
    # ------------------------------------------------------------------
    def _transmit_unreliable(self, request: SendRequest) -> None:
        frame = DataFrame(
            src=self.node_id,
            dst=request.receivers[0],
            seq=self._next_seq(),
            payload_bytes=request.payload_bytes,
            reliable=False,
            payload=request.payload,
            overhead=self.config.data_overhead,
        )
        self._set_state(RmacState.TX_UNRDATA)  # C1 / C6
        self._pending_unreliable = request
        self.stats.count_tx("UDATA")
        self._current_tx = self.radio.transmit(frame)
        # Step 2 of 3.3.3: abort if RBT is sensed during the transmission.
        self.radio.watch_tone(ToneType.RBT, self._on_rbt_detected_during_tx)

    # ==================================================================
    # Radio callbacks
    # ==================================================================
    def on_tx_complete(self, frame: object, aborted: bool) -> None:
        tx = self._current_tx
        self._current_tx = None
        duration = (tx.end - tx.start) if tx is not None else 0
        if isinstance(frame, MrtsFrame):
            self.radio.unwatch_tone(ToneType.RBT)
            self.stats.control_tx_time += duration
            if aborted:
                # C11: abortion counts as a failed attempt and retransmits.
                self.stats.mrts_aborted += 1
                self.tracer.emit(self.sim.now, self.node_id, "mrts-abort")
                self._attempt_failed()
            else:
                self._set_state(RmacState.WF_RBT)  # C17
                self._rbt_window_start = self.sim.now
                self._twf_rbt.start(self.config.twf_rbt)
        elif isinstance(frame, DataFrame) and frame.reliable:
            self.stats.data_tx_time += duration
            self._set_state(RmacState.WF_ABT)  # C19
            self._begin_abt_check(self.sim.now)
        elif isinstance(frame, DataFrame):
            self.radio.unwatch_tone(ToneType.RBT)
            request = self._pending_unreliable
            self._pending_unreliable = None
            if aborted:
                self.stats.unreliable_aborted += 1
            else:
                self.stats.unreliable_sent += 1
            # C2/C5 with the condition-(3) backoff draw.
            self._complete(request, acked=(), failed=(), dropped=aborted)
            self._enter_contention(draw=True)

    def on_rx_start(self, sender: int) -> None:
        if self.state is RmacState.WF_RDATA and not self._rx_first_bit:
            # "If the first bit of the data frame arrives before Twf_rdata
            # expires, it cancels the timer and the RBT continues until the
            # end of the data frame reception."
            self._rx_first_bit = True
            self._twf_rdata.cancel()

    def on_frame_received(self, frame: object, sender: int) -> None:
        # Exact-type checks first: DataFrame (hellos + payload traffic)
        # dominates receptions, and neither frame class is subclassed;
        # isinstance stays as the fallback for exotic test frames.
        tf = type(frame)
        if tf is DataFrame:
            if frame.reliable:
                self._handle_reliable_data(frame)
            else:
                self._handle_unreliable_data(frame)
        elif tf is MrtsFrame or isinstance(frame, MrtsFrame):
            self.stats.count_rx("MRTS")
            if self.node_id in frame.receivers:
                # Only MRTSs naming this node count toward its R_txoh
                # (overheard MRTSs belong to other transactions).
                self.stats.control_rx_time += self.radio.frame_airtime(frame)
            self._handle_mrts(frame)
        elif isinstance(frame, DataFrame):
            if frame.reliable:
                self._handle_reliable_data(frame)
            else:
                self._handle_unreliable_data(frame)

    def on_frame_error(self, sender: int) -> None:
        if self.state is RmacState.WF_RDATA and self._rx_first_bit:
            # The protected data frame was corrupted anyway (e.g. truncated
            # by an aborting neighbor); give up, no ABT.
            self.tracer.emit(self.sim.now, self.node_id, "rdata-error")
            self._receiver_finish(success=False)

    # ------------------------------------------------------------------
    # Reliable Send, receiver side
    # ------------------------------------------------------------------
    def _handle_mrts(self, mrts: MrtsFrame) -> None:
        if self.node_id not in mrts.receivers:
            return  # no NAV in RMAC: other nodes simply ignore the MRTS
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, self.node_id, "mrts-rx",
                src=mrts.transmitter, index=mrts.index_of(self.node_id),
            )
        if self.state not in (RmacState.IDLE, RmacState.BACKOFF):
            return  # busy as a sender or already committed as a receiver
        self._rx_mrts = mrts
        self._rx_index = mrts.index_of(self.node_id)
        self._rx_first_bit = False
        self._set_state(RmacState.WF_RDATA)  # C3
        self.radio.tone_on(ToneType.RBT)
        self.tracer.emit(self.sim.now, self.node_id, "rbt-on-rx", index=self._rx_index)
        self._twf_rdata.start(self.config.twf_rdata)

    def _on_twf_rdata_expired(self) -> None:
        assert self.state is RmacState.WF_RDATA
        self.tracer.emit(self.sim.now, self.node_id, "rdata-timeout")
        self._receiver_finish(success=False)

    def _handle_reliable_data(self, frame: DataFrame) -> None:
        if self.state is not RmacState.WF_RDATA:
            return  # overheard reliable data we are not a receiver of
        mrts = self._rx_mrts
        assert mrts is not None
        if frame.src != mrts.transmitter:
            # Protected window violated by a foreign reliable frame; the
            # expected frame is gone. Give up without acknowledging.
            self._receiver_finish(success=False)
            return
        self.stats.count_rx("RDATA")
        index = self._rx_index
        l_abt = self.config.l_abt
        # Step 4: reply an ABT in the slot given by the MRTS ordering.
        delay = index * l_abt
        self.tracer.emit(
            self.sim.now, self.node_id, "abt-scheduled",
            index=index, src=frame.src, slot_end=self.sim.now + delay + l_abt,
        )
        pulse = _AbtPulse(self.radio, l_abt)
        if delay == 0:
            pulse()
        else:
            self.sim.after(delay, pulse, label="Ttx_abt")
        self._receiver_finish(success=True)
        self.deliver_up(frame.payload, frame.src)

    def _receiver_finish(self, success: bool) -> None:
        self._twf_rdata.cancel()
        if self.radio.tone_emitting(ToneType.RBT):
            self.radio.tone_off(ToneType.RBT)
        self._rx_mrts = None
        self._rx_index = -1
        self._rx_first_bit = False
        # C4/C7: back to contention; BI is kept (receiving is not a
        # transmission, so no new backoff draw).
        self._enter_contention(draw=False)

    # ------------------------------------------------------------------
    # Unreliable Send, receiver side
    # ------------------------------------------------------------------
    def _handle_unreliable_data(self, frame: DataFrame) -> None:
        dst = frame.dst
        if dst == self.node_id or dst == BROADCAST:
            pass  # unicast to us, or a broadcast
        elif dst == MULTICAST_FLAG:
            group = getattr(frame.payload, "group", None)
            if group not in self.multicast_groups:
                return
        else:
            return
        # count_rx/deliver_up inlined: this is the busiest rx path at
        # paper scale (every BLESS hello lands here).
        counts = self.stats.frames_rx
        counts["UDATA"] = counts.get("UDATA", 0) + 1
        upper = self.upper_rx
        if upper is not None:
            upper(frame.payload, frame.src)


class _AbtPulse:
    """Deferred ABT pulse (bound callable, cheaper than a closure)."""

    __slots__ = ("radio", "duration")

    def __init__(self, radio: Radio, duration: int):
        self.radio = radio
        self.duration = duration

    def __call__(self) -> None:
        # A pathological overlap of transactions could leave the previous
        # pulse still on; skipping (rather than crashing) loses one ABT,
        # which the sender treats as a missing acknowledgment and retries.
        if not self.radio.tone_emitting(ToneType.ABT):
            self.radio.tone_pulse(ToneType.ABT, self.duration)
