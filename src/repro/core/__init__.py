"""RMAC -- the paper's contribution.

* :mod:`repro.core.config` -- protocol parameters (tau, lambda, timer
  periods, retry limit, the 20-receiver MRTS cap).
* :mod:`repro.core.states` -- the appendix's state machine: the 8 states
  of Fig. 14 and the transition conditions C1-C19 of Table 1, encoded as
  data so tests can exercise every condition.
* :mod:`repro.core.mrts`   -- MRTS construction and the Section 3.4
  receiver-splitting refinement.
* :mod:`repro.core.rmac`   -- the protocol engine: Reliable Send
  (MRTS / RBT / DATA / ABT with ordered ABT windows and selective
  retransmission) and Unreliable Send, both abortable on RBT.
"""

from repro.core.config import RmacConfig
from repro.core.rmac import RmacProtocol
from repro.core.states import RmacState, TRANSITIONS, valid_transition

__all__ = ["RmacConfig", "RmacProtocol", "RmacState", "TRANSITIONS", "valid_transition"]
