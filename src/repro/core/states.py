"""The RMAC state machine of the paper's appendix (Fig. 14 / Table 1).

The eight states and the nineteen transition conditions are encoded as
data. The runtime engine (:mod:`repro.core.rmac`) keeps its node state in
:class:`RmacState` and asserts every change against
:func:`valid_transition`; the test suite exercises each condition id.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple


class RmacState(enum.Enum):
    """The eight node states of the appendix."""

    IDLE = "IDLE"              # nothing to send, or waiting out a busy channel
    BACKOFF = "BACKOFF"        # both channels idle and BI > 0
    WF_RBT = "WF_RBT"          # sender: MRTS sent, waiting for RBT
    WF_RDATA = "WF_RDATA"      # receiver: RBT on, waiting for the data frame
    WF_ABT = "WF_ABT"          # sender: data sent, checking ordered ABT windows
    TX_MRTS = "TX_MRTS"        # transmitting an MRTS
    TX_RDATA = "TX_RDATA"      # transmitting a reliable data frame
    TX_UNRDATA = "TX_UNRDATA"  # transmitting an unreliable data frame


@dataclass(frozen=True)
class Transition:
    """One labeled edge of Fig. 14."""

    condition: str
    source: RmacState
    target: RmacState
    description: str


#: Table 1, verbatim (descriptions lightly compressed).
TRANSITIONS: Tuple[Transition, ...] = (
    Transition("C1", RmacState.IDLE, RmacState.TX_UNRDATA,
               "unreliable service requested, both channels idle, BI is 0"),
    Transition("C2", RmacState.TX_UNRDATA, RmacState.IDLE,
               "aborted on RBT; or after tx either channel is busy"),
    Transition("C3", RmacState.IDLE, RmacState.WF_RDATA,
               "an MRTS naming this node is correctly received"),
    Transition("C4", RmacState.WF_RDATA, RmacState.IDLE,
               "after frame reception: queue empty and BI 0; or a channel busy "
               "and BI not 0; or queue not empty, a channel busy, BI 0"),
    Transition("C5", RmacState.TX_UNRDATA, RmacState.BACKOFF,
               "after tx both channels idle"),
    Transition("C6", RmacState.BACKOFF, RmacState.TX_UNRDATA,
               "BI is 0 and transmission requires unreliable service"),
    Transition("C7", RmacState.WF_RDATA, RmacState.BACKOFF,
               "after frame reception both channels idle and (BI not 0, or "
               "queue not empty with BI 0)"),
    Transition("C8", RmacState.IDLE, RmacState.BACKOFF,
               "both channels idle and BI is not 0"),
    Transition("C9", RmacState.BACKOFF, RmacState.IDLE,
               "BI 0 and queue empty; or a channel busy and BI not 0"),
    Transition("C10", RmacState.IDLE, RmacState.TX_MRTS,
               "reliable service requested and both channels idle"),
    Transition("C11", RmacState.TX_MRTS, RmacState.IDLE,
               "transmission aborted due to detection of RBT"),
    Transition("C12", RmacState.WF_RBT, RmacState.IDLE,
               "no RBT arrives and either channel is busy"),
    Transition("C13", RmacState.WF_ABT, RmacState.IDLE,
               "after all ABTs, either channel is busy"),
    Transition("C14", RmacState.BACKOFF, RmacState.TX_MRTS,
               "BI is 0 and transmission requires reliable service"),
    Transition("C15", RmacState.WF_RBT, RmacState.BACKOFF,
               "no RBT arrives and both channels idle"),
    Transition("C16", RmacState.WF_ABT, RmacState.BACKOFF,
               "after all ABTs, both channels idle"),
    Transition("C17", RmacState.TX_MRTS, RmacState.WF_RBT,
               "transmission of MRTS is complete"),
    Transition("C18", RmacState.WF_RBT, RmacState.TX_RDATA,
               "RBT detected before timer Twf_rbt expires"),
    Transition("C19", RmacState.TX_RDATA, RmacState.WF_ABT,
               "transmission of reliable data frame is complete"),
)

#: Extra edges the runtime needs that the paper's figure leaves implicit:
#: an MRTS abort lands in BACKOFF when both channels are idle (the figure
#: routes aborts through IDLE; C8 then immediately applies), and a node
#: named in an MRTS while in (suspended) BACKOFF enters WF_RDATA -- the
#: appendix notes reception "can only happen in IDLE" because a busy data
#: channel has already pushed the node to IDLE; our engine collapses the
#: two steps.
_IMPLICIT: FrozenSet[Tuple[RmacState, RmacState]] = frozenset(
    {
        (RmacState.TX_MRTS, RmacState.BACKOFF),
        (RmacState.BACKOFF, RmacState.WF_RDATA),
    }
)

_EDGE_SET: FrozenSet[Tuple[RmacState, RmacState]] = frozenset(
    (t.source, t.target) for t in TRANSITIONS
) | _IMPLICIT

_BY_CONDITION: Dict[str, Transition] = {t.condition: t for t in TRANSITIONS}


def valid_transition(source: RmacState, target: RmacState) -> bool:
    """True if Fig. 14 (plus the documented implicit edges) allows the edge."""
    return (source, target) in _EDGE_SET


def by_condition(condition: str) -> Transition:
    """Look up a transition by its Table 1 condition id (e.g. ``"C18"``)."""
    return _BY_CONDITION[condition]
