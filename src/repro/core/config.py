"""RMAC protocol parameters (Section 3.3).

The paper fixes, from IEEE 802.11b and the 300 m range assumption:

* ``tau``    = 1 us   -- maximum one-way propagation delay;
* ``lambda`` = 15 us  -- busy-tone detection time (the 802.11b CCA time);
* ``l_abt``  = 2 tau + lambda = 17 us -- the ABT duration, one full
  detection plus round-trip slack;
* ``|Twf_rbt| = |Twf_rdata| = |Twf_abt| = 2 tau + lambda = 17 us``.

One deliberate deviation: with the paper's exactly-tight timers, the
first bit of the data frame arrives at the receiver at the *same instant*
``Twf_rdata`` expires (sender waits 2 tau + lambda after the MRTS, and the
timer runs 2 tau + lambda from the MRTS reception -- the propagation delay
appears on both sides). Real hardware has turnaround slack; we make the
intent explicit with a small ``rdata_guard`` added to ``Twf_rdata``
(default 2 us). Ablation benches sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mac.frames import RMAC_DATA_OVERHEAD
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.sim.units import US


@dataclass(frozen=True)
class RmacConfig:
    """All tunables of the RMAC protocol."""

    phy: PhyParams = field(default_factory=lambda: DEFAULT_PHY)
    #: Maximum one-way propagation delay tau (ns).
    tau: int = 1 * US
    #: Busy-tone detection time lambda (ns); defaults to the CCA time.
    detect_time: int = 15 * US
    #: Retransmission limit per packet (paper: "a limit"; 802.11's 7).
    retry_limit: int = 7
    #: Maximum receivers per MRTS (Section 3.4 derives 20 = 352/17).
    max_receivers: int = 20
    #: Guard added to |Twf_rdata| to break the paper's exact timer tie.
    rdata_guard: int = 2 * US
    #: Transmit queue capacity (None = unbounded, the paper's loss model).
    queue_capacity: Optional[int] = None
    #: MAC header + FCS bytes on reliable/unreliable data frames.
    data_overhead: int = RMAC_DATA_OVERHEAD

    def __post_init__(self) -> None:
        if self.tau <= 0 or self.detect_time <= 0:
            raise ValueError("tau and detect_time must be positive")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if not 1 <= self.max_receivers <= 255:
            raise ValueError("max_receivers must be in [1, 255]")
        if self.rdata_guard < 0:
            raise ValueError("rdata_guard must be >= 0")

    @property
    def l_abt(self) -> int:
        """ABT duration: 2 tau + lambda (17 us with paper values)."""
        return 2 * self.tau + self.detect_time

    @property
    def twf_rbt(self) -> int:
        """Sender's wait-for-RBT period after the MRTS: 2 tau + lambda."""
        return 2 * self.tau + self.detect_time

    @property
    def twf_rdata(self) -> int:
        """Receiver's wait-for-data period after the MRTS (plus guard)."""
        return 2 * self.tau + self.detect_time + self.rdata_guard

    @property
    def twf_abt(self) -> int:
        """One ABT check window at the sender: 2 tau + lambda = l_abt."""
        return 2 * self.tau + self.detect_time
