"""Trace-driven protocol invariant oracle.

Subscribes to the :class:`~repro.sim.trace.Tracer` event stream and
checks RMAC's protocol invariants online, the same attachment pattern as
:mod:`repro.sim.telemetry`: a run that does not attach the oracle pays
nothing (tracing stays off), a run that does pays one sink call per
trace event. See :mod:`repro.oracle.checker` for the rule catalogue.
"""

from repro.oracle.checker import InvariantOracle, Violation

__all__ = ["InvariantOracle", "Violation"]
