"""Online invariant checking over the trace stream.

The oracle consumes the structured events the protocol engines already
emit (plus a handful added for exactly this purpose: ``mrts-tx``,
``mrts-rx``, ``rbt-detected``, ``rdata-tx``, ``reliable-done``) and
flags states the paper's protocol description forbids. Rules:

``rbt-unsolicited``
    A receiver raised its RBT (``rbt-on-rx``) without having decoded, at
    that same instant, an MRTS naming it (Section 3.3.2 step 2: the RBT
    is a *response* to a correctly received MRTS).

``abt-slot-conflict``
    Two receivers of one sender's transaction claimed the same ABT slot
    index. The MRTS receiver list orders the slots; distinct receivers
    must compute distinct indices (Section 3.3.2 step 4).

``rdata-without-rbt``
    A sender transmitted reliable DATA without having detected, at that
    same instant, a qualifying RBT presence in its ``Twf_rbt`` window
    (Section 3.3.2 step 5: no RBT means nobody is protected -- the
    sender must back off, not transmit).

``abt-skipped``
    A receiver that accepted reliable DATA and scheduled its ABT reply
    (``abt-scheduled``) never emitted an ABT overlapping its slot. A
    healthy node always answers; only an injected fault (or a protocol
    bug) leaves the slot silent.

``reliable-outcome``
    A completed Reliable Send (``reliable-done``) whose bookkeeping is
    inconsistent: acked and failed do not partition the requested
    receiver set, or a failure was recorded without the retry cap having
    been exhausted (no ``dropped`` mark).

Violations carry the rule id, the sim time (ns), the offending node and
a human-readable message; :meth:`InvariantOracle.report` aggregates
per-rule counts and retains a bounded sample of full violations.

False-positive discipline: every rule is *local* to events one node
emits at one instant, or uses explicit interval overlap (``abt-skipped``
tracks actual ABT emission intervals, so the paper's "mixed-up ABT"
overlap phenomenon -- a previous pulse still covering the next slot --
does not trip it). Fault-free paper scenarios must report zero
violations; the CI oracle smoke job enforces that.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.trace import TraceEvent, Tracer

#: Rule identifiers, in documentation order.
RULES = (
    "rbt-unsolicited",
    "abt-slot-conflict",
    "rdata-without-rbt",
    "abt-skipped",
    "reliable-outcome",
)


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    rule: str
    time: int
    node: int
    message: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "time": self.time,
            "node": self.node,
            "message": self.message,
            "detail": dict(self.detail),
        }


class InvariantOracle:
    """A tracer subscriber that checks protocol invariants online.

    Attach with :meth:`attach` (chains onto any existing ``tracer.sink``
    and enables the tracer); call :meth:`finish` after the run to flush
    deadline-based checks; read :attr:`violations` or :meth:`report`.

    Detached cost is zero -- an unattached oracle touches nothing, and a
    run without ``--oracle`` never constructs one.
    """

    #: Full violations retained beyond per-rule counts (bounded memory).
    MAX_RECORDED = 100

    def __init__(self, max_recorded: int = MAX_RECORDED):
        self.max_recorded = max_recorded
        self.violations: List[Violation] = []
        self.counts: Dict[str, int] = {rule: 0 for rule in RULES}
        self.events_seen = 0
        self._last_time = 0
        # R1: node -> time of the last MRTS it decoded naming it.
        self._mrts_rx_at: Dict[int, int] = {}
        # R2: sender -> {slot index -> claiming node} for the live chunk.
        self._slots: Dict[int, Dict[int, int]] = {}
        # R3: sender -> time of its last qualifying-RBT detection.
        self._rbt_detected_at: Dict[int, int] = {}
        # R4: per-node ABT emission intervals -- the open emission start
        # and a short history of closed (start, end) pairs. Slots span a
        # few tens of microseconds, so a tiny history suffices.
        self._abt_open: Dict[int, int] = {}
        self._abt_closed: Dict[int, Deque[Tuple[int, int]]] = {}
        # R4: min-heap of (deadline, seq, node, sched_time, src, index).
        self._pending_abt: List[Tuple[int, int, int, int, int, int]] = []
        self._pending_seq = 0
        self._handlers: Dict[str, Callable[[TraceEvent], None]] = {
            "mrts-tx": self._on_mrts_tx,
            "mrts-rx": self._on_mrts_rx,
            "rbt-on-rx": self._on_rbt_on_rx,
            "rbt-detected": self._on_rbt_detected,
            "rdata-tx": self._on_rdata_tx,
            "abt-scheduled": self._on_abt_scheduled,
            "abt-on": self._on_abt_on,
            "abt-off": self._on_abt_off,
            "reliable-done": self._on_reliable_done,
        }

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, tracer: Tracer) -> "InvariantOracle":
        """Subscribe to ``tracer``, chaining any existing sink, and
        enable it (a run built purely for the oracle uses a
        :class:`~repro.sim.trace.NullBuffer` backend so nothing is
        retained)."""
        tracer.enabled = True
        previous = tracer.sink
        if previous is None:
            tracer.sink = self.on_event
        else:
            def chained(event: TraceEvent,
                        _prev: Callable[[TraceEvent], None] = previous,
                        _next: Callable[[TraceEvent], None] = self.on_event) -> None:
                _prev(event)
                _next(event)
            tracer.sink = chained
        return self

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        """The tracer sink: dispatch one event through the rule set."""
        self.events_seen += 1
        time = event.time
        if time > self._last_time:
            self._last_time = time
        pending = self._pending_abt
        if pending and pending[0][0] < time:
            self._flush_deadlines(time)
        handler = self._handlers.get(event.kind)
        if handler is not None:
            handler(event)

    def finish(self) -> None:
        """Flush deadline checks after the run. Only slots whose
        deadline lies strictly before the last traced event are
        resolved; a slot the simulation ended inside is inconclusive,
        not a violation."""
        self._flush_deadlines(self._last_time)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def _violate(self, rule: str, time: int, node: int, message: str,
                 **detail: object) -> None:
        self.counts[rule] += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(Violation(rule, time, node, message, dict(detail)))

    def _on_mrts_rx(self, event: TraceEvent) -> None:
        self._mrts_rx_at[event.node] = event.time

    def _on_rbt_on_rx(self, event: TraceEvent) -> None:
        # R1: the RBT must answer an MRTS decoded at this very instant.
        if self._mrts_rx_at.get(event.node) != event.time:
            self._violate(
                "rbt-unsolicited", event.time, event.node,
                f"node {event.node} raised RBT without a same-instant MRTS "
                f"naming it",
                index=event.detail.get("index"),
            )

    def _on_mrts_tx(self, event: TraceEvent) -> None:
        # A new MRTS opens a new slot assignment for this sender.
        self._slots[event.node] = {}

    def _on_abt_scheduled(self, event: TraceEvent) -> None:
        detail = event.detail
        index = detail.get("index")
        src = detail.get("src")
        slot_end = detail.get("slot_end")
        if src is not None and index is not None:
            slots = self._slots.setdefault(src, {})
            claimed = slots.get(index)
            if claimed is not None and claimed != event.node:
                # R2: two receivers computed the same slot.
                self._violate(
                    "abt-slot-conflict", event.time, event.node,
                    f"nodes {claimed} and {event.node} both claim ABT slot "
                    f"{index} of sender {src}",
                    index=index, src=src, other=claimed,
                )
            slots[index] = event.node
        if slot_end is not None:
            self._pending_seq += 1
            heapq.heappush(
                self._pending_abt,
                (slot_end, self._pending_seq, event.node, event.time,
                 -1 if src is None else src, -1 if index is None else index),
            )

    def _on_rbt_detected(self, event: TraceEvent) -> None:
        self._rbt_detected_at[event.node] = event.time

    def _on_rdata_tx(self, event: TraceEvent) -> None:
        # R3: reliable DATA only on the heels of a qualifying RBT.
        if self._rbt_detected_at.get(event.node) != event.time:
            self._violate(
                "rdata-without-rbt", event.time, event.node,
                f"node {event.node} transmitted reliable DATA without a "
                f"same-instant RBT detection",
                seq=event.detail.get("seq"),
            )

    def _on_abt_on(self, event: TraceEvent) -> None:
        self._abt_open[event.node] = event.time

    def _on_abt_off(self, event: TraceEvent) -> None:
        start = self._abt_open.pop(event.node, None)
        if start is None:
            return
        history = self._abt_closed.get(event.node)
        if history is None:
            history = self._abt_closed[event.node] = deque(maxlen=8)
        history.append((start, event.time))

    def _on_reliable_done(self, event: TraceEvent) -> None:
        detail = event.detail
        requested = set(detail.get("requested", ()))
        acked = set(detail.get("acked", ()))
        failed = set(detail.get("failed", ()))
        dropped = bool(detail.get("dropped"))
        if (acked | failed) != requested or (acked & failed):
            # R5a: the outcome must partition the requested set.
            self._violate(
                "reliable-outcome", event.time, event.node,
                f"node {event.node} completed a Reliable Send whose "
                f"acked/failed sets do not partition the requested set",
                requested=sorted(requested), acked=sorted(acked),
                failed=sorted(failed),
            )
        elif failed and not dropped:
            # R5b: failure is only legal after the retry cap is spent.
            self._violate(
                "reliable-outcome", event.time, event.node,
                f"node {event.node} recorded failed receivers without "
                f"exhausting the retry cap",
                failed=sorted(failed),
            )

    # ------------------------------------------------------------------
    # R4 deadline machinery
    # ------------------------------------------------------------------
    def _emitted_in(self, node: int, lo: int, hi: int) -> bool:
        """Did ``node`` emit ABT overlapping ``[lo, hi]``?"""
        open_start = self._abt_open.get(node)
        if open_start is not None and open_start <= hi:
            return True
        history = self._abt_closed.get(node)
        if history:
            for start, end in history:
                if start <= hi and end >= lo:
                    return True
        return False

    def _flush_deadlines(self, now: int) -> None:
        pending = self._pending_abt
        while pending and pending[0][0] < now:
            slot_end, _seq, node, sched, src, index = heapq.heappop(pending)
            if not self._emitted_in(node, sched, slot_end):
                self._violate(
                    "abt-skipped", sched, node,
                    f"node {node} scheduled ABT slot {index} for sender "
                    f"{src} but emitted no ABT by {slot_end} ns",
                    index=index, src=src, slot_end=slot_end,
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def report(self) -> dict:
        """JSON-serializable report: per-rule counts, total, and a
        bounded sample of full violations."""
        total = self.total
        return {
            "total": total,
            "rules": {rule: n for rule, n in self.counts.items() if n},
            "events_seen": self.events_seen,
            "violations": [v.to_dict() for v in self.violations],
            "truncated": total > len(self.violations),
        }
