"""Mobility models.

The paper evaluates three scenarios: stationary, and two random-waypoint
settings (MAX-SPEED 4 m/s with 10 s pauses; 8 m/s with 5 s pauses).
Positions are computed analytically at query time -- no per-tick movement
events -- so mobility adds no event-queue load.
"""

from repro.mobility.base import MobilityModel, MobilityProvider
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel

__all__ = [
    "MobilityModel",
    "MobilityProvider",
    "StationaryModel",
    "RandomWaypointModel",
]
