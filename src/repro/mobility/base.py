"""Mobility interfaces.

A :class:`MobilityModel` yields one node's position at any simulation
time; a :class:`MobilityProvider` aggregates the per-node models into the
``(N, 2)`` position arrays the PHY's
:class:`~repro.phy.neighbors.NeighborService` consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np


class MobilityModel(ABC):
    """One node's trajectory."""

    @abstractmethod
    def position(self, time_ns: int) -> Tuple[float, float]:
        """Position in meters at ``time_ns``. Must be time-monotonic safe:
        querying out of order is allowed for times already materialized."""

    def is_static(self) -> bool:
        return False


class MobilityProvider:
    """Adapts per-node mobility models to the PHY's PositionProvider."""

    def __init__(self, models: Sequence[MobilityModel]):
        if not models:
            raise ValueError("need at least one mobility model")
        self._models: List[MobilityModel] = list(models)
        self._static = all(m.is_static() for m in self._models)

    def __len__(self) -> int:
        return len(self._models)

    def model(self, node: int) -> MobilityModel:
        return self._models[node]

    def positions(self, time_ns: int) -> np.ndarray:
        return np.array([m.position(time_ns) for m in self._models], dtype=float)

    def is_static(self) -> bool:
        return self._static
