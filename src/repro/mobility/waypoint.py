"""Random waypoint mobility (Bettstetter [2]; the paper's scenarios 2-3).

A node repeatedly: picks a destination uniformly on the plain, moves
there in a straight line at a speed drawn uniformly from
``[min_speed, max_speed]``, then pauses for ``pause`` seconds.

Legs are materialized lazily and stored, so positions at any
already-reached time can be re-queried exactly; nothing ticks.

The paper uses MIN-SPEED = 0, which makes near-zero speed draws produce
pathologically long legs (the well-known RWP speed-decay artifact); draws
below ``speed_floor`` (default 1 cm/s) are resampled, which bounds leg
durations while staying statistically indistinguishable from the paper's
setting over its 100-2000 s experiment horizons.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.mobility.base import MobilityModel
from repro.sim.units import SEC


@dataclass(frozen=True)
class _Leg:
    """One movement leg followed by its pause."""

    start: int          # ns, movement begins
    arrive: int         # ns, destination reached
    end: int            # ns, pause over
    x0: float
    y0: float
    x1: float
    y1: float

    def position(self, t: int) -> Tuple[float, float]:
        if t >= self.arrive:
            return (self.x1, self.y1)
        if self.arrive == self.start:
            return (self.x1, self.y1)
        frac = (t - self.start) / (self.arrive - self.start)
        return (
            self.x0 + frac * (self.x1 - self.x0),
            self.y0 + frac * (self.y1 - self.y0),
        )


class RandomWaypointModel(MobilityModel):
    """Random waypoint over a rectangular plain."""

    def __init__(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        min_speed: float,
        max_speed: float,
        pause: float,
        rng: random.Random,
        speed_floor: float = 0.01,
    ):
        if max_speed <= 0 or max_speed < min_speed:
            raise ValueError("need 0 < max_speed and min_speed <= max_speed")
        if not (0 <= x <= width and 0 <= y <= height):
            raise ValueError("initial position outside the plain")
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_ns = round(pause * SEC)
        self.speed_floor = max(speed_floor, 1e-9)
        self._rng = rng
        self._legs: List[_Leg] = []
        self._seed_leg(x, y)

    def _seed_leg(self, x: float, y: float) -> None:
        # Nodes start paused at their initial placement for a *uniformly
        # drawn fraction* of the pause time, then move. Starting everyone
        # with the full pause would keep the network effectively
        # stationary for the first `pause` seconds -- significant in
        # short runs (the paper's 83-2000 s runs hide it).
        first_pause = round(self._rng.random() * self.pause_ns)
        self._legs.append(_Leg(0, 0, first_pause, x, y, x, y))

    def _extend_to(self, t: int) -> None:
        while self._legs[-1].end <= t:
            last = self._legs[-1]
            x0, y0 = last.x1, last.y1
            x1 = self._rng.uniform(0.0, self.width)
            y1 = self._rng.uniform(0.0, self.height)
            speed = self._rng.uniform(self.min_speed, self.max_speed)
            while speed < self.speed_floor:
                speed = self._rng.uniform(self.min_speed, self.max_speed)
            dist = math.hypot(x1 - x0, y1 - y0)
            travel_ns = round(dist / speed * SEC)
            start = last.end
            arrive = start + travel_ns
            self._legs.append(
                _Leg(start, arrive, arrive + self.pause_ns, x0, y0, x1, y1)
            )

    def position(self, time_ns: int) -> Tuple[float, float]:
        if time_ns < 0:
            raise ValueError("negative time")
        self._extend_to(time_ns)
        # Queries are overwhelmingly monotonic; scan from the back.
        for leg in reversed(self._legs):
            if leg.start <= time_ns:
                return leg.position(time_ns)
        return self._legs[0].position(time_ns)

    def compact(self, before_ns: int) -> None:
        """Drop legs fully in the past (memory hygiene for long runs)."""
        keep = [leg for leg in self._legs if leg.end > before_ns]
        if not keep:
            keep = [self._legs[-1]]
        self._legs = keep
