"""The trivial stationary model (the paper's first scenario)."""

from __future__ import annotations

from typing import Tuple

from repro.mobility.base import MobilityModel


class StationaryModel(MobilityModel):
    """A node that never moves."""

    def __init__(self, x: float, y: float):
        self._pos = (float(x), float(y))

    def position(self, time_ns: int) -> Tuple[float, float]:
        return self._pos

    def is_static(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"StationaryModel{self._pos}"
