"""Seeded, declarative fault injection (crashes, fades, bursty errors).

The reproduction's headline scenarios lose frames only to collisions and
an optional uniform BER -- nothing actively *attacks* the reliability
machinery the paper claims. This package supplies that attack surface:

* :class:`~repro.faults.plan.FaultPlan` -- a declarative, serializable
  description of every fault in a run: node crash/recover schedules,
  per-link fades, timed frame-corruption windows, and a channel-wide
  bit-error model override (e.g. the bursty
  :class:`~repro.phy.error.GilbertElliott`). A plan is part of the
  ``ScenarioConfig``, so it flows into the result store's
  ``config_hash`` and the campaign resume machinery unchanged.
* :class:`~repro.faults.injector.FaultInjector` -- the compiled runtime
  form the PHY consults: the data channel asks it whether an arrival is
  suppressed or corrupted, the busy-tone channels ask it whether an
  emitter is down. When no plan is active the channels hold ``None``
  and pay a single ``is None`` test per arrival.

Semantics are documented on the classes; the summary: a crashed node's
radio is *deaf and mute* (its frames and tones reach nobody, and nothing
is delivered to it) while carrier-sense side effects of already-started
transmissions are retained, a faded link silently corrupts frames
crossing it in the faulted direction, and a corruption window corrupts
frames arriving at matching nodes with a configured probability drawn
from the channel's seeded RNG stream.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CorruptionWindow,
    FaultPlan,
    LinkFade,
    NodeCrash,
)

__all__ = [
    "CorruptionWindow",
    "FaultInjector",
    "FaultPlan",
    "LinkFade",
    "NodeCrash",
]
