"""The declarative fault plan.

A :class:`FaultPlan` is pure data: frozen dataclasses with times in
*seconds* (matching ``ScenarioConfig``'s float-seconds convention), a
stable ``to_dict``/``from_dict`` round trip, and value equality. It
compiles into a :class:`~repro.faults.injector.FaultInjector` (times in
integer ns) when a network is built; nothing here touches the simulator.

Because ``ScenarioConfig`` embeds the plan, ``dataclasses.asdict`` must
produce deterministic JSON for the result store's ``config_hash``. The
only non-dataclass member is the optional
:class:`~repro.phy.error.BitErrorModel`, which the store's canonical
encoder serializes through its ``to_dict`` (parameters only, no dynamic
state) -- see :func:`repro.experiments.store.canonical_config_json`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.phy.error import BitErrorModel, error_model_from_dict


def _positive_window(start_s: float, end_s: Optional[float], what: str) -> None:
    if start_s < 0:
        raise ValueError(f"{what}: negative start time {start_s}")
    if end_s is not None and end_s <= start_s:
        raise ValueError(f"{what}: window [{start_s}, {end_s}] is empty")


@dataclass(frozen=True)
class NodeCrash:
    """One crash window: the node's radio is deaf and mute throughout.

    ``recover_s=None`` means the node never comes back. The node's MAC
    and timers keep executing (a crashed *radio*, not a halted CPU --
    the deterministic choice: the event pattern of the rest of the run
    does not depend on unwinding a node's pending events), but no frame
    or tone it emits reaches anyone and nothing is delivered to it.
    """

    node: int
    at_s: float
    recover_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"invalid node id {self.node}")
        _positive_window(self.at_s, self.recover_s, f"crash of node {self.node}")


@dataclass(frozen=True)
class LinkFade:
    """A deep fade on one link: frames crossing it arrive corrupted.

    Carrier is still sensed (the energy arrives; it is just undecodable),
    so fades stress exactly the feedback paths -- a faded MRTS raises no
    RBT, a faded DATA draws no ABT. ``bidirectional=True`` (default)
    fades both directions; otherwise only ``src -> dst``.
    """

    src: int
    dst: int
    start_s: float
    end_s: Optional[float] = None
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0 or self.src == self.dst:
            raise ValueError(f"invalid link {self.src}->{self.dst}")
        _positive_window(self.start_s, self.end_s,
                         f"fade {self.src}->{self.dst}")


@dataclass(frozen=True)
class CorruptionWindow:
    """A timed window in which arriving frames are corrupted.

    ``nodes=None`` hits every receiver; otherwise only the listed ones.
    ``probability`` < 1 corrupts each arrival independently with that
    probability, drawn from the channel's seeded RNG stream (so replays
    are bit-identical).
    """

    start_s: float
    end_s: float
    nodes: Optional[Tuple[int, ...]] = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        _positive_window(self.start_s, self.end_s, "corruption window")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"corruption probability must be in (0, 1], got {self.probability}")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))


@dataclass(frozen=True)
class FaultPlan:
    """Every fault of one run, declaratively.

    ``error_model`` (optional) replaces the scenario's channel bit-error
    model -- the hook for :class:`~repro.phy.error.GilbertElliott`
    bursts. Each built network reconstructs a fresh instance from the
    model's parameters, so a stateful model never leaks state across
    runs (seeded replay stays bit-identical).
    """

    crashes: Tuple[NodeCrash, ...] = ()
    fades: Tuple[LinkFade, ...] = ()
    corruption: Tuple[CorruptionWindow, ...] = ()
    error_model: Optional[BitErrorModel] = None

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans and from_dict alike.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "fades", tuple(self.fades))
        object.__setattr__(self, "corruption", tuple(self.corruption))

    def __bool__(self) -> bool:
        return bool(self.crashes or self.fades or self.corruption
                    or self.error_model is not None)

    # -- serialization (the CLI's PLAN.json format) --------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (stable keys; defaults included)."""
        return {
            "crashes": [
                {"node": c.node, "at_s": c.at_s, "recover_s": c.recover_s}
                for c in self.crashes
            ],
            "fades": [
                {"src": f.src, "dst": f.dst, "start_s": f.start_s,
                 "end_s": f.end_s, "bidirectional": f.bidirectional}
                for f in self.fades
            ],
            "corruption": [
                {"start_s": w.start_s, "end_s": w.end_s,
                 "nodes": list(w.nodes) if w.nodes is not None else None,
                 "probability": w.probability}
                for w in self.corruption
            ],
            "error_model": (self.error_model.to_dict()
                            if self.error_model is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written
        JSON; every section is optional)."""
        model = payload.get("error_model")
        return cls(
            crashes=tuple(NodeCrash(**c) for c in payload.get("crashes", ())),
            fades=tuple(LinkFade(**f) for f in payload.get("fades", ())),
            corruption=tuple(
                CorruptionWindow(
                    start_s=w["start_s"], end_s=w["end_s"],
                    nodes=tuple(w["nodes"]) if w.get("nodes") is not None else None,
                    probability=w.get("probability", 1.0),
                )
                for w in payload.get("corruption", ())
            ),
            error_model=error_model_from_dict(model) if model else None,
        )

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--faults PLAN.json`` path)."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
