"""The compiled runtime form of a fault plan.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into integer-ns window tables the PHY hot paths can consult cheaply:

* per-node crash windows (sorted tuples, linear scan -- plans hold a
  handful of faults, not thousands);
* per-directed-link fade windows;
* global corruption windows.

The data channel calls :meth:`suppresses_delivery` /
:meth:`corrupts_arrival` once per arrival-end and :meth:`node_down`
once per arrival-start; the busy-tone channels call :meth:`node_down`
once per emission start. Channels built without a plan hold ``None``
and pay a single ``is None`` test instead.

Every injector decision that changes behavior is traced (kinds
``fault-rx-dropped``, ``fault-link-faded``, ``fault-corruption``,
``fault-tone-suppressed``) so the invariant oracle and post-mortems can
tell injected losses from protocol losses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.sim.units import SEC

#: A half-open window [start, end) in integer ns; end = None means open.
_Window = Tuple[int, Optional[int]]


def _in_windows(windows: Tuple[_Window, ...], t: int) -> bool:
    for start, end in windows:
        if t >= start and (end is None or t < end):
            return True
    return False


def _ns(seconds: float) -> int:
    return round(seconds * SEC)


class FaultInjector:
    """Window tables compiled from a :class:`FaultPlan` (times in ns)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        crash: Dict[int, List[_Window]] = {}
        for c in plan.crashes:
            crash.setdefault(c.node, []).append(
                (_ns(c.at_s), _ns(c.recover_s) if c.recover_s is not None else None))
        self._crash: Dict[int, Tuple[_Window, ...]] = {
            node: tuple(sorted(w, key=lambda x: x[0])) for node, w in crash.items()
        }
        fade: Dict[Tuple[int, int], List[_Window]] = {}
        for f in plan.fades:
            window = (_ns(f.start_s), _ns(f.end_s) if f.end_s is not None else None)
            fade.setdefault((f.src, f.dst), []).append(window)
            if f.bidirectional:
                fade.setdefault((f.dst, f.src), []).append(window)
        self._fade: Dict[Tuple[int, int], Tuple[_Window, ...]] = {
            link: tuple(sorted(w, key=lambda x: x[0])) for link, w in fade.items()
        }
        self._corruption: Tuple[Tuple[int, int, Optional[frozenset], float], ...] = tuple(
            (_ns(w.start_s), _ns(w.end_s),
             frozenset(w.nodes) if w.nodes is not None else None,
             w.probability)
            for w in plan.corruption
        )

    # ------------------------------------------------------------------
    def node_down(self, node: int, t: int) -> bool:
        """True while ``node``'s radio is crashed (deaf and mute)."""
        windows = self._crash.get(node)
        return windows is not None and _in_windows(windows, t)

    def link_faded(self, src: int, dst: int, t: int) -> bool:
        """True while the directed link ``src -> dst`` is in a deep fade."""
        windows = self._fade.get((src, dst))
        return windows is not None and _in_windows(windows, t)

    # ------------------------------------------------------------------
    # Data-channel hooks
    # ------------------------------------------------------------------
    def suppresses_delivery(self, sender: int, node: int, t: int) -> bool:
        """True if the arrival must produce *no* callback at ``node``:
        either end of the link is crashed, so to the receiver the frame
        never existed (a dead transmitter emits nothing; a dead receiver
        hears nothing)."""
        return self.node_down(node, t) or self.node_down(sender, t)

    def corrupts_arrival(self, sender: int, node: int, t: int,
                         rng: random.Random) -> bool:
        """True if a (deliverable) arrival at ``node`` is corrupted by a
        link fade or an active corruption window."""
        if self._fade and self.link_faded(sender, node, t):
            return True
        for start, end, nodes, probability in self._corruption:
            if start <= t < end and (nodes is None or node in nodes):
                if probability >= 1.0 or rng.random() < probability:
                    return True
        return False

    @property
    def affects_data(self) -> bool:
        """True if any fault can touch the data channel (everything can)."""
        return bool(self._crash or self._fade or self._corruption)

    @property
    def affects_tones(self) -> bool:
        """True if any fault can touch tone emission (only crashes do)."""
        return bool(self._crash)
