"""Per-node radio facade.

A :class:`Radio` bundles, for one node, access to the shared data channel
and the busy-tone channels. MAC protocols talk only to their radio; the
radio forwards channel callbacks to the attached :class:`RadioListener`
(the MAC).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.channel import DataChannel, Transmission
from repro.phy.params import PhyParams


class RadioListener:
    """Callbacks a MAC receives from its radio. Subclass and override."""

    def on_frame_received(self, frame: object, sender: int) -> None:
        """A frame arrived intact on the data channel."""

    def on_frame_error(self, sender: int) -> None:
        """A frame arrived corrupted (collision / abort / bit errors)."""

    def on_tx_complete(self, frame: object, aborted: bool) -> None:
        """This node's own transmission ended."""

    def on_rx_start(self, sender: int) -> None:
        """The first bit of a decodable frame is arriving."""


class Radio:
    """One node's interface to the shared channels."""

    def __init__(
        self,
        node_id: int,
        data_channel: DataChannel,
        tones: Mapping[ToneType, BusyToneChannel],
    ):
        self.node_id = node_id
        self._data = data_channel
        self._tones = dict(tones)
        # Direct RBT/ABT references: Enum.__hash__ is a Python-level call,
        # so dict-by-enum lookups showed up in profiles of the tone-sensing
        # hot path (RMAC polls tones every backoff slot). Identity dispatch
        # below avoids hashing entirely.
        self._rbt = self._tones.get(ToneType.RBT)
        self._abt = self._tones.get(ToneType.ABT)
        self._listener: Optional[RadioListener] = None
        data_channel.attach(node_id, self)

    def _tone(self, tone: ToneType) -> BusyToneChannel:
        if tone is ToneType.RBT and self._rbt is not None:
            return self._rbt
        if tone is ToneType.ABT and self._abt is not None:
            return self._abt
        return self._tones[tone]

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, listener: RadioListener) -> None:
        self._listener = listener
        # Re-register the listener directly with the data channel: the
        # RadioListener and ChannelListener callback signatures are
        # identical, so the per-frame forwarding hop through this radio
        # (four methods, two of them on the arrival hot path) vanishes.
        # The radio stays registered until a listener exists, and the
        # forwarding methods below remain for tests that drive a radio
        # without a MAC.
        self._data.attach(self.node_id, listener)

    @property
    def phy(self) -> PhyParams:
        return self._data.phy

    def frame_airtime(self, frame: object) -> int:
        """Airtime (ns) of ``frame`` including the PHY preamble/header."""
        return self.phy.frame_airtime(frame.size_bytes)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Data channel
    # ------------------------------------------------------------------
    def transmit(self, frame: object) -> Transmission:
        return self._data.transmit(self.node_id, frame)

    def abort(self, tx: Transmission) -> None:
        self._data.abort(tx)

    @property
    def is_transmitting(self) -> bool:
        return self._data.is_transmitting(self.node_id)

    def current_tx(self) -> Optional[Transmission]:
        return self._data.current_tx(self.node_id)

    def data_busy(self) -> bool:
        """Carrier sense on the data channel."""
        return self._data.busy(self.node_id)

    def data_idle_duration(self) -> int:
        """How long the data channel has been continuously idle (0 if busy)."""
        return self._data.idle_duration(self.node_id)

    def notify_data_idle(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback for the next busy->idle transition
        on the data channel. Fires immediately (synchronously) if idle."""
        self._data.notify_idle(self.node_id, callback)

    # ------------------------------------------------------------------
    # Busy tones
    # ------------------------------------------------------------------
    def tone_channel(self, tone: ToneType) -> BusyToneChannel:
        return self._tone(tone)

    def tone_on(self, tone: ToneType) -> None:
        self._tone(tone).turn_on(self.node_id)

    def tone_off(self, tone: ToneType) -> None:
        self._tone(tone).turn_off(self.node_id)

    def tone_pulse(self, tone: ToneType, duration: int) -> None:
        self._tone(tone).pulse(self.node_id, duration)

    def tone_emitting(self, tone: ToneType) -> bool:
        return self._tone(tone).is_emitting(self.node_id)

    def tone_present(self, tone: ToneType) -> bool:
        """Tone sensing (self-emissions excluded)."""
        return self._tone(tone).present(self.node_id)

    def sense_maps(self, tone: ToneType) -> tuple:
        """Raw sensing state for MAC hot loops.

        Returns ``(busy, transmitting, present)``: the data channel's
        busy-count and active-transmitter maps plus ``tone``'s presence
        counts, all keyed by node id. The dict objects are stable for
        the life of the channel, so a per-slot countdown can sense both
        channels with two membership tests and a ``get`` instead of four
        method calls -- the backoff pump is the single most frequent
        event in a paper-scale run. Callers must treat them read-only.
        """
        return self._data._busy, self._data._transmitting, self._tone(tone)._present

    def tone_longest_presence(self, tone: ToneType, t0: int, t1: int) -> int:
        return self._tone(tone).longest_presence(self.node_id, t0, t1)

    def watch_tone(self, tone: ToneType, callback: Callable[[ToneType], None]) -> None:
        self._tone(tone).watch_detection(self.node_id, callback)

    def unwatch_tone(self, tone: ToneType) -> None:
        self._tone(tone).unwatch_detection(self.node_id)

    # ------------------------------------------------------------------
    # DataChannel listener protocol (forwarded to the MAC)
    # ------------------------------------------------------------------
    def on_frame_received(self, frame: object, sender: int) -> None:
        if self._listener is not None:
            self._listener.on_frame_received(frame, sender)

    def on_frame_error(self, sender: int) -> None:
        if self._listener is not None:
            self._listener.on_frame_error(sender)

    def on_tx_complete(self, frame: object, aborted: bool) -> None:
        if self._listener is not None:
            self._listener.on_tx_complete(frame, aborted)

    def on_rx_start(self, sender: int) -> None:
        if self._listener is not None:
            self._listener.on_rx_start(sender)
