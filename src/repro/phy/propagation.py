"""Propagation models.

The paper's evaluation uses a fixed 75 m radio range (GloMoSim's default
range-threshold behaviour), which the :class:`UnitDiskModel` reproduces.
:class:`LogDistanceModel` computes a received-power-vs-threshold decision
from a log-distance path loss, which still reduces to a deterministic
circular range. :class:`LogDistanceShadowing` breaks that circularity:
every node pair draws a lognormal shadowing term (deterministic in the
seed), so reception becomes link-specific -- the propagation substrate
the SINR interference subsystem (:mod:`repro.phy.sinr`) builds on.

Every model reports received power. Models that do not actually compute
power (``UnitDiskModel`` and any minimal subclass) fall back to a
documented constant -- :data:`IN_RANGE_POWER_DBM` inside carrier-sense
range, ``-inf`` outside -- so power-aware consumers (capture, SINR
accumulation, busy-tone power thresholds) never have to type-sniff the
model.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Tuple

import numpy as np

from repro.sim.rng import derive_seed

#: Received power (dBm) reported inside carrier-sense range by models
#: that do not compute real powers (``UnitDiskModel``): 0 dBm = 1 mW.
#: Under SINR reception this makes every in-range signal equally strong,
#: which reduces accumulated-interference decisions to the paper's
#: all-overlaps-collide rule (see ``repro.phy.sinr``).
IN_RANGE_POWER_DBM = 0.0


class PropagationModel(ABC):
    """Decides whether a transmission is receivable and senseable.

    The scalar predicates are the reference semantics; the ``*_batch``
    variants evaluate a whole distance array at once for the vectorized
    link-table rebuild (see :mod:`repro.phy.neighbors`). The base-class
    batch fallbacks call the scalar predicate per element, so any
    subclass is automatically batch-correct; the built-in models
    override them with true array expressions that are bit-identical to
    their scalar forms.
    """

    #: True when link power depends on the endpoint pair (shadowing,
    #: per-link fading), not on distance alone. Pair-dependent models
    #: must override :meth:`link_power_dbm` (+ batch); consumers that
    #: cache by distance must not.
    pair_dependent: bool = False

    @abstractmethod
    def in_range(self, distance: float) -> bool:
        """True if a frame can be received at ``distance`` meters."""

    @abstractmethod
    def max_range(self) -> float:
        """An upper bound on the reception distance (for spatial pruning)."""

    def carrier_sensed(self, distance: float) -> bool:
        """True if a transmission at ``distance`` raises carrier sense.

        Defaults to the reception range; subclasses may extend it (real
        radios sense further than they decode).
        """
        return self.in_range(distance)

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`in_range` (bool array, same shape)."""
        return np.fromiter((self.in_range(float(d)) for d in distances),
                           dtype=bool, count=len(distances))

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`carrier_sensed` (bool array, same shape)."""
        return np.fromiter((self.carrier_sensed(float(d)) for d in distances),
                           dtype=bool, count=len(distances))

    # -- received power (every model reports one) -----------------------
    def received_power_dbm(self, distance: float) -> float:
        """Received power at ``distance`` meters (dBm).

        Base fallback for models that do not compute real powers:
        :data:`IN_RANGE_POWER_DBM` inside carrier-sense range, ``-inf``
        outside. Threshold models override this with the path-loss
        computation.
        """
        return IN_RANGE_POWER_DBM if self.carrier_sensed(distance) else -math.inf

    def received_power_dbm_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`received_power_dbm` (float array, same shape)."""
        return np.where(self.carrier_sensed_batch(distances),
                        IN_RANGE_POWER_DBM, -np.inf)

    # -- pair-aware power (shadowing/fading hooks) ----------------------
    def link_power_dbm(self, sender: int, receiver: int,
                       distance: float) -> float:
        """Received power on the ``sender -> receiver`` link (dBm).

        Defaults to the distance-only :meth:`received_power_dbm`;
        pair-dependent models (``LogDistanceShadowing``) override it.
        """
        return self.received_power_dbm(distance)

    def link_power_dbm_batch(self, senders: np.ndarray, receivers: np.ndarray,
                             distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`link_power_dbm` (float array, same shape)."""
        return self.received_power_dbm_batch(distances)


class UnitDiskModel(PropagationModel):
    """Fixed circular radio range (the paper's model; default 75 m)."""

    def __init__(self, radio_range: float = 75.0, sense_range: float | None = None):
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self.radio_range = float(radio_range)
        self.sense_range = float(sense_range) if sense_range is not None else self.radio_range
        if self.sense_range < self.radio_range:
            raise ValueError("sense_range must be >= radio_range")

    def in_range(self, distance: float) -> bool:
        return distance <= self.radio_range

    def carrier_sensed(self, distance: float) -> bool:
        return distance <= self.sense_range

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        return distances <= self.radio_range

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        return distances <= self.sense_range

    def max_range(self) -> float:
        return self.sense_range

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnitDiskModel(range={self.radio_range}m, sense={self.sense_range}m)"


class LogDistanceModel(PropagationModel):
    """Log-distance path loss with a reception power threshold.

    ``PL(d) = PL(d0) + 10 * n * log10(d / d0)`` dB. A frame is receivable
    when ``tx_power_dbm - PL(d) >= rx_threshold_dbm`` and carrier-sensed
    when it clears ``cs_threshold_dbm`` (typically ~10 dB lower).
    """

    def __init__(
        self,
        tx_power_dbm: float = 15.0,
        path_loss_exponent: float = 2.8,
        reference_loss_db: float = 40.0,
        reference_distance: float = 1.0,
        rx_threshold_dbm: float = -65.0,
        cs_threshold_dbm: float = -75.0,
    ):
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if cs_threshold_dbm > rx_threshold_dbm:
            raise ValueError("carrier-sense threshold must not exceed rx threshold")
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance = reference_distance
        self.rx_threshold_dbm = rx_threshold_dbm
        self.cs_threshold_dbm = cs_threshold_dbm

    def received_power_dbm(self, distance: float) -> float:
        """Received power at ``distance`` meters (clamped to d0 up close).

        Routed through ``np.log10`` (not ``math.log10``): numpy's log10
        can differ from libm's by 1 ulp, and the scalar and batch paths
        must agree bit-for-bit for the grid path's "bit-identical
        results" contract to hold.
        """
        d = max(distance, self.reference_distance)
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * float(
            np.log10(d / self.reference_distance)
        )
        return self.tx_power_dbm - loss

    def received_power_dbm_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`received_power_dbm` (float array, same shape)."""
        d = np.maximum(distances, self.reference_distance)
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * np.log10(
            d / self.reference_distance
        )
        return self.tx_power_dbm - loss

    def range_for_threshold(self, threshold_dbm: float) -> float:
        """The distance at which received power falls to ``threshold_dbm``.

        Used by the SINR wiring to size the spatial grid to an
        *interference* radius (power down to the noise floor) instead of
        the carrier-sense radius.
        """
        margin = self.tx_power_dbm - self.reference_loss_db - threshold_dbm
        return self.reference_distance * 10.0 ** (margin / (10.0 * self.path_loss_exponent))

    # Backwards-compatible private alias (pre-SINR name).
    _range_for_threshold = range_for_threshold

    def in_range(self, distance: float) -> bool:
        return self.received_power_dbm(distance) >= self.rx_threshold_dbm

    def carrier_sensed(self, distance: float) -> bool:
        return self.received_power_dbm(distance) >= self.cs_threshold_dbm

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        return self.received_power_dbm_batch(distances) >= self.rx_threshold_dbm

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        return self.received_power_dbm_batch(distances) >= self.cs_threshold_dbm

    def max_range(self) -> float:
        return self._range_for_threshold(self.cs_threshold_dbm)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LogDistanceModel(n={self.path_loss_exponent}, "
            f"rx_range={self.range_for_threshold(self.rx_threshold_dbm):.1f}m)"
        )


class LogDistanceShadowing(LogDistanceModel):
    """Log-distance path loss with per-link lognormal shadowing.

    Every unordered node pair ``{a, b}`` draws one Gaussian shadowing
    term (dB domain; lognormal in linear power) that is *frozen for the
    whole run*: shadowing models obstacles in the environment, which do
    not flicker per frame -- per-frame variation is fast fading, handled
    separately in :mod:`repro.phy.sinr`. Draws are derived from ``seed``
    via :func:`repro.sim.rng.derive_seed`, so runs are deterministic,
    bit-reproducible across processes, and campaign-resumable.

    Draws are truncated to ``+- max_sigma_factor * sigma`` so the model
    can still report a finite :meth:`max_range` for spatial pruning
    (an untruncated lognormal has unbounded gain).

    The distance-only predicates (``in_range``/``carrier_sensed``)
    deliberately keep the *median* (no-shadow) semantics: this model is
    meant to be consumed through the pair-aware :meth:`link_power_dbm`
    by the power-domain link builder (see
    :class:`repro.phy.neighbors.LinkPowerSpec`), which derives
    decode/sense decisions from the shadowed power itself.
    """

    pair_dependent = True

    def __init__(
        self,
        shadowing_sigma_db: float = 6.0,
        seed: int = 0,
        max_sigma_factor: float = 3.0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        if max_sigma_factor <= 0:
            raise ValueError("max_sigma_factor must be positive")
        self.shadowing_sigma_db = float(shadowing_sigma_db)
        self.seed = int(seed)
        self.max_sigma_factor = float(max_sigma_factor)
        #: Per-pair shadow cache. Shadowing is a property of the static
        #: environment between two endpoints, so one draw per pair per
        #: run; the cache makes the scalar and batch link paths
        #: trivially bit-identical (same float from the same dict).
        self._shadow: Dict[Tuple[int, int], float] = {}

    def max_shadow_db(self) -> float:
        """The largest possible shadowing gain (truncation bound, dB)."""
        return self.max_sigma_factor * self.shadowing_sigma_db

    def shadow_db(self, a: int, b: int) -> float:
        """The frozen shadowing term for the unordered pair ``{a, b}``."""
        key = (a, b) if a <= b else (b, a)
        value = self._shadow.get(key)
        if value is None:
            draw = random.Random(
                derive_seed(self.seed, "shadow", key[0], key[1])
            ).gauss(0.0, self.shadowing_sigma_db)
            bound = self.max_shadow_db()
            value = self._shadow[key] = max(-bound, min(bound, draw))
        return value

    def link_power_dbm(self, sender: int, receiver: int,
                       distance: float) -> float:
        return self.received_power_dbm(distance) + self.shadow_db(sender, receiver)

    def link_power_dbm_batch(self, senders: np.ndarray, receivers: np.ndarray,
                             distances: np.ndarray) -> np.ndarray:
        base = self.received_power_dbm_batch(distances)
        shadow_db = self.shadow_db
        shadows = np.fromiter(
            (shadow_db(int(s), int(r)) for s, r in zip(senders, receivers)),
            dtype=float, count=len(distances),
        )
        return base + shadows

    def max_range(self) -> float:
        """Sense radius with full shadow headroom (for spatial pruning)."""
        return self.range_for_threshold(
            self.cs_threshold_dbm - self.max_shadow_db())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LogDistanceShadowing(n={self.path_loss_exponent}, "
            f"sigma={self.shadowing_sigma_db}dB, seed={self.seed})"
        )
