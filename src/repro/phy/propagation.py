"""Propagation models.

The paper's evaluation uses a fixed 75 m radio range (GloMoSim's default
range-threshold behaviour), which the :class:`UnitDiskModel` reproduces.
:class:`LogDistanceModel` is provided as an extension for ablations: it
computes a received-power-vs-threshold decision from a log-distance path
loss, which still reduces to a deterministic circular range but documents
where a fading model would plug in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class PropagationModel(ABC):
    """Decides whether a transmission is receivable and senseable.

    The scalar predicates are the reference semantics; the ``*_batch``
    variants evaluate a whole distance array at once for the vectorized
    link-table rebuild (see :mod:`repro.phy.neighbors`). The base-class
    batch fallbacks call the scalar predicate per element, so any
    subclass is automatically batch-correct; the built-in models
    override them with true array expressions that are bit-identical to
    their scalar forms.
    """

    @abstractmethod
    def in_range(self, distance: float) -> bool:
        """True if a frame can be received at ``distance`` meters."""

    @abstractmethod
    def max_range(self) -> float:
        """An upper bound on the reception distance (for spatial pruning)."""

    def carrier_sensed(self, distance: float) -> bool:
        """True if a transmission at ``distance`` raises carrier sense.

        Defaults to the reception range; subclasses may extend it (real
        radios sense further than they decode).
        """
        return self.in_range(distance)

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`in_range` (bool array, same shape)."""
        return np.fromiter((self.in_range(float(d)) for d in distances),
                           dtype=bool, count=len(distances))

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`carrier_sensed` (bool array, same shape)."""
        return np.fromiter((self.carrier_sensed(float(d)) for d in distances),
                           dtype=bool, count=len(distances))


class UnitDiskModel(PropagationModel):
    """Fixed circular radio range (the paper's model; default 75 m)."""

    def __init__(self, radio_range: float = 75.0, sense_range: float | None = None):
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        self.radio_range = float(radio_range)
        self.sense_range = float(sense_range) if sense_range is not None else self.radio_range
        if self.sense_range < self.radio_range:
            raise ValueError("sense_range must be >= radio_range")

    def in_range(self, distance: float) -> bool:
        return distance <= self.radio_range

    def carrier_sensed(self, distance: float) -> bool:
        return distance <= self.sense_range

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        return distances <= self.radio_range

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        return distances <= self.sense_range

    def max_range(self) -> float:
        return self.sense_range

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnitDiskModel(range={self.radio_range}m, sense={self.sense_range}m)"


class LogDistanceModel(PropagationModel):
    """Log-distance path loss with a reception power threshold.

    ``PL(d) = PL(d0) + 10 * n * log10(d / d0)`` dB. A frame is receivable
    when ``tx_power_dbm - PL(d) >= rx_threshold_dbm`` and carrier-sensed
    when it clears ``cs_threshold_dbm`` (typically ~10 dB lower).
    """

    def __init__(
        self,
        tx_power_dbm: float = 15.0,
        path_loss_exponent: float = 2.8,
        reference_loss_db: float = 40.0,
        reference_distance: float = 1.0,
        rx_threshold_dbm: float = -65.0,
        cs_threshold_dbm: float = -75.0,
    ):
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if cs_threshold_dbm > rx_threshold_dbm:
            raise ValueError("carrier-sense threshold must not exceed rx threshold")
        self.tx_power_dbm = tx_power_dbm
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance = reference_distance
        self.rx_threshold_dbm = rx_threshold_dbm
        self.cs_threshold_dbm = cs_threshold_dbm

    def received_power_dbm(self, distance: float) -> float:
        """Received power at ``distance`` meters (clamped to d0 up close).

        Routed through ``np.log10`` (not ``math.log10``): numpy's log10
        can differ from libm's by 1 ulp, and the scalar and batch paths
        must agree bit-for-bit for the grid path's "bit-identical
        results" contract to hold.
        """
        d = max(distance, self.reference_distance)
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * float(
            np.log10(d / self.reference_distance)
        )
        return self.tx_power_dbm - loss

    def received_power_dbm_batch(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`received_power_dbm` (float array, same shape)."""
        d = np.maximum(distances, self.reference_distance)
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * np.log10(
            d / self.reference_distance
        )
        return self.tx_power_dbm - loss

    def _range_for_threshold(self, threshold_dbm: float) -> float:
        margin = self.tx_power_dbm - self.reference_loss_db - threshold_dbm
        return self.reference_distance * 10.0 ** (margin / (10.0 * self.path_loss_exponent))

    def in_range(self, distance: float) -> bool:
        return self.received_power_dbm(distance) >= self.rx_threshold_dbm

    def carrier_sensed(self, distance: float) -> bool:
        return self.received_power_dbm(distance) >= self.cs_threshold_dbm

    def in_range_batch(self, distances: np.ndarray) -> np.ndarray:
        return self.received_power_dbm_batch(distances) >= self.rx_threshold_dbm

    def carrier_sensed_batch(self, distances: np.ndarray) -> np.ndarray:
        return self.received_power_dbm_batch(distances) >= self.cs_threshold_dbm

    def max_range(self) -> float:
        return self._range_for_threshold(self.cs_threshold_dbm)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LogDistanceModel(n={self.path_loss_exponent}, "
            f"rx_range={self._range_for_threshold(self.rx_threshold_dbm):.1f}m)"
        )
