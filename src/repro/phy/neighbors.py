"""Neighborhood evaluation: who hears whom, and with what delay.

The data channel and the busy-tone channels both need, at the moment a
transmission (or tone emission) starts, the set of nodes that will sense
it and the per-link propagation delay. This module centralizes that
computation over a position provider:

* static scenarios: every sender's link table is computed once and frozen
  (later calls are a single list index);
* mobile scenarios: positions are bucketed to a configurable window
  (default 50 ms -- at the paper's top speed of 8 m/s a node moves 0.4 mm
  per us and 0.4 m per 50 ms, negligible against the 75 m radio range),
  and cached link tables are keyed on the *same* bucket epoch, so links
  and positions can never disagree mid-window. Set ``cache_window=0``
  for exact per-call evaluation.

Two interchangeable link-computation paths:

* **brute** -- the reference: one O(n) numpy distance pass per sender,
  then a Python loop over the in-range candidates
  (:meth:`NeighborService._compute_links`). Computed lazily, one sender
  at a time, on cache miss.
* **grid** -- a :class:`~repro.phy.grid.SpatialGrid` (cell size = the
  model's ``max_range()``) prunes candidates to the 3 x 3 cell
  neighborhoods. Dense buckets (>=25% of senders queried, judged from
  the previous bucket's traffic or detected mid-bucket) rebuild *all*
  link tables in one batched numpy pass: distances, ``carrier_sensed``/
  ``in_range`` masks, received powers and propagation delays are
  array-evaluated at once. Sparse buckets are served sender by sender
  against the bucket's grid, so light traffic never pays for tables
  nobody asks for. Both flavors are bit-identical to brute by
  construction (same float64 operations element-wise, same candidate
  ordering); the property suite in ``tests/properties`` enforces it.

``indexing="auto"`` (the default) picks brute below
:data:`GRID_THRESHOLD` nodes -- at small n the batched rebuild has no
advantage and the committed benchmark baselines exercise the original
path byte-for-byte -- and grid at or above it.

**Power mode** (:class:`LinkPowerSpec`, used by the SINR subsystem):
instead of the model's boolean range predicates, links are kept down to
an *interference* cutoff (default: the noise floor) and every decision
-- decodable, carrier-sensed, kept at all -- is a threshold on the
link's received power, which includes per-pair shadowing
(``model.link_power_dbm``) and per-node heterogeneous radio offsets.
Links below carrier sense but above the cutoff are *interference-only*
(``Link.sensed`` False): they feed the SINR interference tracker but
never raise carrier sense or busy-tone detection. The grid cell size
becomes the spec's ``prune_range`` (the interference radius), not the
model's ``max_range()``. The scalar and batched power paths share the
same float64 operations, so grid == brute stays bit-exact in power mode
too (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Dict, List, NamedTuple, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.phy.grid import SpatialGrid
from repro.phy.propagation import PropagationModel

#: Speed of light in meters per nanosecond.
_LIGHT_SPEED_M_PER_NS = 0.299792458

#: ``indexing="auto"`` switches from brute to grid at this node count.
GRID_THRESHOLD = 64

INDEXING_MODES = ("auto", "grid", "brute")


def propagation_delay_ns(distance_m: float) -> int:
    """One-way propagation delay for ``distance_m`` meters, >= 1 ns."""
    return max(1, round(distance_m / _LIGHT_SPEED_M_PER_NS))


class PositionProvider(Protocol):
    """Supplies node positions at a simulation time (ns)."""

    def positions(self, time_ns: int) -> np.ndarray:
        """(N, 2) float array of node positions in meters."""

    def is_static(self) -> bool:
        """True if positions never change (enables permanent caching)."""


class StaticPositions:
    """A trivial provider for fixed node placements."""

    def __init__(self, coords: Sequence[Sequence[float]]):
        self._coords = np.asarray(coords, dtype=float)
        if self._coords.ndim != 2 or self._coords.shape[1] != 2:
            raise ValueError("coords must be an (N, 2) array-like")
        self._coords.setflags(write=False)

    def positions(self, time_ns: int) -> np.ndarray:
        return self._coords

    def is_static(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._coords)


class Link(NamedTuple):
    """One receiver of a transmission: its id, link delay, decodability.

    A NamedTuple (not a dataclass): the batched rebuild constructs tens
    of thousands of these per bucket epoch and tuple construction is
    several times cheaper, while field access, equality and positional
    construction stay source-compatible.
    """

    node: int
    delay_ns: int
    in_rx_range: bool  # False => carrier-sensed only (cannot decode)
    #: Received power at the node (dBm) when the propagation model can
    #: compute it (LogDistanceModel); None for pure unit-disk models.
    #: Feeds the optional capture-effect collision resolution and the
    #: SINR interference accumulation.
    power_dbm: Optional[float] = None
    #: False => interference-only: the node's radio cannot sense this
    #: transmission (no carrier sense, no busy-tone detection), but its
    #: power still lands in the SINR interference tracker. Only the
    #: power-mode link builder produces False; classic links are always
    #: sensed (the carrier-sense predicate is the keep filter there).
    sensed: bool = True


class LinkTable:
    """One sender's links for one bucket epoch, plus derived views.

    ``delay_map`` (node -> delay_ns) is built lazily and shared by every
    busy-tone emission in the epoch, instead of each emission re-deriving
    its own dict from the links. It covers *sensed* links only: a
    busy tone (like carrier sense) reaches exactly the nodes whose
    radios detect energy; power-mode interference-only links are
    excluded. ``tone_map`` restricts further to links at or above an
    explicit power threshold (busy-tone detection in the power domain);
    one threshold is cached since a run uses a single tone threshold.
    """

    __slots__ = ("links", "_delay_map", "_tone_thr", "_tone_map")

    def __init__(self, links: Tuple[Link, ...]):
        self.links = links
        self._delay_map: Optional[Dict[int, int]] = None
        self._tone_thr: Optional[float] = None
        self._tone_map: Optional[Dict[int, int]] = None

    @property
    def delay_map(self) -> Dict[int, int]:
        mapping = self._delay_map
        if mapping is None:
            mapping = {link.node: link.delay_ns
                       for link in self.links if link.sensed}
            self._delay_map = mapping
        return mapping

    def tone_map(self, threshold_dbm: float) -> Dict[int, int]:
        """node -> delay for links whose power clears ``threshold_dbm``."""
        if self._tone_thr != threshold_dbm:
            self._tone_map = {
                link.node: link.delay_ns for link in self.links
                if link.power_dbm is not None
                and link.power_dbm >= threshold_dbm
            }
            self._tone_thr = threshold_dbm
        return self._tone_map  # type: ignore[return-value]


@dataclass(eq=False)
class LinkPowerSpec:
    """Power-domain link-building thresholds (the SINR subsystem's view).

    When a :class:`NeighborService` carries one of these, link tables
    are built from received *power* rather than the model's boolean
    range predicates: a candidate is kept iff its link power (pair-aware
    ``model.link_power_dbm`` plus per-node radio offsets) reaches
    ``keep_threshold_dbm`` (the interference cutoff), decodes iff it
    reaches ``rx_threshold_dbm``, and is carrier-sensed
    (:attr:`Link.sensed`) iff it reaches ``cs_threshold_dbm``.
    ``prune_range`` bounds the spatial search (grid cell size / brute
    candidate radius): the distance beyond which no link -- even with
    maximal shadowing and radio offsets -- can reach the cutoff.
    """

    rx_threshold_dbm: float
    cs_threshold_dbm: float
    keep_threshold_dbm: float
    prune_range: float
    #: Per-node transmit-side offset (tx-power jitter + antenna gain,
    #: dB), indexed by sender id; None = homogeneous radios.
    tx_offset_dbm: Optional[np.ndarray] = None
    #: Per-node receive-side antenna gain (dB), indexed by receiver id.
    rx_gain_dbm: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.prune_range <= 0:
            raise ValueError("prune_range must be positive")
        if self.keep_threshold_dbm > self.cs_threshold_dbm:
            raise ValueError(
                "keep_threshold_dbm (interference cutoff) must not exceed "
                "cs_threshold_dbm")
        if (self.tx_offset_dbm is None) != (self.rx_gain_dbm is None):
            raise ValueError(
                "tx_offset_dbm and rx_gain_dbm must be set together")


class NeighborCounters:
    """Plain counters for the neighbor layer (telemetry satellite).

    ``table_hits``/``table_misses`` count :meth:`NeighborService.table_from`
    calls served from a cached table vs ones that (re)computed;
    ``table_rebuilds`` counts whole-bucket batched rebuilds on the grid
    path; ``links_built`` counts Link objects constructed;
    ``grid_cells``/``grid_pairs`` accumulate occupied cells and candidate
    pairs touched per rebuild; ``pos_cache_*`` count the mobility
    position-snapshot cache.
    """

    __slots__ = ("table_hits", "table_misses", "table_rebuilds",
                 "links_built", "grid_cells", "grid_pairs",
                 "pos_cache_hits", "pos_cache_misses")

    def __init__(self):
        self.table_hits = 0
        self.table_misses = 0
        self.table_rebuilds = 0
        self.links_built = 0
        self.grid_cells = 0
        self.grid_pairs = 0
        self.pos_cache_hits = 0
        self.pos_cache_misses = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class NeighborService:
    """Computes and caches per-sender neighbor/link information."""

    def __init__(
        self,
        provider: PositionProvider,
        model: PropagationModel,
        cache_window: int = 50_000_000,
        indexing: str = "auto",
        grid_threshold: int = GRID_THRESHOLD,
        power_spec: Optional[LinkPowerSpec] = None,
    ):
        if indexing not in INDEXING_MODES:
            raise ValueError(
                f"indexing must be one of {INDEXING_MODES}, got {indexing!r}")
        self._provider = provider
        self._model = model
        self._power_spec = power_spec
        self._static = provider.is_static()
        self._cache_window = int(cache_window)
        self._indexing = indexing
        self._grid_threshold = int(grid_threshold)
        #: Resolved lazily on first use (needs the node count): True =>
        #: whole-bucket batched rebuilds, False => lazy per-sender brute.
        self._grid_active: Optional[bool] = None
        #: Static scenarios (either path) and mobile grid scenarios: one
        #: LinkTable per sender, indexed by sender id.
        self._tables: Optional[List[LinkTable]] = None
        #: Bucket epoch ``_tables`` was built for (mobile grid path).
        self._tables_bucket: int = -1
        #: Mobile brute path and sparse grid buckets: sender -> (position
        #: bucket, table). An entry is valid iff its bucket equals the
        #: bucket of the query time -- one integer comparison, and links
        #: can never disagree with what ``positions_at`` returns for the
        #: same time.
        self._cache: Dict[int, Tuple[int, LinkTable]] = {}
        #: Mobile grid path: bucket epoch the density bookkeeping below
        #: refers to, per-sender queried-this-bucket flags, and the
        #: distinct-sender count. The previous bucket's density decides
        #: whether the next one rebuilds eagerly or serves lazily.
        self._grid_bucket: int = -1
        self._grid_seen: int = 0
        self._grid_seen_flags: Optional[bytearray] = None
        #: Per-bucket spatial index for lazily served (sparse) buckets.
        self._lazy_grid: Optional[SpatialGrid] = None
        #: Two-slot LRU of position snapshots, keyed by bucket epoch.
        #: One slot thrashes when two different times are interleaved
        #: (e.g. an oracle or trace lookback alongside the live clock);
        #: two slots make that access pattern all hits.
        self._pos_buckets: List[int] = [-1, -1]
        self._pos_arrays: List[Optional[np.ndarray]] = [None, None]
        self._pos_mru: int = 0
        self.counters = NeighborCounters()

    @property
    def model(self) -> PropagationModel:
        return self._model

    @property
    def power_spec(self) -> Optional[LinkPowerSpec]:
        """The power-domain link spec, or None on the classic path."""
        return self._power_spec

    def _search_range(self) -> float:
        """Spatial pruning radius: interference radius in power mode."""
        spec = self._power_spec
        return spec.prune_range if spec is not None else self._model.max_range()

    def _link_power(self, sender: int, node: int, distance: float) -> float:
        """Scalar link power incl. radio offsets (power mode only).

        Addition order matches the batched path exactly
        (``(base + tx_offset) + rx_gain``) so scalar and batch powers
        are bit-identical.
        """
        spec = self._power_spec
        power = self._model.link_power_dbm(sender, node, distance)
        tx = spec.tx_offset_dbm
        if tx is not None:
            power = power + float(tx[sender])
            power = power + float(spec.rx_gain_dbm[node])  # type: ignore[index]
        return power

    @property
    def indexing(self) -> str:
        """The configured indexing mode (``auto``/``grid``/``brute``)."""
        return self._indexing

    def force_indexing(self, mode: str) -> None:
        """Switch indexing mode and drop caches (benchmark/test hook).

        Lets a benchmark run the same built network on both paths without
        touching :class:`~repro.world.network.ScenarioConfig` (and hence
        without perturbing any ``config_hash``).
        """
        if mode not in INDEXING_MODES:
            raise ValueError(
                f"indexing must be one of {INDEXING_MODES}, got {mode!r}")
        self._indexing = mode
        self._grid_active = None
        self._tables = None
        self._tables_bucket = -1
        self._cache.clear()
        self._grid_bucket = -1
        self._grid_seen = 0
        self._grid_seen_flags = None
        self._lazy_grid = None

    def _bucket(self, time_ns: int) -> int:
        """The position-bucket epoch ``time_ns`` falls into."""
        window = self._cache_window
        return time_ns if window == 0 else time_ns - time_ns % window

    def _use_grid(self, n: int) -> bool:
        mode = self._indexing
        if mode == "grid":
            return True
        if mode == "brute":
            return False
        return n >= self._grid_threshold

    def positions_at(self, time_ns: int) -> np.ndarray:
        """Positions at ``time_ns`` (cached within the mobility window)."""
        arrays = self._pos_arrays
        if self._static:
            pos = arrays[0]
            if pos is None:
                pos = self._provider.positions(0)
                arrays[0] = pos
            return pos
        bucket = self._bucket(time_ns)
        buckets = self._pos_buckets
        mru = self._pos_mru
        counters = self.counters
        if buckets[mru] == bucket:
            counters.pos_cache_hits += 1
            return arrays[mru]  # type: ignore[return-value]
        lru = 1 - mru
        if buckets[lru] == bucket:
            counters.pos_cache_hits += 1
            self._pos_mru = lru
            return arrays[lru]  # type: ignore[return-value]
        counters.pos_cache_misses += 1
        pos = self._provider.positions(bucket)
        buckets[lru] = bucket
        arrays[lru] = pos
        self._pos_mru = lru
        return pos

    def links_from(self, sender: int, time_ns: int) -> Tuple[Link, ...]:
        """All nodes that sense a transmission from ``sender`` at ``time_ns``.

        Excludes the sender itself. For each, reports the propagation delay
        and whether the node can actually decode (vs carrier-sense only).
        """
        return self.table_from(sender, time_ns).links

    def table_from(self, sender: int, time_ns: int) -> LinkTable:
        """The sender's :class:`LinkTable` at ``time_ns``.

        Static providers are frozen on first use: every sender's table is
        precomputed and later calls are a single list index. Mobile
        providers key caching on the position-bucket epoch, so cached
        links are exactly the ones implied by ``positions_at`` at the
        same time -- never a stale set left over from the previous
        bucket. The grid path adapts to query density per bucket: when
        the previous bucket queried >=25% of the senders (or this one
        does, mid-bucket), *all* tables are rebuilt in one batched numpy
        pass; sparse buckets are served sender by sender against the
        bucket's spatial index, so light traffic never pays for tables
        nobody asks for.
        """
        counters = self.counters
        if self._static:
            tables = self._tables
            if tables is None:
                tables = self._freeze()
            if not 0 <= sender < len(tables):
                raise ValueError(f"unknown sender id {sender}")
            counters.table_hits += 1
            return tables[sender]
        bucket = self._bucket(time_ns)
        grid = self._grid_active
        if grid is None:
            grid = self._grid_active = self._use_grid(len(self.positions_at(time_ns)))
        if grid:
            flags = self._grid_seen_flags
            rebuilt = False
            if bucket != self._grid_bucket:
                pos = self.positions_at(time_ns)
                n = len(pos)
                dense = self._grid_seen * 4 >= n
                self._grid_bucket = bucket
                self._grid_seen = 0
                flags = self._grid_seen_flags = bytearray(n)
                self._lazy_grid = None
                if dense:
                    counters.table_misses += 1
                    self._tables = self._build_tables(pos)
                    self._tables_bucket = bucket
                    rebuilt = True
            if not 0 <= sender < len(flags):  # type: ignore[arg-type]
                raise ValueError(f"unknown sender id {sender}")
            if not flags[sender]:  # type: ignore[index]
                flags[sender] = 1  # type: ignore[index]
                self._grid_seen += 1
            if bucket == self._tables_bucket:
                if not rebuilt:
                    counters.table_hits += 1
                return self._tables[sender]  # type: ignore[index]
            cached = self._cache.get(sender)
            if cached is not None and cached[0] == bucket:
                counters.table_hits += 1
                return cached[1]
            counters.table_misses += 1
            if self._grid_seen * 4 >= len(flags):  # type: ignore[arg-type]
                # The bucket turned dense mid-flight: one batched rebuild
                # now beats continuing sender by sender.
                tables = self._build_tables(self.positions_at(time_ns))
                self._tables = tables
                self._tables_bucket = bucket
                return tables[sender]
            lazy = self._lazy_grid
            if lazy is None:
                lazy = self._lazy_grid = SpatialGrid(
                    self.positions_at(time_ns), self._search_range())
                counters.grid_cells += lazy.n_cells
            table = LinkTable(self._compute_links_pruned(sender, time_ns, lazy))
            counters.links_built += len(table.links)
            self._cache[sender] = (bucket, table)
            return table
        cached = self._cache.get(sender)
        if cached is not None and cached[0] == bucket:
            counters.table_hits += 1
            return cached[1]
        counters.table_misses += 1
        table = LinkTable(self._compute_links(sender, time_ns))
        counters.links_built += len(table.links)
        self._cache[sender] = (bucket, table)
        return table

    def _freeze(self) -> List[LinkTable]:
        """Precompute every sender's link table (static providers only)."""
        pos = self.positions_at(0)
        n = len(pos)
        if self._grid_active is None:
            self._grid_active = self._use_grid(n)
        if self._grid_active:
            tables = self._build_tables(pos)
        else:
            tables = [LinkTable(self._compute_links(sender, 0)) for sender in range(n)]
            self.counters.links_built += sum(len(t.links) for t in tables)
        self._tables = tables
        return tables

    def _build_tables(self, pos: np.ndarray) -> List[LinkTable]:
        """All senders' link tables in one batched numpy pass (grid path).

        Exactness contract vs :meth:`_compute_links`: identical float64
        element-wise operations (subtract / ``np.hypot`` / divide /
        ``np.rint`` == banker's ``round``), the model's ``*_batch``
        predicates agree bit-for-bit with their scalar forms, and the
        lexsort reproduces brute's per-sender ascending-node order.
        """
        model = self._model
        spec = self._power_spec
        counters = self.counters
        n = len(pos)
        counters.table_rebuilds += 1
        search_range = self._search_range()
        grid = SpatialGrid(pos, search_range)
        senders, cands = grid.pairs()
        counters.grid_cells += grid.n_cells
        counters.grid_pairs += len(senders)
        keep = senders != cands
        senders, cands = senders[keep], cands[keep]
        dists = np.hypot(pos[cands, 0] - pos[senders, 0],
                         pos[cands, 1] - pos[senders, 1])
        keep = dists <= search_range
        senders, cands, dists = senders[keep], cands[keep], dists[keep]
        if spec is not None:
            powers = model.link_power_dbm_batch(senders, cands, dists)
            tx = spec.tx_offset_dbm
            if tx is not None:
                powers = powers + tx[senders]
                powers = powers + spec.rx_gain_dbm[cands]  # type: ignore[index]
            keep = powers >= spec.keep_threshold_dbm
            if not keep.all():
                senders, cands = senders[keep], cands[keep]
                dists, powers = dists[keep], powers[keep]
            order = np.lexsort((cands, senders))
            senders, cands = senders[order], cands[order]
            dists, powers = dists[order], powers[order]
            in_rx = powers >= spec.rx_threshold_dbm
            sensed_flags = powers >= spec.cs_threshold_dbm
            powers_list = powers.tolist()
            sensed_list = sensed_flags.tolist()
        else:
            sensed = model.carrier_sensed_batch(dists)
            if not sensed.all():
                senders, cands, dists = (senders[sensed], cands[sensed],
                                         dists[sensed])
            order = np.lexsort((cands, senders))
            senders, cands, dists = senders[order], cands[order], dists[order]
            in_rx = model.in_range_batch(dists)
            power_batch = getattr(model, "received_power_dbm_batch", None)
            if power_batch is None:
                powers_list = repeat(None)
            else:
                powers_list = power_batch(dists).tolist()
            sensed_list = repeat(True)
        delays = np.rint(dists / _LIGHT_SPEED_M_PER_NS)
        np.maximum(delays, 1.0, out=delays)
        nodes_list = cands.tolist()
        delays_list = delays.astype(np.int64).tolist()
        in_rx_list = in_rx.tolist()
        # tuple.__new__ skips the namedtuple __new__ wrapper (~2x cheaper
        # per link; construction dominates the rebuild at large n). The
        # zip always supplies all five fields, so the result is the same
        # 5-tuple Link(_compute_links) would build, defaults included.
        flat = list(map(tuple.__new__, repeat(Link),
                        zip(nodes_list, delays_list, in_rx_list, powers_list,
                            sensed_list)))
        counters.links_built += len(flat)
        bounds = np.searchsorted(senders, np.arange(n + 1)).tolist()
        return [LinkTable(tuple(flat[bounds[s]:bounds[s + 1]]))
                for s in range(n)]

    def _links_by_power(self, sender: int, cand: np.ndarray,
                        dists: np.ndarray) -> Tuple[Link, ...]:
        """Scalar power-mode link loop (shared by brute and pruned paths).

        Same float64 operations per element as the batched power branch
        of :meth:`_build_tables`, candidates visited in ascending-node
        order -- bit-identical to the grid path by construction.
        """
        spec = self._power_spec
        links: List[Link] = []
        for idx in np.flatnonzero(dists <= spec.prune_range):
            node = int(cand[idx])
            if node == sender:
                continue
            d = float(dists[idx])
            power = self._link_power(sender, node, d)
            if power < spec.keep_threshold_dbm:
                continue
            links.append(
                Link(
                    node=node,
                    delay_ns=propagation_delay_ns(d),
                    in_rx_range=power >= spec.rx_threshold_dbm,
                    power_dbm=power,
                    sensed=power >= spec.cs_threshold_dbm,
                )
            )
        return tuple(links)

    def _compute_links(self, sender: int, time_ns: int) -> Tuple[Link, ...]:
        """The brute-force reference: one sender, one O(n) distance pass."""
        pos = self.positions_at(time_ns)
        if not 0 <= sender < len(pos):
            raise ValueError(f"unknown sender id {sender}")
        deltas = pos - pos[sender]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        if self._power_spec is not None:
            return self._links_by_power(
                sender, np.arange(len(pos)), dists)
        links: List[Link] = []
        max_range = self._model.max_range()
        candidates = np.flatnonzero(dists <= max_range)
        power_fn = getattr(self._model, "received_power_dbm", None)
        for node in candidates:
            if node == sender:
                continue
            d = float(dists[node])
            if not self._model.carrier_sensed(d):
                continue
            power = power_fn(d) if power_fn is not None else None
            links.append(
                Link(
                    node=int(node),
                    delay_ns=propagation_delay_ns(d),
                    in_rx_range=self._model.in_range(d),
                    power_dbm=float(power) if power is not None else None,
                )
            )
        return tuple(links)

    def _compute_links_pruned(self, sender: int, time_ns: int,
                              grid: SpatialGrid) -> Tuple[Link, ...]:
        """One sender's links against its 3x3 cell neighborhood only.

        The sparse-bucket path: same scalar loop as
        :meth:`_compute_links`, but over ``grid.candidates_of(sender)``
        (a sorted superset of every node within ``max_range``) instead
        of all n nodes. Distances come from the identical element-wise
        subtract/``np.hypot``, candidates are visited in the same
        ascending-node order, and every per-link scalar call is the
        same -- so the result is bit-identical to brute.
        """
        pos = self.positions_at(time_ns)
        cand = grid.candidates_of(sender)
        deltas = pos[cand] - pos[sender]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        if self._power_spec is not None:
            return self._links_by_power(sender, cand, dists)
        links: List[Link] = []
        model = self._model
        max_range = model.max_range()
        power_fn = getattr(model, "received_power_dbm", None)
        sensed_fn = model.carrier_sensed
        in_range_fn = model.in_range
        delay_fn = propagation_delay_ns
        append = links.append
        for idx in np.flatnonzero(dists <= max_range):
            node = int(cand[idx])
            if node == sender:
                continue
            d = float(dists[idx])
            if not sensed_fn(d):
                continue
            power = power_fn(d) if power_fn is not None else None
            append(Link(node, delay_fn(d), in_range_fn(d),
                        float(power) if power is not None else None))
        return tuple(links)

    def distance(self, a: int, b: int, time_ns: int) -> float:
        """Distance in meters between nodes ``a`` and ``b`` at ``time_ns``."""
        pos = self.positions_at(time_ns)
        return float(np.hypot(*(pos[a] - pos[b])))

    def in_rx_range(self, a: int, b: int, time_ns: int) -> bool:
        """True if ``b`` can decode frames from ``a`` at ``time_ns``."""
        d = self.distance(a, b, time_ns)
        spec = self._power_spec
        if spec is not None:
            return self._link_power(a, b, d) >= spec.rx_threshold_dbm
        return self._model.in_range(d)

    def invalidate(self) -> None:
        """Drop all cached neighbor sets (used by tests and topology changes)."""
        self._tables = None
        self._tables_bucket = -1
        self._cache.clear()
        self._grid_bucket = -1
        self._grid_seen = 0
        self._grid_seen_flags = None
        self._lazy_grid = None
        self._pos_buckets = [-1, -1]
        self._pos_arrays = [None, None]
        self._pos_mru = 0
