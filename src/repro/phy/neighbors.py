"""Neighborhood evaluation: who hears whom, and with what delay.

The data channel and the busy-tone channels both need, at the moment a
transmission (or tone emission) starts, the set of nodes that will sense
it and the per-link propagation delay. This module centralizes that
computation over a position provider:

* static scenarios: every sender's link table is computed once and frozen
  into a plain tuple (later calls are a single list index);
* mobile scenarios: positions are bucketed to a configurable window
  (default 50 ms -- at the paper's top speed of 8 m/s a node moves 0.4 mm
  per us and 0.4 m per 50 ms, negligible against the 75 m radio range),
  and cached link tables are keyed on the *same* bucket epoch, so links
  and positions can never disagree mid-window. Set ``cache_window=0``
  for exact per-call evaluation.

Distances are computed with numpy against all node positions at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.phy.propagation import PropagationModel

#: Speed of light in meters per nanosecond.
_LIGHT_SPEED_M_PER_NS = 0.299792458


def propagation_delay_ns(distance_m: float) -> int:
    """One-way propagation delay for ``distance_m`` meters, >= 1 ns."""
    return max(1, round(distance_m / _LIGHT_SPEED_M_PER_NS))


class PositionProvider(Protocol):
    """Supplies node positions at a simulation time (ns)."""

    def positions(self, time_ns: int) -> np.ndarray:
        """(N, 2) float array of node positions in meters."""

    def is_static(self) -> bool:
        """True if positions never change (enables permanent caching)."""


class StaticPositions:
    """A trivial provider for fixed node placements."""

    def __init__(self, coords: Sequence[Sequence[float]]):
        self._coords = np.asarray(coords, dtype=float)
        if self._coords.ndim != 2 or self._coords.shape[1] != 2:
            raise ValueError("coords must be an (N, 2) array-like")
        self._coords.setflags(write=False)

    def positions(self, time_ns: int) -> np.ndarray:
        return self._coords

    def is_static(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._coords)


@dataclass(frozen=True)
class Link:
    """One receiver of a transmission: its id, link delay, decodability."""

    node: int
    delay_ns: int
    in_rx_range: bool  # False => carrier-sensed only (cannot decode)
    #: Received power at the node (dBm) when the propagation model can
    #: compute it (LogDistanceModel); None for pure unit-disk models.
    #: Feeds the optional capture-effect collision resolution.
    power_dbm: Optional[float] = None


class NeighborService:
    """Computes and caches per-sender neighbor/link information."""

    def __init__(
        self,
        provider: PositionProvider,
        model: PropagationModel,
        cache_window: int = 50_000_000,
    ):
        self._provider = provider
        self._model = model
        self._static = provider.is_static()
        self._cache_window = int(cache_window)
        #: Static scenarios: per-sender link tables frozen into plain
        #: tuples, indexed by sender id (no dict lookup, no recompute).
        self._frozen: Optional[List[Tuple[Link, ...]]] = None
        #: Mobile scenarios: sender -> (position bucket, links). An entry
        #: is valid iff its bucket equals the bucket of the query time --
        #: one integer comparison, and links can never disagree with what
        #: ``positions_at`` returns for the same time.
        self._cache: Dict[int, Tuple[int, Tuple[Link, ...]]] = {}
        self._pos_cache_time: int = -1
        self._pos_cache: np.ndarray | None = None

    @property
    def model(self) -> PropagationModel:
        return self._model

    def _bucket(self, time_ns: int) -> int:
        """The position-bucket epoch ``time_ns`` falls into."""
        window = self._cache_window
        return time_ns if window == 0 else time_ns - time_ns % window

    def positions_at(self, time_ns: int) -> np.ndarray:
        """Positions at ``time_ns`` (cached within the mobility window)."""
        if self._static:
            if self._pos_cache is None:
                self._pos_cache = self._provider.positions(0)
            return self._pos_cache
        bucket = self._bucket(time_ns)
        if bucket != self._pos_cache_time:
            self._pos_cache = self._provider.positions(bucket)
            self._pos_cache_time = bucket
        assert self._pos_cache is not None
        return self._pos_cache

    def links_from(self, sender: int, time_ns: int) -> Tuple[Link, ...]:
        """All nodes that sense a transmission from ``sender`` at ``time_ns``.

        Excludes the sender itself. For each, reports the propagation delay
        and whether the node can actually decode (vs carrier-sense only).

        Static providers are frozen on first use: every sender's table is
        precomputed into a plain tuple and later calls are a single list
        index. Mobile providers key the cache on the position-bucket
        epoch, so cached links are exactly the ones implied by
        ``positions_at`` at the same time -- never a stale set left over
        from the previous bucket.
        """
        if self._static:
            frozen = self._frozen
            if frozen is None:
                frozen = self._freeze()
            if not 0 <= sender < len(frozen):
                raise ValueError(f"unknown sender id {sender}")
            return frozen[sender]
        bucket = self._bucket(time_ns)
        cached = self._cache.get(sender)
        if cached is not None and cached[0] == bucket:
            return cached[1]
        links = self._compute_links(sender, time_ns)
        self._cache[sender] = (bucket, links)
        return links

    def _freeze(self) -> List[Tuple[Link, ...]]:
        """Precompute every sender's link table (static providers only)."""
        n = len(self.positions_at(0))
        self._frozen = [self._compute_links(sender, 0) for sender in range(n)]
        return self._frozen

    def _compute_links(self, sender: int, time_ns: int) -> Tuple[Link, ...]:
        pos = self.positions_at(time_ns)
        if not 0 <= sender < len(pos):
            raise ValueError(f"unknown sender id {sender}")
        deltas = pos - pos[sender]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        links: List[Link] = []
        max_range = self._model.max_range()
        candidates = np.flatnonzero(dists <= max_range)
        power_fn = getattr(self._model, "received_power_dbm", None)
        for node in candidates:
            if node == sender:
                continue
            d = float(dists[node])
            if not self._model.carrier_sensed(d):
                continue
            power = power_fn(d) if power_fn is not None else None
            links.append(
                Link(
                    node=int(node),
                    delay_ns=propagation_delay_ns(d),
                    in_rx_range=self._model.in_range(d),
                    power_dbm=float(power) if power is not None else None,
                )
            )
        return tuple(links)

    def distance(self, a: int, b: int, time_ns: int) -> float:
        """Distance in meters between nodes ``a`` and ``b`` at ``time_ns``."""
        pos = self.positions_at(time_ns)
        return float(np.hypot(*(pos[a] - pos[b])))

    def in_rx_range(self, a: int, b: int, time_ns: int) -> bool:
        """True if ``b`` can decode frames from ``a`` at ``time_ns``."""
        return self._model.in_range(self.distance(a, b, time_ns))

    def invalidate(self) -> None:
        """Drop all cached neighbor sets (used by tests and topology changes)."""
        self._frozen = None
        self._cache.clear()
        self._pos_cache = None
        self._pos_cache_time = -1
