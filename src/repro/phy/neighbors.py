"""Neighborhood evaluation: who hears whom, and with what delay.

The data channel and the busy-tone channels both need, at the moment a
transmission (or tone emission) starts, the set of nodes that will sense
it and the per-link propagation delay. This module centralizes that
computation over a position provider:

* static scenarios: the full result is computed once per sender and reused;
* mobile scenarios: results are cached for a configurable window
  (default 50 ms -- at the paper's top speed of 8 m/s a node moves 0.4 mm
  per us and 0.4 m per 50 ms, negligible against the 75 m radio range).
  Set ``cache_window=0`` for exact per-call evaluation.

Distances are computed with numpy against all node positions at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence

import numpy as np

from repro.phy.propagation import PropagationModel

#: Speed of light in meters per nanosecond.
_LIGHT_SPEED_M_PER_NS = 0.299792458


def propagation_delay_ns(distance_m: float) -> int:
    """One-way propagation delay for ``distance_m`` meters, >= 1 ns."""
    return max(1, round(distance_m / _LIGHT_SPEED_M_PER_NS))


class PositionProvider(Protocol):
    """Supplies node positions at a simulation time (ns)."""

    def positions(self, time_ns: int) -> np.ndarray:
        """(N, 2) float array of node positions in meters."""

    def is_static(self) -> bool:
        """True if positions never change (enables permanent caching)."""


class StaticPositions:
    """A trivial provider for fixed node placements."""

    def __init__(self, coords: Sequence[Sequence[float]]):
        self._coords = np.asarray(coords, dtype=float)
        if self._coords.ndim != 2 or self._coords.shape[1] != 2:
            raise ValueError("coords must be an (N, 2) array-like")
        self._coords.setflags(write=False)

    def positions(self, time_ns: int) -> np.ndarray:
        return self._coords

    def is_static(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._coords)


@dataclass(frozen=True)
class Link:
    """One receiver of a transmission: its id, link delay, decodability."""

    node: int
    delay_ns: int
    in_rx_range: bool  # False => carrier-sensed only (cannot decode)
    #: Received power at the node (dBm) when the propagation model can
    #: compute it (LogDistanceModel); None for pure unit-disk models.
    #: Feeds the optional capture-effect collision resolution.
    power_dbm: float = None  # type: ignore[assignment]


class NeighborService:
    """Computes and caches per-sender neighbor/link information."""

    def __init__(
        self,
        provider: PositionProvider,
        model: PropagationModel,
        cache_window: int = 50_000_000,
    ):
        self._provider = provider
        self._model = model
        self._static = provider.is_static()
        self._cache_window = int(cache_window)
        self._cache: Dict[int, tuple[int, List[Link]]] = {}
        self._pos_cache_time: int = -1
        self._pos_cache: np.ndarray | None = None

    @property
    def model(self) -> PropagationModel:
        return self._model

    def positions_at(self, time_ns: int) -> np.ndarray:
        """Positions at ``time_ns`` (cached within the mobility window)."""
        if self._static:
            if self._pos_cache is None:
                self._pos_cache = self._provider.positions(0)
            return self._pos_cache
        bucket = time_ns if self._cache_window == 0 else time_ns - time_ns % self._cache_window
        if bucket != self._pos_cache_time:
            self._pos_cache = self._provider.positions(bucket)
            self._pos_cache_time = bucket
        assert self._pos_cache is not None
        return self._pos_cache

    def links_from(self, sender: int, time_ns: int) -> List[Link]:
        """All nodes that sense a transmission from ``sender`` at ``time_ns``.

        Excludes the sender itself. For each, reports the propagation delay
        and whether the node can actually decode (vs carrier-sense only).
        """
        if self._static:
            cached = self._cache.get(sender)
            if cached is not None:
                return cached[1]
        else:
            cached = self._cache.get(sender)
            if cached is not None:
                cached_time, links = cached
                if self._cache_window and 0 <= time_ns - cached_time < self._cache_window:
                    return links
        links = self._compute_links(sender, time_ns)
        self._cache[sender] = (time_ns, links)
        return links

    def _compute_links(self, sender: int, time_ns: int) -> List[Link]:
        pos = self.positions_at(time_ns)
        if not 0 <= sender < len(pos):
            raise ValueError(f"unknown sender id {sender}")
        deltas = pos - pos[sender]
        dists = np.hypot(deltas[:, 0], deltas[:, 1])
        links: List[Link] = []
        max_range = self._model.max_range()
        candidates = np.flatnonzero(dists <= max_range)
        power_fn = getattr(self._model, "received_power_dbm", None)
        for node in candidates:
            if node == sender:
                continue
            d = float(dists[node])
            if not self._model.carrier_sensed(d):
                continue
            links.append(
                Link(
                    node=int(node),
                    delay_ns=propagation_delay_ns(d),
                    in_rx_range=self._model.in_range(d),
                    power_dbm=float(power_fn(d)) if power_fn is not None else None,
                )
            )
        return links

    def distance(self, a: int, b: int, time_ns: int) -> float:
        """Distance in meters between nodes ``a`` and ``b`` at ``time_ns``."""
        pos = self.positions_at(time_ns)
        return float(np.hypot(*(pos[a] - pos[b])))

    def in_rx_range(self, a: int, b: int, time_ns: int) -> bool:
        """True if ``b`` can decode frames from ``a`` at ``time_ns``."""
        return self._model.in_range(self.distance(a, b, time_ns))

    def invalidate(self) -> None:
        """Drop all cached neighbor sets (used by tests and topology changes)."""
        self._cache.clear()
        self._pos_cache = None
        self._pos_cache_time = -1
