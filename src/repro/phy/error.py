"""Bit-error models.

The paper's headline experiments use a collision-only loss model (GloMoSim
with no fading and no random bit errors: delivery ratio ~1 when static),
so :class:`NoErrors` is the default. :class:`UniformBitErrors` supports the
paper's remark that the 20-receiver MRTS limit "can be further reduced in
case of high error bit rate" -- the ablation benches sweep the BER.
:class:`GilbertElliott` adds the bursty two-state channel that feedback-
recovery work (FEBER; Abstract-MAC unreliable-link models) identifies as
the regime where multicast MACs actually break; the fault-injection layer
(:mod:`repro.faults`) selects it through a :class:`~repro.faults.FaultPlan`.

Serialization: every model round-trips through ``to_dict`` /
:func:`error_model_from_dict` with value-based ``__eq__``, so a model can
live inside a ``ScenarioConfig`` (via its fault plan) without breaking the
result store's ``config_hash`` determinism. ``to_dict`` carries *only
parameters*, never dynamic state -- reconstructing a model always yields a
fresh instance starting from its canonical initial state, which is what
seeded replay requires.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Type


class BitErrorModel(ABC):
    """Decides whether a frame of a given size is corrupted in flight."""

    #: Wire name used in ``to_dict`` records; subclasses override.
    KIND = ""

    @abstractmethod
    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        """Return True if a frame of ``nbytes`` MAC bytes is corrupted."""

    def to_dict(self) -> dict:
        """JSON-serializable parameters (stable keys; no dynamic state)."""
        return {"model": self.KIND, **self._params()}

    def _params(self) -> dict:
        """Parameter fields beyond the model name (subclasses override)."""
        return {}

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other._params() == self._params()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self._params().items()))))


class NoErrors(BitErrorModel):
    """Error-free channel (collisions remain the only loss cause)."""

    KIND = "none"

    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "NoErrors()"


class UniformBitErrors(BitErrorModel):
    """Independent bit errors at a fixed bit-error rate.

    A frame survives with probability ``(1 - ber) ** (8 * nbytes)``; longer
    frames (like a many-receiver MRTS) are proportionally more fragile,
    which is exactly the effect Section 3.4 of the paper worries about.
    """

    KIND = "uniform"

    def __init__(self, ber: float):
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"bit error rate must be in [0, 1), got {ber}")
        self.ber = float(ber)

    def _params(self) -> dict:
        return {"ber": self.ber}

    def frame_success_probability(self, nbytes: int) -> float:
        """Probability that a frame of ``nbytes`` bytes arrives intact."""
        if nbytes < 0:
            raise ValueError("negative frame size")
        return (1.0 - self.ber) ** (8 * nbytes)

    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        if self.ber == 0.0:
            return False
        return rng.random() >= self.frame_success_probability(nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformBitErrors(ber={self.ber})"


class GilbertElliott(BitErrorModel):
    """Two-state Markov (Gilbert-Elliott) bursty bit-error channel.

    The channel alternates between a *good* and a *bad* state with
    per-frame transition probabilities ``p_gb`` (good -> bad) and
    ``p_bg`` (bad -> good); each state applies its own independent
    bit-error rate to the frame. With ``ber_good == ber_bad`` the state
    is irrelevant and the model is statistically identical to
    :class:`UniformBitErrors` at that BER (the property tests assert
    this); with ``ber_bad >> ber_good`` losses cluster into bursts whose
    mean length is ``1 / p_bg`` frames.

    The state transition is evaluated *before* each frame, consuming one
    RNG draw, then the per-state survival check consumes at most one
    more -- all off the channel's seeded RNG stream, so runs replay
    bit-identically. The dynamic state is deliberately excluded from
    ``to_dict``/``__eq__``: a deserialized model always starts in the
    good state, exactly like a freshly built one.
    """

    KIND = "gilbert-elliott"

    def __init__(self, p_gb: float, p_bg: float,
                 ber_good: float = 0.0, ber_bad: float = 0.1):
        for name, p in (("p_gb", p_gb), ("p_bg", p_bg)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for name, ber in (("ber_good", ber_good), ("ber_bad", ber_bad)):
            if not 0.0 <= ber < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {ber}")
        self.p_gb = float(p_gb)
        self.p_bg = float(p_bg)
        self.ber_good = float(ber_good)
        self.ber_bad = float(ber_bad)
        #: Dynamic channel state (True = bad); starts good by definition.
        self.bad = False

    def _params(self) -> dict:
        return {"p_gb": self.p_gb, "p_bg": self.p_bg,
                "ber_good": self.ber_good, "ber_bad": self.ber_bad}

    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        if self.bad:
            if rng.random() < self.p_bg:
                self.bad = False
        else:
            if rng.random() < self.p_gb:
                self.bad = True
        ber = self.ber_bad if self.bad else self.ber_good
        if ber == 0.0:
            return False
        return rng.random() >= (1.0 - ber) ** (8 * nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"GilbertElliott(p_gb={self.p_gb}, p_bg={self.p_bg}, "
                f"ber_good={self.ber_good}, ber_bad={self.ber_bad})")


#: Wire-name registry for :func:`error_model_from_dict`.
_MODELS: Dict[str, Type[BitErrorModel]] = {
    NoErrors.KIND: NoErrors,
    UniformBitErrors.KIND: UniformBitErrors,
    GilbertElliott.KIND: GilbertElliott,
}


def error_model_from_dict(payload: dict) -> BitErrorModel:
    """Rebuild a model from its ``to_dict`` record.

    Always returns a *fresh* instance in the model's initial state:
    ``error_model_from_dict(m.to_dict())`` is the idiom for giving each
    run its own copy of a stateful model (``GilbertElliott``).
    """
    kind = payload.get("model")
    cls = _MODELS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown bit-error model {kind!r}; have {sorted(_MODELS)}")
    params = {k: v for k, v in payload.items() if k != "model"}
    return cls(**params)
