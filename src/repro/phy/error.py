"""Bit-error models.

The paper's headline experiments use a collision-only loss model (GloMoSim
with no fading and no random bit errors: delivery ratio ~1 when static),
so :class:`NoErrors` is the default. :class:`UniformBitErrors` supports the
paper's remark that the 20-receiver MRTS limit "can be further reduced in
case of high error bit rate" -- the ablation benches sweep the BER.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class BitErrorModel(ABC):
    """Decides whether a frame of a given size is corrupted in flight."""

    @abstractmethod
    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        """Return True if a frame of ``nbytes`` MAC bytes is corrupted."""


class NoErrors(BitErrorModel):
    """Error-free channel (collisions remain the only loss cause)."""

    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return "NoErrors()"


class UniformBitErrors(BitErrorModel):
    """Independent bit errors at a fixed bit-error rate.

    A frame survives with probability ``(1 - ber) ** (8 * nbytes)``; longer
    frames (like a many-receiver MRTS) are proportionally more fragile,
    which is exactly the effect Section 3.4 of the paper worries about.
    """

    def __init__(self, ber: float):
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"bit error rate must be in [0, 1), got {ber}")
        self.ber = float(ber)

    def frame_success_probability(self, nbytes: int) -> float:
        """Probability that a frame of ``nbytes`` bytes arrives intact."""
        if nbytes < 0:
            raise ValueError("negative frame size")
        return (1.0 - self.ber) ** (8 * nbytes)

    def corrupts(self, nbytes: int, rng: random.Random) -> bool:
        if self.ber == 0.0:
            return False
        return rng.random() >= self.frame_success_probability(nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformBitErrors(ber={self.ber})"
