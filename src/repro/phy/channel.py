"""The shared data channel.

Models GloMoSim-style frame transmission with:

* per-link propagation delay (distance / c, bounded by the paper's
  tau = 1 us for ranges under 300 m);
* carrier sense via per-node busy counters maintained by arrival events;
* the overlap collision model: a reception is corrupted if any other
  sensed transmission overlaps it at the receiver, if the receiver itself
  transmits during it, if the sender aborts mid-frame (RMAC's
  abort-on-RBT), or if the bit-error model corrupts it;
* abortable transmissions (truncated frames shorten the busy interval
  and are never delivered).

Two optional refinements of the overlap rule, mutually exclusive:

* **capture** (``capture_threshold_db``): an overlapping frame survives
  when its power beats every interferer by the margin;
* **SINR** (``sinr``, a :class:`repro.phy.sinr.SinrState`): every
  arrival's power accumulates in a per-node interference tracker, and
  delivery is decided at arrival end from the signal-to-(peak
  interference + noise) ratio. Capture is the single-interferer special
  case of SINR, so configuring both raises a
  :class:`~repro.sim.engine.SimulationError`. With SINR's interference
  accounting *off*, the classic overlap rule applies and the SINR check
  reduces to signal-vs-noise (behaviorally identical to the threshold
  path under a permissive threshold -- property-tested).

The channel is protocol-agnostic: RMAC, 802.11 DCF, BMMM and BMW all
run on the same instance.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence

from repro.phy.error import BitErrorModel, NoErrors
from repro.phy.neighbors import Link, NeighborService
from repro.phy.params import PhyParams
from repro.sim.engine import EventHandle, FastEvent, SimulationError, Simulator
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector
    from repro.phy.sinr import SinrState


class ChannelListener(Protocol):
    """Callbacks a radio receives from the data channel."""

    def on_frame_received(self, frame: object, sender: int) -> None:
        """A frame arrived intact."""

    def on_frame_error(self, sender: int) -> None:
        """A frame arrived but was corrupted (collision/abort/bit errors)."""

    def on_rx_start(self, sender: int) -> None:
        """The first bit of a decodable frame is arriving (RMAC's
        ``Twf_rdata`` cancels on this)."""

    def on_tx_complete(self, frame: object, aborted: bool) -> None:
        """This node's own transmission finished (or was aborted)."""


class Transmission:
    """One in-flight frame transmission."""

    __slots__ = ("sender", "frame", "start", "airtime", "links", "aborted_at", "_end_event")

    def __init__(self, sender: int, frame: object, start: int, airtime: int, links: Sequence[Link]):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.airtime = airtime
        self.links = links
        self.aborted_at: Optional[int] = None
        self._end_event: Optional[EventHandle] = None

    @property
    def end(self) -> int:
        """Actual end of the transmission (scheduled end, or abort time)."""
        return self.aborted_at if self.aborted_at is not None else self.start + self.airtime

    @property
    def aborted(self) -> bool:
        return self.aborted_at is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " aborted" if self.aborted else ""
        return f"<Transmission from {self.sender} [{self.start}..{self.end}]{flag}>"


class _Reception:
    __slots__ = ("tx", "corrupted", "power_dbm", "signal_mw", "peak_itf_mw")

    def __init__(self, tx: Transmission, corrupted: bool, power_dbm=None):
        self.tx = tx
        self.corrupted = corrupted
        self.power_dbm = power_dbm
        #: SINR mode only: the arrival's linear signal power and the
        #: highest concurrent interference observed during the reception
        #: window (peaks only move when new signals arrive).
        self.signal_mw = 0.0
        self.peak_itf_mw = 0.0


class DataChannel:
    """The shared wideband data channel."""

    def __init__(
        self,
        sim: Simulator,
        neighbors: NeighborService,
        phy: PhyParams,
        error_model: Optional[BitErrorModel] = None,
        rng: Optional[random.Random] = None,
        tracer: Tracer = NULL_TRACER,
        capture_threshold_db: Optional[float] = None,
        faults: Optional["FaultInjector"] = None,
        sinr: Optional["SinrState"] = None,
    ):
        if capture_threshold_db is not None and sinr is not None:
            raise SimulationError(
                "capture_threshold_db and SINR reception are mutually "
                "exclusive: capture is the single-interferer special case "
                "of SINR (set sinr_threshold_db instead)")
        self._sim = sim
        self._neighbors = neighbors
        self._phy = phy
        self._error_model = error_model or NoErrors()
        #: NoErrors never consults the RNG, so delivery can skip the call
        #: entirely without perturbing anyone's random stream.
        self._error_free = type(self._error_model) is NoErrors
        self._rng = rng or random.Random(0)
        self._tracer = tracer
        #: Optional fault injector (see repro.faults). ``None`` keeps the
        #: arrival paths on a single ``is None`` test; with an injector,
        #: crashed endpoints suppress deliveries entirely and fades or
        #: corruption windows turn deliveries into frame errors.
        self._faults = faults if faults is not None and faults.affects_data else None
        #: Capture effect (extension): when set, an overlapping frame
        #: survives if its received power beats every interferer by this
        #: many dB. Requires a propagation model that reports power
        #: (LogDistanceModel). None = the paper's all-overlaps-collide
        #: model. Late capture (a strong frame arriving mid-reception of
        #: a weak one) kills the weak reception; the strong one survives
        #: only if it clears the margin over all concurrent signals.
        self.capture_threshold_db = capture_threshold_db
        #: Optional SINR reception state (see repro.phy.sinr). ``None``
        #: keeps the arrival hot paths on a single ``is None`` test --
        #: the same zero-cost-when-disabled discipline as ``faults``.
        self._sinr = sinr
        #: node -> {transmission: power_dbm} of signals currently in the
        #: air at that node (capture mode only).
        self._signal_powers: Dict[int, Dict[Transmission, float]] = {}
        self._busy: Dict[int, int] = {}
        self._receiving: Dict[int, Dict[Transmission, _Reception]] = {}
        self._transmitting: Dict[int, Transmission] = {}
        self._listeners: Dict[int, ChannelListener] = {}
        #: When each node last observed the medium become idle (for DIFS).
        self._last_busy_end: Dict[int, int] = {}
        #: One-shot callbacks fired when a node's medium goes idle (used by
        #: the MACs to avoid per-slot polling through long busy periods).
        self._idle_waiters: Dict[int, list] = {}
        #: Free lists of fired arrival events, reused across transmissions
        #: so the per-link fan-out allocates nothing in steady state.
        self._start_pool: List[_ArrivalStart] = []
        self._end_pool: List[_ArrivalEnd] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node: int, listener: ChannelListener) -> None:
        """Register the listener (radio) for ``node``."""
        self._listeners[node] = listener

    @property
    def phy(self) -> PhyParams:
        return self._phy

    @property
    def neighbors(self) -> NeighborService:
        return self._neighbors

    @property
    def sinr(self) -> Optional["SinrState"]:
        """The SINR reception state, or None on the threshold path."""
        return self._sinr

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def busy(self, node: int) -> bool:
        """Carrier sense at ``node``: any sensed transmission, or own tx.

        ``_busy`` only ever stores positive counts (zero deletes the key,
        underflow raises), so membership is the whole test.
        """
        return node in self._busy or node in self._transmitting

    def is_transmitting(self, node: int) -> bool:
        return node in self._transmitting

    def idle_duration(self, node: int) -> int:
        """How long the medium has been continuously idle at ``node`` (ns).

        Zero while busy. Used by the 802.11-family DIFS rule; RMAC does
        not need it (no interframe spaces).
        """
        if self.busy(node):
            return 0
        return self._sim.now - self._last_busy_end.get(node, 0)

    def notify_idle(self, node: int, callback) -> None:
        """Register a one-shot callback for the next busy->idle transition
        at ``node``. Fires immediately (synchronously) if already idle."""
        if not self.busy(node):
            callback()
            return
        self._idle_waiters.setdefault(node, []).append(callback)

    def _fire_idle(self, node: int) -> None:
        waiters = self._idle_waiters.pop(node, None)
        if waiters:
            for callback in waiters:
                callback()

    def current_tx(self, node: int) -> Optional[Transmission]:
        return self._transmitting.get(node)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: int, frame: object) -> Transmission:
        """Start transmitting ``frame`` (with ``size_bytes``) from ``sender``."""
        if sender in self._transmitting:
            raise RuntimeError(f"node {sender} is already transmitting")
        now = self._sim.now
        airtime = self._phy.frame_airtime(frame.size_bytes)  # type: ignore[attr-defined]
        links = self._neighbors.table_from(sender, now).links
        tx = Transmission(sender, frame, now, airtime, links)
        self._transmitting[sender] = tx
        # Transmitting while receiving destroys the ongoing receptions
        # (half-duplex radio).
        ongoing = self._receiving.get(sender)
        if ongoing:
            for rec in ongoing.values():
                rec.corrupted = True
        pool = self._start_pool
        entries = []
        for link in links:
            if pool:
                event = pool.pop()
                event.tx = tx
                event.link = link
            else:
                event = _ArrivalStart(self, tx, link)
            entries.append((now + link.delay_ns, event))
        self._sim.schedule_many(entries)
        tx._end_event = self._sim.at(now + airtime, lambda: self._finish_tx(tx), label="tx-end")
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(now, sender, "tx-start", frame=str(frame), airtime=airtime)
        return tx

    def abort(self, tx: Transmission) -> None:
        """Abort an in-flight transmission (RMAC's abort-on-RBT).

        The truncated frame is never delivered; nodes that had begun
        receiving it see a frame error at the truncated end time.
        """
        if tx.aborted:
            return
        if self._transmitting.get(tx.sender) is not tx:
            raise RuntimeError("cannot abort: transmission is not active")
        now = self._sim.now
        tx.aborted_at = now
        if tx._end_event is not None:
            tx._end_event.cancel()
            tx._end_event = None
        del self._transmitting[tx.sender]
        if self._busy.get(tx.sender, 0) == 0:
            self._last_busy_end[tx.sender] = now
            self._fire_idle(tx.sender)
        self._schedule_arrival_ends(tx, now)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(now, tx.sender, "tx-abort", frame=str(tx.frame))
        listener = self._listeners.get(tx.sender)
        if listener is not None:
            listener.on_tx_complete(tx.frame, aborted=True)

    def _finish_tx(self, tx: Transmission) -> None:
        del self._transmitting[tx.sender]
        tx._end_event = None
        end = self._sim.now
        if self._busy.get(tx.sender, 0) == 0:
            self._last_busy_end[tx.sender] = end
            self._fire_idle(tx.sender)
        self._schedule_arrival_ends(tx, end)
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(end, tx.sender, "tx-end", frame=str(tx.frame))
        listener = self._listeners.get(tx.sender)
        if listener is not None:
            listener.on_tx_complete(tx.frame, aborted=False)

    def _schedule_arrival_ends(self, tx: Transmission, end: int) -> None:
        """Fan the per-link arrival-end events out in one batch."""
        pool = self._end_pool
        entries = []
        for link in tx.links:
            if pool:
                event = pool.pop()
                event.tx = tx
                event.link = link
            else:
                event = _ArrivalEnd(self, tx, link)
            entries.append((end + link.delay_ns, event))
        self._sim.schedule_many(entries)

    # ------------------------------------------------------------------
    # Arrival bookkeeping (driven by scheduled events)
    # ------------------------------------------------------------------
    def _arrival_start(self, tx: Transmission, link: Link) -> None:
        if self._sinr is not None:
            self._arrival_start_sinr(tx, link, self._sinr)
            return
        node = link.node
        prior = self._busy.get(node, 0)
        self._busy[node] = prior + 1
        ongoing = self._receiving.setdefault(node, {})
        corrupted = False
        power = link.power_dbm
        if self.capture_threshold_db is not None and power is not None:
            signals = self._signal_powers.setdefault(node, {})
            if prior > 0:
                threshold = self.capture_threshold_db
                # The newcomer corrupts receptions it is not dominated by.
                for rec in ongoing.values():
                    if rec.power_dbm is None or (
                        rec.power_dbm - power < threshold
                    ):
                        rec.corrupted = True
                if len(signals) < prior:
                    # Some concurrent signal has no reported power (mixed
                    # power/no-power links): dominance cannot be proven,
                    # so the newcomer falls back to colliding.
                    corrupted = True
                else:
                    # The newcomer survives only if it dominates every signal.
                    strongest = max(signals.values(), default=-1e9)
                    corrupted = power - strongest < threshold
            signals[tx] = power
        elif prior > 0:
            # Overlap: this arrival collides with everything already in the
            # air at this node, and vice versa (the paper's model; also the
            # behavior of a no-power link when capture is enabled, since a
            # power-less arrival cannot win a power comparison).
            for rec in ongoing.values():
                rec.corrupted = True
            corrupted = True
        if node in self._transmitting:
            corrupted = True
        if link.in_rx_range:
            faults = self._faults
            if faults is not None and faults.suppresses_delivery(
                    tx.sender, node, self._sim.now):
                # A crashed endpoint: the energy above still interferes,
                # but no reception begins -- to this receiver the frame
                # does not exist (no on_rx_start, nothing at arrival end).
                return
            ongoing[tx] = _Reception(tx, corrupted, link.power_dbm)
            listener = self._listeners.get(node)
            if listener is not None:
                listener.on_rx_start(tx.sender)

    def _arrival_start_sinr(self, tx: Transmission, link: Link,
                            sinr: "SinrState") -> None:
        """Arrival start under SINR reception.

        Mirrors :meth:`_arrival_start` with three changes: busy counters
        move only for *sensed* links (interference-only links are
        invisible to the radio), every arrival's linear power lands in
        the interference tracker (bumping the peak interference of any
        ongoing reception at the node), and -- with interference
        accounting on -- overlap alone no longer corrupts: the SINR
        decision at arrival end replaces the boolean rule.
        """
        node = link.node
        power_dbm = link.power_dbm
        # Power-mode links always carry power; so do classic links now
        # that every model reports one (base-class fallback).
        power_mw = 10.0 ** (power_dbm / 10.0)  # type: ignore[operator]
        fading = sinr.fading
        if fading is not None:
            power_mw *= fading.gain(sinr.rng)
        sensed = link.sensed
        if sensed:
            prior = self._busy.get(node, 0)
            self._busy[node] = prior + 1
        else:
            prior = 0
        ongoing = self._receiving.setdefault(node, {})
        corrupted = False
        if sinr.interference:
            total = sinr.tracker.add(node, tx, power_mw)
            if ongoing:
                for rec in ongoing.values():
                    itf = total - rec.signal_mw
                    if itf > rec.peak_itf_mw:
                        rec.peak_itf_mw = itf
            initial_itf = total - power_mw
        else:
            initial_itf = 0.0
            if prior > 0:
                # Interference accounting off: the paper's overlap rule.
                for rec in ongoing.values():
                    rec.corrupted = True
                corrupted = True
        if node in self._transmitting:
            corrupted = True
        if link.in_rx_range:
            faults = self._faults
            if faults is not None and faults.suppresses_delivery(
                    tx.sender, node, self._sim.now):
                return
            rec = _Reception(tx, corrupted, power_dbm)
            rec.signal_mw = power_mw
            rec.peak_itf_mw = initial_itf
            ongoing[tx] = rec
            listener = self._listeners.get(node)
            if listener is not None:
                listener.on_rx_start(tx.sender)

    def _arrival_end(self, tx: Transmission, link: Link) -> None:
        if self._sinr is not None:
            self._arrival_end_sinr(tx, link, self._sinr)
            return
        node = link.node
        if self.capture_threshold_db is not None:
            signals = self._signal_powers.get(node)
            if signals is not None:
                signals.pop(tx, None)
        busy = self._busy
        count = busy.get(node)
        if count is None or count < 0:
            # An end without a matching start means arrival bookkeeping
            # lost or duplicated an event; inventing a count here would
            # silently mask it. Fail loudly instead.
            self._tracer.emit(
                self._sim.now, node, "channel-underflow", sender=tx.sender
            )
            raise SimulationError(
                f"busy-counter underflow at node {node}: arrival-end from "
                f"sender {tx.sender} at t={self._sim.now} without a "
                f"matching arrival-start"
            )
        count -= 1
        if count:
            busy[node] = count
        else:
            del busy[node]
            if node not in self._transmitting:
                self._last_busy_end[node] = self._sim.now
                self._fire_idle(node)
        ongoing = self._receiving.get(node)
        rec = ongoing.pop(tx, None) if ongoing else None
        if rec is None:
            return
        listener = self._listeners.get(node)
        if listener is None:
            return
        frame = tx.frame
        size = frame.size_bytes  # type: ignore[attr-defined]
        faults = self._faults
        if faults is not None:
            now = self._sim.now
            if faults.suppresses_delivery(tx.sender, node, now):
                # An endpoint crashed since the arrival began: the frame
                # vanishes (no rx callback at all, matching a receiver
                # that never registered the reception).
                if self._tracer.enabled:
                    self._tracer.emit(now, node, "fault-rx-dropped",
                                      sender=tx.sender)
                return
            if not rec.corrupted and faults.corrupts_arrival(
                    tx.sender, node, now, self._rng):
                rec.corrupted = True
                if self._tracer.enabled:
                    self._tracer.emit(now, node, "fault-corrupt",
                                      sender=tx.sender)
        ok = (
            not rec.corrupted
            and not tx.aborted
            and (self._error_free or not self._error_model.corrupts(size, self._rng))
        )
        tracer = self._tracer
        if ok:
            if tracer.enabled:
                tracer.emit(self._sim.now, node, "rx-ok", frame=str(frame), sender=tx.sender)
            listener.on_frame_received(frame, tx.sender)
        else:
            if tracer.enabled:
                tracer.emit(self._sim.now, node, "rx-error", frame=str(frame), sender=tx.sender)
            listener.on_frame_error(tx.sender)

    def _arrival_end_sinr(self, tx: Transmission, link: Link,
                          sinr: "SinrState") -> None:
        """Arrival end under SINR reception (mirrors :meth:`_arrival_end`).

        The delivery decision adds one clause: the reception must clear
        the SINR threshold against the peak interference observed during
        its window. SINR-dropped frames skip the bit-error draw (like
        collided frames on the classic path), so the RNG stream is
        identical when the SINR clause never fires.
        """
        node = link.node
        if sinr.interference:
            sinr.tracker.remove(node, tx)
        if link.sensed:
            busy = self._busy
            count = busy.get(node)
            if not count or count < 0:
                self._tracer.emit(
                    self._sim.now, node, "channel-underflow", sender=tx.sender
                )
                raise SimulationError(
                    f"busy-counter underflow at node {node}: arrival-end "
                    f"from sender {tx.sender} at t={self._sim.now} without "
                    f"a matching arrival-start"
                )
            count -= 1
            if count:
                busy[node] = count
            else:
                del busy[node]
                if node not in self._transmitting:
                    self._last_busy_end[node] = self._sim.now
                    self._fire_idle(node)
        ongoing = self._receiving.get(node)
        rec = ongoing.pop(tx, None) if ongoing else None
        if rec is None:
            return
        listener = self._listeners.get(node)
        if listener is None:
            return
        frame = tx.frame
        size = frame.size_bytes  # type: ignore[attr-defined]
        faults = self._faults
        if faults is not None:
            now = self._sim.now
            if faults.suppresses_delivery(tx.sender, node, now):
                if self._tracer.enabled:
                    self._tracer.emit(now, node, "fault-rx-dropped",
                                      sender=tx.sender)
                return
            if not rec.corrupted and faults.corrupts_arrival(
                    tx.sender, node, now, self._rng):
                rec.corrupted = True
                if self._tracer.enabled:
                    self._tracer.emit(now, node, "fault-corrupt",
                                      sender=tx.sender)
        tracer = self._tracer
        reception = sinr.reception
        sinr_db = reception.sinr_db(rec.signal_mw, rec.peak_itf_mw)
        sinr_ok = reception.decodes(sinr_db)
        if not sinr_ok and not rec.corrupted and not tx.aborted:
            sinr.counters.dropped += 1
            if tracer.enabled:
                tracer.emit(self._sim.now, node, "sinr-drop",
                            frame=str(frame), sender=tx.sender,
                            sinr_db=round(sinr_db, 3))
        ok = (
            not rec.corrupted
            and not tx.aborted
            and sinr_ok
            and (self._error_free or not self._error_model.corrupts(size, self._rng))
        )
        if ok:
            sinr.counters.record_delivery(sinr_db)
            if tracer.enabled:
                tracer.emit(self._sim.now, node, "rx-ok", frame=str(frame), sender=tx.sender)
            listener.on_frame_received(frame, tx.sender)
        else:
            if tracer.enabled:
                tracer.emit(self._sim.now, node, "rx-error", frame=str(frame), sender=tx.sender)
            listener.on_frame_error(tx.sender)


class _ArrivalStart(FastEvent):
    """Bound arrival-start event, pooled and scheduled via
    ``Simulator.schedule_many`` (no lambda, no handle, no allocation in
    steady state: fired instances return to the channel's free list)."""

    __slots__ = ("channel", "tx", "link")

    label = "rx-start"

    def __init__(self, channel: DataChannel, tx: Transmission, link: Link):
        self.channel = channel
        self.tx = tx
        self.link = link

    def __call__(self) -> None:
        channel = self.channel
        tx = self.tx
        link = self.link
        self.tx = self.link = None
        channel._start_pool.append(self)
        channel._arrival_start(tx, link)


class _ArrivalEnd(FastEvent):
    """Bound arrival-end event (pooled like :class:`_ArrivalStart`)."""

    __slots__ = ("channel", "tx", "link")

    label = "rx-end"

    def __init__(self, channel: DataChannel, tx: Transmission, link: Link):
        self.channel = channel
        self.tx = tx
        self.link = link

    def __call__(self) -> None:
        channel = self.channel
        tx = self.tx
        link = self.link
        self.tx = self.link = None
        channel._end_pool.append(self)
        channel._arrival_end(tx, link)
