"""Physical-layer substrate: radios, channels, busy tones, propagation.

This subpackage stands in for GloMoSim's radio/channel models. It provides:

* :mod:`repro.phy.params`      -- IEEE 802.11b timing constants and frame
  airtime arithmetic (the paper's overhead analysis rests on these).
* :mod:`repro.phy.propagation` -- propagation models (unit disk,
  log-distance, log-distance + lognormal shadowing).
* :mod:`repro.phy.error`       -- bit-error models.
* :mod:`repro.phy.channel`     -- the shared data channel with per-receiver
  collision bookkeeping, carrier sense and abortable transmissions.
* :mod:`repro.phy.busytone`    -- narrow-band busy-tone channels (RBT/ABT)
  with presence intervals and lambda-detection semantics.
* :mod:`repro.phy.sinr`        -- the SINR interference subsystem:
  accumulated-power reception, fast fading, heterogeneous radios.
* :mod:`repro.phy.radio`       -- the per-node facade a MAC talks to.
"""

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.channel import DataChannel, Transmission
from repro.phy.error import BitErrorModel, NoErrors, UniformBitErrors
from repro.phy.params import PhyParams, DEFAULT_PHY
from repro.phy.propagation import (
    IN_RANGE_POWER_DBM,
    LogDistanceModel,
    LogDistanceShadowing,
    PropagationModel,
    UnitDiskModel,
)
from repro.phy.radio import Radio, RadioListener
from repro.phy.sinr import (
    InterferenceTracker,
    RayleighFading,
    RicianFading,
    SinrConfig,
    SinrReceptionModel,
    SinrState,
    wire_sinr,
)

__all__ = [
    "BusyToneChannel",
    "ToneType",
    "DataChannel",
    "Transmission",
    "BitErrorModel",
    "NoErrors",
    "UniformBitErrors",
    "PhyParams",
    "DEFAULT_PHY",
    "PropagationModel",
    "UnitDiskModel",
    "LogDistanceModel",
    "LogDistanceShadowing",
    "IN_RANGE_POWER_DBM",
    "SinrConfig",
    "SinrState",
    "SinrReceptionModel",
    "InterferenceTracker",
    "RayleighFading",
    "RicianFading",
    "wire_sinr",
    "Radio",
    "RadioListener",
]
