"""Narrow-band busy-tone channels (RBT and ABT).

Semantics, following Section 3 of the paper:

* A tone emitted by node E becomes *present* at listener L one link
  propagation delay after E turns it on, and stops being present one
  link delay after E turns it off. Presence from multiple emitters is
  OR-ed. A node never senses its own emission.
* *Detection* of a tone requires lambda = 15 us (the 802.11b CCA time)
  of continuous presence. Two detection mechanisms are offered:

  - ``watch_detection``: fires a callback at the first moment a tone has
    been present for lambda (used for RMAC's abort-on-RBT, where the
    paper's "tiny interval" between RBT-on and abort is tau + lambda);
  - ``longest_presence``: the longest continuously-present stretch within
    a half-open window ``(t0, t1]`` (used by the sender's per-receiver
    ABT windows; a window detects its receiver iff the stretch >= lambda).
    Attributing *presence* rather than emitter identity to a window is
    what lets the model reproduce the paper's "mixed-up ABT" phenomenon
    (Fig. 5) instead of assuming oracle knowledge.

Tone reach: by default an emission reaches every *sensed* link of the
emitter (``LinkTable.delay_map``); under the SINR subsystem's
power-domain link tables that already excludes interference-only links.
An explicit ``power_threshold_dbm`` moves tone detection fully into the
power domain: the tone reaches exactly the links whose received power
clears the threshold.
"""

from __future__ import annotations

import enum
from itertools import chain
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.phy.neighbors import NeighborService
from repro.sim.engine import EventHandle, FastEvent, Simulator
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector


class ToneType(enum.Enum):
    """The two busy tones RMAC introduces."""

    RBT = "RBT"
    ABT = "ABT"


class _Emission:
    __slots__ = ("emitter", "start", "end", "link_delays", "suppressed")

    def __init__(self, emitter: int, start: int, link_delays: Dict[int, int],
                 suppressed: bool = False):
        self.emitter = emitter
        self.start = start
        self.end: Optional[int] = None
        #: listener node -> propagation delay (frozen at emission start)
        self.link_delays = link_delays
        #: True for a crashed emitter's tone: never on the air, so it is
        #: absent from the on/off trace too (the invariant oracle must
        #: see the silence the rest of the network sees).
        self.suppressed = suppressed


class BusyToneChannel:
    """One narrow-band tone channel shared by all nodes."""

    #: Finished emissions older than this (ns) are pruned; ABT window
    #: queries only ever look back a few hundred microseconds.
    RETENTION = 2_000_000

    def __init__(
        self,
        sim: Simulator,
        neighbors: NeighborService,
        tone: ToneType,
        detect_time: int,
        tracer: Tracer = NULL_TRACER,
        faults: Optional["FaultInjector"] = None,
        power_threshold_dbm: Optional[float] = None,
    ):
        self._sim = sim
        self._neighbors = neighbors
        self.tone = tone
        #: lambda: continuous presence needed for detection (ns).
        self.detect_time = int(detect_time)
        #: Tone-detection threshold in the power domain: when set, an
        #: emission reaches exactly the links whose received power (dBm)
        #: clears it. None = all sensed links.
        self.power_threshold_dbm = power_threshold_dbm
        self._tracer = tracer
        #: Optional fault injector: a crashed emitter's tone reaches
        #: nobody, and a crashed listener senses nothing new. ``None``
        #: (the default) keeps turn_on on the original path.
        self._faults = faults if faults is not None and faults.affects_tones else None
        #: Trace kinds, precomputed off the per-emission hot path.
        self._on_kind = f"{tone.value.lower()}-on"
        self._off_kind = f"{tone.value.lower()}-off"
        self._active: Dict[int, _Emission] = {}
        self._recent: List[_Emission] = []
        self._present: Dict[int, int] = {}
        #: Per-node singleton presence-delta events. A presence delta
        #: carries no per-flight state (its node is fixed for life), so
        #: one object per node serves every emission -- the same event
        #: can sit in the queue several times at once -- and reuse is
        #: zero-write: no pool pops, no attribute stores, no allocation.
        self._on_events: Dict[int, _ToneOn] = {}
        self._off_events: Dict[int, _ToneOff] = {}
        #: One-shot callbacks fired when the tone clears at a node.
        self._clear_waiters: Dict[int, List[Callable[[], None]]] = {}
        #: node -> (callback, pending detection event handles)
        self._watchers: Dict[int, Tuple[Callable[[ToneType], None], List[EventHandle]]] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def turn_on(self, emitter: int) -> None:
        """Start emitting the tone from ``emitter``."""
        if emitter in self._active:
            raise RuntimeError(f"node {emitter} already emits {self.tone.value}")
        now = self._sim.now
        table = self._neighbors.table_from(emitter, now)
        faults = self._faults
        threshold = self.power_threshold_dbm
        suppressed = False
        if faults is None:
            # Shared, lazily-built view: every emission in the same bucket
            # epoch reuses one dict instead of re-deriving its own.
            # _Emission only ever reads it (.get/.items), never mutates.
            link_delays = (table.delay_map if threshold is None
                           else table.tone_map(threshold))
        elif faults.node_down(emitter, now):
            # A crashed emitter's tone reaches nobody. The emission is
            # still registered (with no listeners) so the MAC's matching
            # turn_off stays valid, and the suppression is traced so the
            # invariant oracle can tell an injected silence from a bug.
            link_delays = {}
            suppressed = True
            if self._tracer.enabled:
                self._tracer.emit(now, emitter, "fault-tone-suppressed",
                                  tone=self.tone.value)
        else:
            # Deaf listeners (crashed at emission start) sense nothing.
            if threshold is None:
                link_delays = {l.node: l.delay_ns for l in table.links
                               if l.sensed
                               and not faults.node_down(l.node, now)}
            else:
                link_delays = {l.node: l.delay_ns for l in table.links
                               if l.power_dbm is not None
                               and l.power_dbm >= threshold
                               and not faults.node_down(l.node, now)}
        emission = _Emission(emitter, now, link_delays, suppressed=suppressed)
        self._active[emitter] = emission
        # Presence deltas batch through schedule_many; detections (which
        # need cancellable handles) stay on sim.at. Presence lands within
        # one link delay (< 1 us) while detections trail by lambda = 15 us,
        # so reordering the two groups cannot create a same-time tie.
        events = self._on_events
        entries = []
        for node, delay in emission.link_delays.items():
            event = events.get(node)
            if event is None:
                event = events[node] = _ToneOn(self, node)
            entries.append((now + delay, event))
        self._sim.schedule_many(entries)
        detect_time = self.detect_time
        for node, delay in emission.link_delays.items():
            self._schedule_detection(emission, node, now + delay + detect_time)
        if self._tracer.enabled and not suppressed:
            self._tracer.emit(now, emitter, self._on_kind)

    def turn_off(self, emitter: int) -> None:
        """Stop emitting the tone from ``emitter``."""
        emission = self._active.pop(emitter, None)
        if emission is None:
            raise RuntimeError(f"node {emitter} does not emit {self.tone.value}")
        now = self._sim.now
        emission.end = now
        events = self._off_events
        entries = []
        for node, delay in emission.link_delays.items():
            event = events.get(node)
            if event is None:
                event = events[node] = _ToneOff(self, node)
            entries.append((now + delay, event))
        self._sim.schedule_many(entries)
        self._recent.append(emission)
        self._prune(now)
        if self._tracer.enabled and not emission.suppressed:
            self._tracer.emit(now, emitter, self._off_kind)

    def pulse(self, emitter: int, duration: int) -> None:
        """Emit the tone for exactly ``duration`` ns (used for ABT)."""
        self.turn_on(emitter)
        self._sim.after(duration, lambda: self.turn_off(emitter), label="tone-pulse-end")

    def is_emitting(self, emitter: int) -> bool:
        return emitter in self._active

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def present(self, node: int) -> bool:
        """Instantaneous presence of the tone at ``node`` (excludes self)."""
        return self._present.get(node, 0) > 0

    def longest_presence(self, node: int, t0: int, t1: int) -> int:
        """Longest continuously-present stretch at ``node`` within ``(t0, t1]``.

        Merges presence intervals from all relevant emitters (active and
        recently finished), clips to the window, and returns the longest
        merged segment in ns. The query time must be >= ``t1``.
        """
        if t1 > self._sim.now:
            raise ValueError("cannot query presence in the future")
        intervals: List[Tuple[int, int]] = []
        # chain() avoids materializing a concatenated list per query; this
        # runs once per receiver per DATA frame (the ABT-window hot path).
        for emission in chain(self._active.values(), self._recent):
            delay = emission.link_delays.get(node)
            if delay is None:
                continue
            lo = emission.start + delay
            hi = (emission.end + delay) if emission.end is not None else t1
            lo = max(lo, t0)
            hi = min(hi, t1)
            if hi > lo:
                intervals.append((lo, hi))
        if not intervals:
            return 0
        intervals.sort()
        best = 0
        cur_lo, cur_hi = intervals[0]
        for lo, hi in intervals[1:]:
            if lo <= cur_hi:
                cur_hi = max(cur_hi, hi)
            else:
                best = max(best, cur_hi - cur_lo)
                cur_lo, cur_hi = lo, hi
        return max(best, cur_hi - cur_lo)

    # ------------------------------------------------------------------
    # Detection watchers (RMAC's abort-on-RBT)
    # ------------------------------------------------------------------
    def watch_detection(self, node: int, callback: Callable[[ToneType], None]) -> None:
        """Arm a detection watcher at ``node``.

        The callback fires as soon as any in-range emission has been
        present for ``detect_time`` -- including emissions already active
        but not yet detectable when the watcher is armed (the race that
        makes MRTS abortion possible at all, per Section 3.3.2 note 3).
        """
        if node in self._watchers:
            raise RuntimeError(f"node {node} already watches {self.tone.value}")
        self._watchers[node] = (callback, [])
        now = self._sim.now
        for emission in self._active.values():
            delay = emission.link_delays.get(node)
            if delay is None:
                continue
            detect_at = emission.start + delay + self.detect_time
            if detect_at >= now:
                self._schedule_detection(emission, node, detect_at)
            else:
                # Tone already detectable: fire immediately (still async,
                # so the caller's state settles first).
                self._schedule_detection(emission, node, now)

    def unwatch_detection(self, node: int) -> None:
        """Disarm the watcher at ``node`` (no-op if absent)."""
        entry = self._watchers.pop(node, None)
        if entry is None:
            return
        for handle in entry[1]:
            handle.cancel()

    def _schedule_detection(self, emission: _Emission, node: int, when: int) -> None:
        entry = self._watchers.get(node)
        if entry is None:
            return
        handle = self._sim.at(
            when, _DetectionCheck(self, emission, node), label="tone-detect"
        )
        entry[1].append(handle)

    def _run_detection(self, emission: _Emission, node: int) -> None:
        entry = self._watchers.get(node)
        if entry is None:
            return
        # Valid only if the emission lasted the full detection time.
        if emission.end is not None and emission.end < emission.start + self.detect_time:
            # The watcher stays armed: drop handles that already fired or
            # were cancelled (including this one), so a long-armed watcher
            # holds only genuinely pending cancel targets.
            handles = entry[1]
            handles[:] = [h for h in handles if h.pending]
            return
        callback, _handles = entry
        self.unwatch_detection(node)
        callback(self.tone)

    # ------------------------------------------------------------------
    def notify_clear(self, node: int, callback: Callable[[], None]) -> None:
        """Register a one-shot callback for the next present->absent
        transition at ``node``. Fires immediately if already absent."""
        if not self.present(node):
            callback()
            return
        self._clear_waiters.setdefault(node, []).append(callback)

    def _apply_presence(self, node: int, delta: int) -> None:
        value = self._present.get(node, 0) + delta
        if value:
            self._present[node] = value
        else:
            self._present.pop(node, None)
            waiters = self._clear_waiters.pop(node, None)
            if waiters:
                for callback in waiters:
                    callback()

    def _prune(self, now: int) -> None:
        if len(self._recent) > 32:
            cutoff = now - self.RETENTION
            self._recent = [e for e in self._recent if e.end is None or e.end >= cutoff]


class _ToneOn(FastEvent):
    """Per-node singleton presence(+1) event (see ``_on_events``)."""

    __slots__ = ("channel", "node")

    label = "tone-on"

    def __init__(self, channel: BusyToneChannel, node: int):
        self.channel = channel
        self.node = node

    def __call__(self) -> None:
        # +1 can never drop a presence count to zero, so the clear-waiter
        # path in _apply_presence is unreachable here; apply inline.
        present = self.channel._present
        node = self.node
        present[node] = present.get(node, 0) + 1


class _ToneOff(FastEvent):
    """Per-node singleton presence(-1) event (see ``_off_events``)."""

    __slots__ = ("channel", "node")

    label = "tone-off"

    def __init__(self, channel: BusyToneChannel, node: int):
        self.channel = channel
        self.node = node

    def __call__(self) -> None:
        self.channel._apply_presence(self.node, -1)


class _DetectionCheck:
    __slots__ = ("channel", "emission", "node")

    def __init__(self, channel: BusyToneChannel, emission: _Emission, node: int):
        self.channel = channel
        self.emission = emission
        self.node = node

    def __call__(self) -> None:
        self.channel._run_detection(self.emission, self.node)
