"""Uniform spatial hashing for neighbor-candidate pruning.

``NeighborService`` needs, for every sender, the set of nodes within the
propagation model's ``max_range()``. The brute-force answer is an O(n)
distance pass per sender -- O(n^2) per mobility bucket, which is exactly
the per-bucket cost that caps topology size (ROADMAP: "as fast as the
hardware allows" at 1000+ nodes).

A :class:`SpatialGrid` buckets positions into square cells of side
``cell_size``. When ``cell_size >= max_range``, any two nodes within
``max_range`` of each other differ by at most 1 in each floor-cell
coordinate, so every sender's true neighbor set is contained in its
3 x 3 cell neighborhood. Candidate generation therefore touches at most
9 cells per sender instead of all n nodes, and the caller only has to
re-check the exact distance predicate on that superset.

Implementation notes (all-numpy; no per-cell Python loop):

* Cells are keyed by a single integer ``cx * M + cy`` with
  ``M = max(cy) + 2``. Coordinates are shifted non-negative first, so a
  probe at ``cy - 1`` or ``cy + 1`` encodes to a key no *real* cell can
  own (``M - 1`` and ``max(cy) + 1`` are outside the occupied cy range)
  -- the sentinel rows make the 9 fixed key offsets collision-free.
* Occupied cells are found once with argsort + ``np.unique``; each of
  the 9 neighbor offsets is then resolved for *all* nodes at once with
  one ``searchsorted`` probe, and member ranges are expanded with a
  cumulative-sum trick (:func:`expand_ranges`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Tuple

import numpy as np

#: Relative key offsets of the 3 x 3 cell neighborhood, as deltas on the
#: flattened ``cx * M + cy`` key (filled in per-grid since M varies).
_NEIGHBOR_OFFSETS = ((-1, -1), (-1, 0), (-1, 1),
                     (0, -1), (0, 0), (0, 1),
                     (1, -1), (1, 0), (1, 1))


def expand_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]`` without
    a Python loop. Every range must be non-empty (``ends > starts``)."""
    counts = ends - starts
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    boundaries = np.cumsum(counts[:-1])
    out[0] = starts[0]
    # At each range boundary, jump from the previous range's last index
    # (ends[i-1] - 1) to the next range's first (starts[i]).
    out[boundaries] = starts[1:] - ends[:-1] + 1
    return np.cumsum(out)


class SpatialGrid:
    """An immutable uniform grid over one snapshot of node positions."""

    __slots__ = ("cell_size", "n", "n_cells", "_keys", "_key_offsets",
                 "_order", "_uniq_keys", "_starts", "_ends", "_cand_cache",
                 "_uniq_list")

    def __init__(self, positions: np.ndarray, cell_size: float):
        pos = np.asarray(positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError("positions must be an (N, 2) array-like")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self.n = len(pos)
        cells = np.floor(pos / self.cell_size).astype(np.int64)
        if self.n:
            cells -= cells.min(axis=0)
            mult = int(cells[:, 1].max()) + 2
        else:
            mult = 2
        keys = cells[:, 0] * mult + cells[:, 1] if self.n else np.empty(0, np.int64)
        order = np.argsort(keys, kind="stable")
        uniq, starts = np.unique(keys[order], return_index=True)
        self._keys = keys
        self._key_offsets = tuple(dx * mult + dy for dx, dy in _NEIGHBOR_OFFSETS)
        self._order = order
        self._uniq_keys = uniq
        self._starts = starts
        self._ends = np.append(starts[1:], self.n)
        #: Number of occupied cells (telemetry: cells touched per rebuild).
        self.n_cells = len(uniq)
        #: Lazy Python-list copy of ``_uniq_keys`` for bisect probes
        #: (built on the first sparse query; dense rebuilds never pay).
        self._uniq_list = None
        #: cell key -> sorted candidate array. Every sender in a cell
        #: shares the exact same 3x3 candidate set, and sparse buckets
        #: query the same few cells repeatedly (one hello burst = many
        #: senders clustered around the same coordinates), so the
        #: 9-probe search amortizes to one per *cell* per snapshot.
        self._cand_cache: dict = {}

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All (sender, candidate) index pairs from the 3 x 3 neighborhoods.

        Self-pairs are included (the caller filters them with the rest of
        the distance predicate). For every pair actually within
        ``cell_size`` of each other, both orientations appear -- this is
        the superset the exact distance check then prunes.
        """
        n = self.n
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        uniq, starts, ends = self._uniq_keys, self._starts, self._ends
        keys, order = self._keys, self._order
        last = len(uniq) - 1
        senders = []
        candidates = []
        for offset in self._key_offsets:
            probe = keys + offset
            idx = np.searchsorted(uniq, probe)
            np.minimum(idx, last, out=idx)
            hit = np.flatnonzero(uniq[idx] == probe)
            if hit.size == 0:
                continue
            cell = idx[hit]
            cell_starts, cell_ends = starts[cell], ends[cell]
            senders.append(np.repeat(hit, cell_ends - cell_starts))
            candidates.append(order[expand_ranges(cell_starts, cell_ends)])
        return np.concatenate(senders), np.concatenate(candidates)

    def candidates_of(self, node: int) -> np.ndarray:
        """Candidate node ids for one sender (sorted, includes ``node``)."""
        if not 0 <= node < self.n:
            raise ValueError(f"unknown node id {node}")
        key = int(self._keys[node])
        cached = self._cand_cache.get(key)
        if cached is not None:
            return cached
        uniq = self._uniq_list
        if uniq is None:
            uniq = self._uniq_list = self._uniq_keys.tolist()
        starts, ends, order = self._starts, self._ends, self._order
        n_cells = len(uniq)
        chunks = []
        for offset in self._key_offsets:
            probe = key + offset
            # bisect on a plain list: ~10x cheaper than np.searchsorted
            # for a single probe (the sparse path queries one sender at
            # a time, so the vectorized form has nothing to amortize).
            i = bisect_left(uniq, probe)
            if i < n_cells and uniq[i] == probe:
                chunks.append(order[starts[i]:ends[i]])
        result = np.sort(np.concatenate(chunks))
        self._cand_cache[key] = result
        return result
