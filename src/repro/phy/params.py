"""IEEE 802.11b physical-layer timing constants and airtime arithmetic.

Section 2 of the paper derives its overhead numbers from exactly these
constants:

* PLCP preamble: 72 bits, always sent at 1 Mb/s  -> 72 us
* PLCP header:   48 bits, always sent at 2 Mb/s  -> 24 us
  (together 96 us of per-frame physical-layer overhead)
* an ACK frame (14 bytes) at 2 Mb/s -> 56 us of MAC payload airtime
* slot time 20 us, CCA 15 us, SIFS 10 us, DIFS = SIFS + 2*slot = 50 us

RMAC reuses the slot time and CCA (lambda = 15 us) but drops SIFS/DIFS/NAV;
the 802.11-family baselines (DCF, BMMM, BMW, LBP) use all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import US


@dataclass(frozen=True)
class PhyParams:
    """Physical-layer parameters (defaults follow IEEE 802.11b / the paper)."""

    #: Data-channel payload bit rate in bits/second (paper: 2 Mb/s).
    bitrate: int = 2_000_000
    #: Rate at which the PLCP preamble is sent (802.11b: always 1 Mb/s).
    preamble_rate: int = 1_000_000
    #: Rate at which the PLCP header is sent (802.11b long preamble: 2 Mb/s).
    plcp_header_rate: int = 2_000_000
    #: PLCP preamble length in bits.
    preamble_bits: int = 72
    #: PLCP header length in bits.
    plcp_header_bits: int = 48
    #: Backoff slot time in ns (802.11b: 20 us).
    slot_time: int = 20 * US
    #: Clear Channel Assessment / busy-tone detection time in ns (15 us).
    cca_time: int = 15 * US
    #: Short interframe space in ns (802.11b: 10 us).
    sifs: int = 10 * US
    #: Maximum one-way propagation delay tau in ns (paper: 1 us, <300 m).
    max_propagation_delay: int = 1 * US
    #: Radio range in meters (paper: 75 m).
    radio_range: float = 75.0
    #: Minimum contention window (802.11b: 31).
    cw_min: int = 31
    #: Maximum contention window (802.11b: 1023).
    cw_max: int = 1023

    @property
    def difs(self) -> int:
        """DIFS = SIFS + 2 * slot (802.11): 50 us with 802.11b numbers."""
        return self.sifs + 2 * self.slot_time

    @property
    def phy_overhead(self) -> int:
        """Preamble + PLCP header airtime in ns (96 us with 802.11b numbers)."""
        return self.preamble_airtime + self.plcp_header_airtime

    @property
    def preamble_airtime(self) -> int:
        return _bits_airtime(self.preamble_bits, self.preamble_rate)

    @property
    def plcp_header_airtime(self) -> int:
        return _bits_airtime(self.plcp_header_bits, self.plcp_header_rate)

    def payload_airtime(self, nbytes: int) -> int:
        """Airtime of ``nbytes`` of MAC-layer bytes at the data bit rate."""
        if nbytes < 0:
            raise ValueError(f"negative frame size {nbytes}")
        return _bits_airtime(8 * nbytes, self.bitrate)

    def frame_airtime(self, nbytes: int) -> int:
        """Total airtime of a MAC frame of ``nbytes`` bytes including the
        physical-layer preamble and header.

        E.g. a 14-byte ACK: 96 us + 56 us = 152 us (the paper's numbers).
        """
        return self.phy_overhead + self.payload_airtime(nbytes)


def _bits_airtime(bits: int, rate: int) -> int:
    """Exact airtime in ns of ``bits`` at ``rate`` b/s; must divide evenly."""
    numerator = bits * 1_000_000_000
    if numerator % rate:
        raise ValueError(f"{bits} bits at {rate} b/s is not an integral ns airtime")
    return numerator // rate


#: The default 802.11b parameter set used throughout the reproduction.
DEFAULT_PHY = PhyParams()
