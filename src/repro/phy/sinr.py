"""SINR interference subsystem: accumulated-power reception.

The paper evaluates RMAC in GloMoSim's fixed-range threshold world: a
frame is corrupted iff another sensed transmission overlaps it at the
receiver. That model cannot express the two effects busy tones exist to
fight -- *hidden interference* (a transmitter outside carrier-sense
range still injects energy) and *capture* (a strong frame surviving a
weak overlap). This module replaces the boolean overlap rule with a
power-domain one:

* an :class:`InterferenceTracker` accumulates the concurrent in-air
  power at every node (mW-domain sums over active transmission
  windows);
* an :class:`SinrReceptionModel` decides decode/corrupt at arrival end
  from the signal-to-interference-plus-noise ratio against a threshold;
* optional fast fading (:class:`RayleighFading` / :class:`RicianFading`)
  perturbs each arrival's power, deterministically in the run seed;
* :func:`wire_sinr` assembles the propagation model
  (:class:`~repro.phy.propagation.LogDistanceShadowing` by default),
  per-node heterogeneous radios (tx power / antenna-gain jitter) and
  the power-domain link-building spec consumed by
  :class:`~repro.phy.neighbors.NeighborService`.

Capture is a special case of SINR (one interferer, threshold = the
capture margin), so :class:`~repro.phy.channel.DataChannel` refuses a
configuration with both ``capture_threshold_db`` and SINR enabled.

Determinism: shadowing draws hang off ``derive_seed(seed, ...)`` per
node pair, radio jitter per node, and fading off a dedicated RNG stream
consumed in event order -- identical seeds give bit-identical runs, and
interrupted campaigns resume exactly (the whole config participates in
the result store's ``config_hash``).

With SINR *disabled* (``ScenarioConfig.sinr = None``, the default) every
hot path in the channel keeps a single ``is None`` test -- the same
zero-cost discipline as :mod:`repro.faults`.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Dict, Optional

import numpy as np

from repro.phy.params import PhyParams
from repro.phy.propagation import (
    LogDistanceModel,
    LogDistanceShadowing,
    PropagationModel,
    UnitDiskModel,
)
from repro.sim.rng import derive_seed


def dbm_to_mw(dbm: float) -> float:
    """dBm -> milliwatts (``-inf`` maps to 0.0)."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Milliwatts -> dBm (0.0 maps to ``-inf``)."""
    return 10.0 * math.log10(mw) if mw > 0.0 else -math.inf


#: Propagation choices for :attr:`SinrConfig.propagation`.
PROPAGATION_KINDS = ("shadowing", "logdistance", "unitdisk")

#: Fast-fading choices for :attr:`SinrConfig.fading`.
FADING_KINDS = ("rayleigh", "rician")


@dataclass(frozen=True)
class SinrConfig:
    """Declarative description of one run's SINR/interference setup.

    Part of :class:`~repro.world.network.ScenarioConfig` (and therefore
    of the result store's ``config_hash``): two configs differing in any
    field here are different experiment points, and ``None`` hashes
    identically to configs that predate the field.
    """

    #: Propagation substrate: "shadowing" (LogDistanceShadowing, the
    #: default), "logdistance" (deterministic path loss) or "unitdisk"
    #: (the paper's fixed range; every in-range signal counts as
    #: :data:`~repro.phy.propagation.IN_RANGE_POWER_DBM`, which makes
    #: SINR reception coincide with the overlap-collision rule).
    propagation: str = "shadowing"
    #: Decode threshold: a reception survives iff
    #: ``signal / (noise + peak interference) >= threshold``. ``None``
    #: disables the check (every non-collided arrival decodes).
    sinr_threshold_db: Optional[float] = 10.0
    #: Thermal-noise floor (dBm) added to the interference sum.
    noise_floor_dbm: float = -90.0
    #: When False the interference tracker is not consulted: the
    #: classic all-overlaps-collide rule applies and SINR reduces to a
    #: signal-vs-noise check. With a permissive threshold this is
    #: behaviorally identical to the threshold path (property-tested).
    interference: bool = True
    #: Concurrent signals weaker than this (dBm, at the receiver) are
    #: ignored -- they also bound the spatial grid's interference
    #: radius. ``None`` means the noise floor. Must not exceed the
    #: carrier-sense threshold.
    interference_cutoff_dbm: Optional[float] = None
    #: Lognormal shadowing sigma (dB; "shadowing" propagation only).
    shadowing_sigma_db: float = 6.0
    #: Fast fading applied per arrival: None, "rayleigh" or "rician".
    fading: Optional[str] = None
    #: Rician K factor (dB; ratio of line-of-sight to scattered power).
    rician_k_db: float = 6.0
    #: Base transmit power (dBm; threshold-model propagation only).
    tx_power_dbm: float = 15.0
    #: Heterogeneous radios: each node's tx power is jittered uniformly
    #: in ``+- tx_power_jitter_db`` (deterministic in the seed).
    tx_power_jitter_db: float = 0.0
    #: Base antenna gain (dB), applied on both ends of every link.
    antenna_gain_db: float = 0.0
    #: Per-node antenna-gain jitter (uniform ``+-``, deterministic).
    antenna_gain_jitter_db: float = 0.0
    #: Path-loss exponent for the threshold models.
    path_loss_exponent: float = 2.8
    #: Receive / carrier-sense power thresholds (dBm).
    rx_threshold_dbm: float = -65.0
    cs_threshold_dbm: float = -75.0

    #: Float fields coerced in ``__post_init__`` so configs built with
    #: ints hash identically to ones built with floats (the result
    #: store keys points by a hash of the whole scenario config).
    _FLOAT_FIELDS = ("noise_floor_dbm", "shadowing_sigma_db", "rician_k_db",
                     "tx_power_dbm", "tx_power_jitter_db", "antenna_gain_db",
                     "antenna_gain_jitter_db", "path_loss_exponent",
                     "rx_threshold_dbm", "cs_threshold_dbm")
    _OPT_FLOAT_FIELDS = ("sinr_threshold_db", "interference_cutoff_dbm")

    def __post_init__(self):
        if self.propagation not in PROPAGATION_KINDS:
            raise ValueError(
                f"propagation must be one of {PROPAGATION_KINDS}, "
                f"got {self.propagation!r}")
        if self.fading is not None and self.fading not in FADING_KINDS:
            raise ValueError(
                f"fading must be None or one of {FADING_KINDS}, "
                f"got {self.fading!r}")
        for name in self._FLOAT_FIELDS:
            value = getattr(self, name)
            if type(value) is not float:
                object.__setattr__(self, name, float(value))
        for name in self._OPT_FLOAT_FIELDS:
            value = getattr(self, name)
            if value is not None and type(value) is not float:
                object.__setattr__(self, name, float(value))
        if self.tx_power_jitter_db < 0 or self.antenna_gain_jitter_db < 0:
            raise ValueError("jitter ranges must be non-negative")
        cutoff = self.effective_cutoff_dbm()
        if self.propagation != "unitdisk" and cutoff > self.cs_threshold_dbm:
            raise ValueError(
                "interference_cutoff_dbm must not exceed cs_threshold_dbm "
                "(links would lose carrier sense before losing interference)")
        if self.propagation == "unitdisk" and (
                self.tx_power_jitter_db or self.antenna_gain_db
                or self.antenna_gain_jitter_db):
            raise ValueError(
                "heterogeneous radios (tx/antenna jitter) require a "
                "power-threshold propagation model, not unitdisk")

    def effective_cutoff_dbm(self) -> float:
        """The interference cutoff actually applied (noise floor default)."""
        cutoff = self.interference_cutoff_dbm
        return self.noise_floor_dbm if cutoff is None else cutoff

    # -- stable serialization (campaign manifests, CLI) -----------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SinrConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SinrConfig field(s) {sorted(unknown)}")
        return cls(**payload)


class RayleighFading:
    """Rayleigh fast fading: per-arrival power gain ~ Exponential(1)."""

    KIND = "rayleigh"

    def gain(self, rng: random.Random) -> float:
        return rng.expovariate(1.0)

    def __repr__(self) -> str:  # pragma: no cover
        return "RayleighFading()"


class RicianFading:
    """Rician fast fading with K factor (line-of-sight power ratio).

    ``gain = |h|^2`` with ``h = sqrt(K/(K+1)) + CN(0, 1/(K+1))``;
    ``E[gain] = 1``, so fading redistributes power without biasing it.
    """

    KIND = "rician"

    def __init__(self, k_db: float = 6.0):
        k = dbm_to_mw(k_db)  # dB -> linear ratio (same 10^(x/10) map)
        self._los = math.sqrt(k / (k + 1.0))
        self._sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        self.k_db = float(k_db)

    def gain(self, rng: random.Random) -> float:
        re = self._los + rng.gauss(0.0, self._sigma)
        im = rng.gauss(0.0, self._sigma)
        return re * re + im * im

    def __repr__(self) -> str:  # pragma: no cover
        return f"RicianFading(K={self.k_db}dB)"


class InterferenceTracker:
    """Accumulated concurrent in-air power per node (mW domain).

    The data channel adds every arriving signal (decodable or
    interference-only) at arrival start and removes it at arrival end;
    ``high_water`` records the most signals ever concurrently in the air
    at one node (telemetry).
    """

    __slots__ = ("_signals", "_totals", "high_water")

    def __init__(self):
        #: node -> {transmission: power_mw} of signals currently in the air.
        self._signals: Dict[int, Dict[object, float]] = {}
        #: node -> running mW sum (kept incrementally; rebuilt from the
        #: signal map on removal underflow of floating-point drift).
        self._totals: Dict[int, float] = {}
        self.high_water = 0

    def add(self, node: int, tx: object, power_mw: float) -> float:
        """Register a signal; returns the node's new total (mW)."""
        signals = self._signals.get(node)
        if signals is None:
            signals = self._signals[node] = {}
        signals[tx] = power_mw
        count = len(signals)
        if count > self.high_water:
            self.high_water = count
        total = self._totals.get(node, 0.0) + power_mw
        self._totals[node] = total
        return total

    def remove(self, node: int, tx: object) -> None:
        """Unregister a signal at its arrival end."""
        signals = self._signals.get(node)
        if signals is None:
            return
        power = signals.pop(tx, None)
        if power is None:
            return
        if signals:
            # Re-summing instead of subtracting keeps the running total
            # exactly equal to the sum of live signals (no accumulated
            # float drift over millions of add/remove cycles).
            self._totals[node] = math.fsum(signals.values())
        else:
            del self._signals[node]
            self._totals.pop(node, None)

    def total_mw(self, node: int) -> float:
        """Total in-air power at ``node`` right now (mW)."""
        return self._totals.get(node, 0.0)

    def concurrent(self, node: int) -> int:
        """Number of signals currently in the air at ``node``."""
        signals = self._signals.get(node)
        return len(signals) if signals else 0


class SinrReceptionModel:
    """Decode/corrupt decision from SINR against a threshold.

    ``sinr_db = signal / (noise + interference)`` in dB; a reception
    decodes iff it meets ``threshold_db`` (``None`` = always). Soft
    errors: frames that clear the SINR threshold still pass through the
    channel's :class:`~repro.phy.error.BitErrorModel`, so a BER model
    layers residual bit errors on top of interference losses.
    """

    __slots__ = ("threshold_db", "noise_floor_dbm", "noise_mw")

    def __init__(self, threshold_db: Optional[float], noise_floor_dbm: float):
        self.threshold_db = threshold_db
        self.noise_floor_dbm = float(noise_floor_dbm)
        self.noise_mw = dbm_to_mw(noise_floor_dbm)

    def sinr_db(self, signal_mw: float, interference_mw: float) -> float:
        denom = self.noise_mw + interference_mw
        if signal_mw <= 0.0:
            return -math.inf
        return 10.0 * math.log10(signal_mw / denom)

    def decodes(self, sinr_db: float) -> bool:
        threshold = self.threshold_db
        return threshold is None or sinr_db >= threshold


class SinrCounters:
    """Per-run interference statistics (telemetry section ``sinr``)."""

    __slots__ = ("dropped", "delivered", "sum_sinr_db", "min_sinr_db")

    def __init__(self):
        #: Receptions corrupted by the SINR decision alone (would have
        #: decoded under the threshold model).
        self.dropped = 0
        #: Receptions delivered with a finite SINR measurement.
        self.delivered = 0
        self.sum_sinr_db = 0.0
        self.min_sinr_db: Optional[float] = None

    def record_delivery(self, sinr_db: float) -> None:
        self.delivered += 1
        self.sum_sinr_db += sinr_db
        if self.min_sinr_db is None or sinr_db < self.min_sinr_db:
            self.min_sinr_db = sinr_db


class SinrState:
    """Everything the :class:`~repro.phy.channel.DataChannel` needs for
    SINR reception: the decision model, the interference tracker, the
    optional fading sampler and its RNG stream, and the counters."""

    __slots__ = ("reception", "tracker", "fading", "rng", "interference",
                 "counters")

    def __init__(
        self,
        reception: SinrReceptionModel,
        interference: bool = True,
        fading=None,
        rng: Optional[random.Random] = None,
    ):
        self.reception = reception
        self.tracker = InterferenceTracker()
        self.interference = interference
        self.fading = fading
        self.rng = rng if rng is not None else random.Random(0)
        self.counters = SinrCounters()

    def stats(self) -> dict:
        """JSON-serializable per-run stats (RunSummary / telemetry)."""
        counters = self.counters
        delivered = counters.delivered
        return {
            "sinr_dropped": counters.dropped,
            "delivered": delivered,
            "mean_sinr_db": (counters.sum_sinr_db / delivered
                             if delivered else None),
            "min_sinr_db": counters.min_sinr_db,
            "concurrent_high_water": self.tracker.high_water,
        }


@dataclass
class SinrWiring:
    """The assembled pieces :class:`~repro.world.testbed.MacTestbed`
    plugs into the PHY stack."""

    config: SinrConfig
    model: PropagationModel
    #: Power-domain link-building spec (None for unitdisk propagation,
    #: which keeps the classic distance-threshold link path).
    power_spec: Optional[object]
    #: Busy-tone detection threshold in the power domain (None for
    #: unitdisk propagation: tones fall back to sensed links).
    tone_threshold_dbm: Optional[float]

    def build_state(self, rng: Optional[random.Random] = None) -> SinrState:
        """A fresh per-run channel state (tracker/counters start empty)."""
        config = self.config
        fading = None
        if config.fading == "rayleigh":
            fading = RayleighFading()
        elif config.fading == "rician":
            fading = RicianFading(config.rician_k_db)
        return SinrState(
            SinrReceptionModel(config.sinr_threshold_db,
                               config.noise_floor_dbm),
            interference=config.interference,
            fading=fading,
            rng=rng,
        )


def node_radio_offsets(config: SinrConfig, n_nodes: int, seed: int):
    """Per-node heterogeneous radio gains, deterministic in ``seed``.

    Returns ``(tx_offset_dbm, rx_gain_dbm)`` float arrays -- or
    ``(None, None)`` when every node is identical (the homogeneous path
    stays free of per-link add passes).

    A node's transmit-side offset is its tx-power jitter plus its
    antenna gain; its receive-side gain is the antenna gain again
    (antennas are reciprocal). Each node's draws come from
    ``derive_seed(seed, "sinr-radio", i)``.
    """
    if not (config.tx_power_jitter_db or config.antenna_gain_db
            or config.antenna_gain_jitter_db):
        return None, None
    tx = np.empty(n_nodes, dtype=float)
    rx = np.empty(n_nodes, dtype=float)
    for i in range(n_nodes):
        rng = random.Random(derive_seed(seed, "sinr-radio", i))
        jitter = (rng.uniform(-config.tx_power_jitter_db,
                              config.tx_power_jitter_db)
                  if config.tx_power_jitter_db else 0.0)
        gain = config.antenna_gain_db
        if config.antenna_gain_jitter_db:
            gain += rng.uniform(-config.antenna_gain_jitter_db,
                                config.antenna_gain_jitter_db)
        tx[i] = jitter + gain
        rx[i] = gain
    return tx, rx


def wire_sinr(config: SinrConfig, phy: PhyParams, n_nodes: int,
              seed: int) -> SinrWiring:
    """Assemble the propagation model + link spec for one scenario run."""
    from repro.phy.neighbors import LinkPowerSpec

    if config.propagation == "unitdisk":
        # The paper's geometry, SINR reception on top: links keep the
        # classic distance-threshold path (constant in-range power).
        model: PropagationModel = UnitDiskModel(phy.radio_range)
        return SinrWiring(config, model, None, None)

    kwargs = dict(
        tx_power_dbm=config.tx_power_dbm,
        path_loss_exponent=config.path_loss_exponent,
        rx_threshold_dbm=config.rx_threshold_dbm,
        cs_threshold_dbm=config.cs_threshold_dbm,
    )
    if config.propagation == "shadowing":
        model = LogDistanceShadowing(
            shadowing_sigma_db=config.shadowing_sigma_db,
            seed=derive_seed(seed, "sinr-shadow"),
            **kwargs,
        )
        shadow_headroom = model.max_shadow_db()
    else:
        model = LogDistanceModel(**kwargs)
        shadow_headroom = 0.0

    tx_offset, rx_gain = node_radio_offsets(config, n_nodes, seed)
    headroom = shadow_headroom
    if tx_offset is not None:
        headroom += max(float(tx_offset.max()), 0.0)
        headroom += max(float(rx_gain.max()), 0.0)
    cutoff = config.effective_cutoff_dbm()
    prune_range = model.range_for_threshold(cutoff - headroom)
    spec = LinkPowerSpec(
        rx_threshold_dbm=config.rx_threshold_dbm,
        cs_threshold_dbm=config.cs_threshold_dbm,
        keep_threshold_dbm=cutoff,
        prune_range=prune_range,
        tx_offset_dbm=tx_offset,
        rx_gain_dbm=rx_gain,
    )
    return SinrWiring(config, model, spec, config.cs_threshold_dbm)
