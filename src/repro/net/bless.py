"""The simplified BLESS tree protocol (Section 4.1.1).

"In this simple protocol, the node with ID=0 is always designated as the
root node; and the tree is formed by only one operation -- a periodical
one-hop broadcast of the routing messages. This broadcast is performed by
the unreliable services of RMAC or BMMM accordingly."

Mechanics chosen here (the paper gives only the sentence above; all
values are configurable and swept by the ablation bench):

* every node broadcasts ``RoutingMessage(origin, hops, parent)`` each
  ``period`` (default 1 s), with a random initial phase to avoid
  network-wide synchronization;
* a node's parent is its neighbor with the smallest advertised
  hops-to-root (ties broken by node id); its own hops = parent's + 1;
* neighbor entries expire after ``expiry`` (default 3 periods), so nodes
  that move away are dropped and the tree reconfigures -- the paper's
  explanation for the mobility-induced delivery drop;
* a node's *children* are the neighbors whose latest non-expired message
  named it as parent. The multicast application forwards to exactly this
  set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mac.addresses import BROADCAST
from repro.mac.base import MacProtocol
from repro.net.packet import RoutingMessage
from repro.sim.engine import Simulator
from repro.sim.units import SEC

#: hops value advertised while not joined to the tree.
UNJOINED = 255


@dataclass(frozen=True)
class BlessConfig:
    """Tunables of the simplified BLESS protocol."""

    period: int = 1 * SEC
    #: Entries unheard for this long are dropped (must exceed period).
    expiry: int = 3 * SEC
    root: int = 0
    #: Per-broadcast jitter as a fraction of the period. Without it a
    #: hello stream phase-locks against the source's constant-bit-rate
    #: data traffic and the *same* hello collides every period, which
    #: expires live neighbors in bursts.
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.expiry < self.period:
            raise ValueError("expiry must be at least one period")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


class _NeighborEntry:
    __slots__ = ("hops", "parent", "heard_at")

    def __init__(self, hops: int, parent: int, heard_at: int):
        self.hops = hops
        self.parent = parent
        self.heard_at = heard_at


class BlessProtocol:
    """One node's tree-maintenance state."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        mac: MacProtocol,
        config: BlessConfig,
        rng: random.Random,
    ):
        self.node_id = node_id
        self.sim = sim
        self.mac = mac
        self.config = config
        self._rng = rng
        self._table: Dict[int, _NeighborEntry] = {}
        #: Lower bound on the oldest ``heard_at`` in the table; lets
        #: :meth:`_expire` skip the full scan (the common case: every
        #: routing message triggers a reselect, but entries only age out
        #: on the heartbeat timescale). Maintained lazily -- it may lag
        #: below the true minimum, never above it.
        self._oldest_heard: int = 0
        #: Set when expiry removed entries: the cached minimum (the
        #: current parent) may be gone, so the next routing message
        #: falls back to a full :meth:`_reselect` scan.
        self._stale_best: bool = False
        self.parent: int = -1
        self.hops: int = 0 if node_id == config.root else UNJOINED
        #: (time, parent) history, for tree-churn analysis.
        self.parent_changes: List[Tuple[int, int]] = []

    @property
    def is_root(self) -> bool:
        return self.node_id == self.config.root

    @property
    def joined(self) -> bool:
        return self.is_root or self.hops < UNJOINED

    def start(self) -> None:
        """Begin the periodic broadcast with a random phase."""
        phase = self._rng.randrange(self.config.period)
        self.sim.after(phase, self._broadcast, label="bless-tx")

    # ------------------------------------------------------------------
    def _broadcast(self) -> None:
        message = RoutingMessage(self.node_id, self.hops, self.parent)
        self.mac.send_unreliable(BROADCAST, message, message.payload_bytes)
        gap = self.config.period
        if self.config.jitter:
            spread = int(gap * self.config.jitter)
            gap += self._rng.randint(-spread, spread)
        self.sim.after(gap, self._broadcast, label="bless-tx")

    def on_routing_message(self, message: RoutingMessage, sender: int) -> None:
        """Handle a neighbor's broadcast (called from the network layer).

        Parent selection is incremental: the current parent is by
        construction the table's minimum ``(hops, id)`` key, so a single
        updated entry only needs comparing against it. A full rescan
        (:meth:`_reselect`) happens only when the update can *worsen*
        the minimum -- the parent's own advertisement degraded, or
        expiry removed entries -- instead of on every heartbeat from
        every neighbor.
        """
        origin = message.origin
        hops = message.hops_to_root
        entry = self._table.get(origin)
        if entry is None:
            self._table[origin] = _NeighborEntry(
                hops, message.parent, self.sim.now)
        else:  # steady state: refresh in place, no allocation
            entry.hops = hops
            entry.parent = message.parent
            entry.heard_at = self.sim.now
        if self.is_root:
            return
        self._expire()
        if self._stale_best:
            self._stale_best = False
            self._reselect()
            return
        parent = self.parent
        if parent == -1:
            if hops < UNJOINED:
                self._adopt(origin, hops)
        elif origin == parent:
            if hops + 1 > self.hops:
                self._reselect()  # our parent got worse: rescan
            else:
                self.hops = hops + 1  # improved/unchanged, still minimal
        elif hops < UNJOINED:
            best_hops = self.hops - 1
            if hops < best_hops or (hops == best_hops and origin < parent):
                self._adopt(origin, hops)

    def _adopt(self, neighbor: int, hops: int) -> None:
        self.parent_changes.append((self.sim.now, neighbor))
        self.parent = neighbor
        self.hops = hops + 1

    # ------------------------------------------------------------------
    def _expire(self) -> None:
        cutoff = self.sim.now - self.config.expiry
        if self._oldest_heard >= cutoff:
            return  # nothing can be stale yet
        table = self._table
        stale = [n for n, e in table.items() if e.heard_at < cutoff]
        if stale:
            self._stale_best = True
            for n in stale:
                del table[n]
        # Tighten the bound to the surviving minimum so the next calls
        # short-circuit until that entry actually ages out.
        self._oldest_heard = (
            min(e.heard_at for e in table.values()) if table else self.sim.now
        )

    def _reselect(self) -> None:
        """Re-derive parent and hops from the live neighbor table."""
        if self.is_root:
            return
        self._expire()
        best: Optional[int] = None
        best_hops = UNJOINED
        for neighbor, entry in self._table.items():
            hops = entry.hops
            if hops >= UNJOINED:
                continue
            if hops < best_hops or (hops == best_hops and neighbor < best):
                best_hops = hops
                best = neighbor
        if best is None:
            new_parent, new_hops = -1, UNJOINED
        else:
            new_parent, new_hops = best, best_hops + 1
        if new_parent != self.parent:
            self.parent_changes.append((self.sim.now, new_parent))
        self.parent = new_parent
        self.hops = new_hops
        self._stale_best = False

    def children(self) -> Tuple[int, ...]:
        """Neighbors currently claiming this node as their parent."""
        self._expire()
        return tuple(
            sorted(n for n, e in self._table.items() if e.parent == self.node_id)
        )
