"""The tree multicast application (Section 4.1.1).

The source (the BLESS root) emits fixed-size packets at a constant rate;
every node that receives a packet for the first time records the
reception (feeding R_deliv and the end-to-end delay of Figs. 7/9) and
forwards it to its *current* BLESS children with the MAC's reliable
multicast service. Duplicates -- possible when the tree reconfigures or a
MAC-level retransmission races an ABT loss -- are suppressed by packet id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set, TYPE_CHECKING

from repro.mac.base import MacProtocol, SendOutcome
from repro.net.bless import BlessProtocol
from repro.net.packet import MulticastPacket
from repro.sim.engine import Simulator
from repro.sim.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collectors import MetricsCollector


@dataclass(frozen=True)
class MulticastConfig:
    """Source traffic parameters."""

    rate_pps: float            # packets per second at the source
    n_packets: int             # total packets the source emits
    payload_bytes: int = 500   # the paper's packet length
    start_time: int = 5 * SEC  # warm-up before traffic (BLESS convergence)

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("rate must be positive")
        if self.n_packets < 0:
            raise ValueError("n_packets must be >= 0")
        if self.payload_bytes < 0:
            raise ValueError("payload must be >= 0")

    @property
    def interval(self) -> int:
        """Inter-packet gap in ns (constant bit rate)."""
        return round(SEC / self.rate_pps)

    @property
    def traffic_end(self) -> int:
        """When the last packet leaves the source."""
        return self.start_time + max(0, self.n_packets - 1) * self.interval


class MulticastApp:
    """Per-node multicast forwarding; the root additionally generates."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        mac: MacProtocol,
        bless: BlessProtocol,
        config: MulticastConfig,
        metrics: Optional["MetricsCollector"] = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.mac = mac
        self.bless = bless
        self.config = config
        self.metrics = metrics
        self._seen: Set[int] = set()
        self._emitted = 0
        #: Packets that arrived but had no children to forward to.
        self.leaf_receptions = 0

    @property
    def is_source(self) -> bool:
        return self.node_id == self.bless.config.root

    def start(self) -> None:
        if self.is_source and self.config.n_packets > 0:
            self.sim.at(self.config.start_time, self._emit, label="app-emit")

    # ------------------------------------------------------------------
    def _emit(self) -> None:
        packet = MulticastPacket(
            pkt_id=self._emitted,
            origin=self.node_id,
            created_at=self.sim.now,
            payload_bytes=self.config.payload_bytes,
        )
        self._emitted += 1
        self._seen.add(packet.pkt_id)
        if self.metrics is not None:
            self.metrics.record_generated(packet.pkt_id, self.sim.now)
        self._forward(packet)
        if self._emitted < self.config.n_packets:
            self.sim.after(self.config.interval, self._emit, label="app-emit")

    def on_packet(self, packet: MulticastPacket, from_node: int) -> None:
        """A multicast packet arrived from the MAC."""
        if packet.pkt_id in self._seen:
            return
        self._seen.add(packet.pkt_id)
        if self.metrics is not None:
            self.metrics.record_delivery(
                self.node_id, packet.pkt_id, self.sim.now - packet.created_at
            )
        self._forward(packet)

    def _forward(self, packet: MulticastPacket) -> None:
        children = self.bless.children()
        if not children:
            self.leaf_receptions += 1
            return
        self.mac.send_reliable(children, packet, packet.payload_bytes)
