"""Per-node network layer: dispatches MAC deliveries to BLESS / multicast."""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.mac.base import MacProtocol
from repro.net.bless import BlessConfig, BlessProtocol
from repro.net.multicast import MulticastApp, MulticastConfig
from repro.net.packet import MulticastPacket, RoutingMessage
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collectors import MetricsCollector


class NetworkLayer:
    """Glues one node's BLESS instance and multicast app to its MAC."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        mac: MacProtocol,
        bless_config: BlessConfig,
        multicast_config: MulticastConfig,
        rng: random.Random,
        metrics: Optional["MetricsCollector"] = None,
    ):
        self.node_id = node_id
        self.mac = mac
        self.bless = BlessProtocol(node_id, sim, mac, bless_config, rng)
        self.app = MulticastApp(node_id, sim, mac, self.bless, multicast_config, metrics)
        mac.upper_rx = self.on_receive

    def start(self) -> None:
        self.bless.start()
        self.app.start()

    def on_receive(self, payload: object, src: int) -> None:
        tp = type(payload)
        if tp is RoutingMessage or isinstance(payload, RoutingMessage):
            self.bless.on_routing_message(payload, src)
        elif tp is MulticastPacket or isinstance(payload, MulticastPacket):
            self.app.on_packet(payload, src)
        # Unknown payloads (raw test traffic) are dropped silently.
