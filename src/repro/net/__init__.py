"""Network layer: the simplified BLESS tree protocol and tree multicast.

The paper's workload (Section 4.1.1): a single-source multicast
application forwards packets from node 0 along a tree to all nodes; the
tree is maintained by a simplified BLESS protocol whose only operation is
a periodic one-hop broadcast of routing messages (sent with the MAC's
unreliable service). Per-hop forwarding uses the MAC's reliable multicast
to the node's current children.

* :mod:`repro.net.packet`    -- routing message and multicast packet types.
* :mod:`repro.net.bless`     -- the simplified BLESS protocol.
* :mod:`repro.net.tree`      -- tree snapshots and the Fig. 6 statistics.
* :mod:`repro.net.multicast` -- source application + per-hop forwarding.
* :mod:`repro.net.stack`     -- the per-node network layer gluing them.
"""

from repro.net.bless import BlessConfig, BlessProtocol
from repro.net.convergence import ChurnReport, analyze_churn
from repro.net.multicast import MulticastApp, MulticastConfig
from repro.net.packet import MulticastPacket, RoutingMessage
from repro.net.stack import NetworkLayer
from repro.net.tree import TreeSnapshot, bfs_tree, tree_statistics

__all__ = [
    "BlessConfig",
    "BlessProtocol",
    "ChurnReport",
    "analyze_churn",
    "MulticastApp",
    "MulticastConfig",
    "MulticastPacket",
    "RoutingMessage",
    "NetworkLayer",
    "TreeSnapshot",
    "bfs_tree",
    "tree_statistics",
]
