"""Network-layer packet types.

These ride as the ``payload`` object of MAC data frames;
``payload_bytes`` (the on-air size) is declared per type.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RoutingMessage:
    """The simplified-BLESS one-hop routing broadcast.

    Wire size: origin (6) + hops (1) + parent (6) = 13 bytes of payload;
    the MAC adds its data-frame header.
    """

    origin: int
    hops_to_root: int          # 255 = not joined to the tree
    parent: int                # -1 = none / root

    WIRE_BYTES = 13

    @property
    def payload_bytes(self) -> int:
        return self.WIRE_BYTES

    @property
    def joined(self) -> bool:
        return self.hops_to_root < 255


@dataclass(frozen=True)
class MulticastPacket:
    """One application packet multicast from the source along the tree."""

    pkt_id: int
    origin: int
    created_at: int            # ns, at the source
    payload_bytes: int = 500   # the paper's packet length
