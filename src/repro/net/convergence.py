"""Tree convergence and churn analytics.

The paper attributes the mobile delivery drop to "nodes moving out of
range of the previous parents" and defers the fix to upper layers. These
helpers quantify that mechanism in a finished run: how long nodes took to
join, how often parents changed, and how much of the run each node spent
detached -- the direct driver of the Fig. 7(b,c) delivery gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.bless import BlessProtocol
from repro.sim.units import SEC


@dataclass(frozen=True)
class ChurnReport:
    """Aggregated tree-churn statistics for one run."""

    n_nodes: int
    #: time (ns) each non-root node first acquired a parent; None = never.
    join_times: Tuple[Optional[int], ...]
    #: total parent changes per non-root node (excluding the first join).
    parent_changes: Tuple[int, ...]
    #: fraction of [0, horizon] each non-root node spent without a parent.
    detached_fraction: Tuple[float, ...]

    @property
    def all_joined(self) -> bool:
        return all(t is not None for t in self.join_times)

    def max_join_time(self) -> Optional[int]:
        times = [t for t in self.join_times if t is not None]
        return max(times) if times else None

    def mean_parent_changes(self) -> float:
        if not self.parent_changes:
            return 0.0
        return sum(self.parent_changes) / len(self.parent_changes)

    def mean_detached_fraction(self) -> float:
        if not self.detached_fraction:
            return 0.0
        return sum(self.detached_fraction) / len(self.detached_fraction)

    def churn_rate_per_node_minute(self, horizon: int) -> float:
        """Parent changes per node per simulated minute."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        minutes = horizon / (60 * SEC)
        if not self.parent_changes or minutes == 0:
            return 0.0
        return self.mean_parent_changes() / minutes


def analyze_churn(blesses: Sequence[BlessProtocol], horizon: int) -> ChurnReport:
    """Build a :class:`ChurnReport` from the per-node BLESS histories.

    ``horizon`` is the end of the observation window (ns), typically the
    simulation end time.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    join_times: List[Optional[int]] = []
    changes: List[int] = []
    detached: List[float] = []
    for bless in blesses:
        if bless.is_root:
            continue
        history = bless.parent_changes
        joins = [(t, p) for t, p in history if p >= 0]
        join_times.append(joins[0][0] if joins else None)
        changes.append(max(0, len(history) - 1))
        # Integrate detached time: start detached; each (t, parent) entry
        # toggles between attached (parent >= 0) and detached (-1).
        detached_ns = 0
        cursor = 0
        attached = False
        for t, parent in history:
            t = min(t, horizon)
            if not attached:
                detached_ns += t - cursor
            cursor = t
            attached = parent >= 0
        if not attached:
            detached_ns += max(0, horizon - cursor)
        detached.append(min(1.0, detached_ns / horizon))
    return ChurnReport(
        n_nodes=len(blesses),
        join_times=tuple(join_times),
        parent_changes=tuple(changes),
        detached_fraction=tuple(detached),
    )
