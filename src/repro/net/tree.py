"""Tree snapshots and the Fig. 6 / Section 4.1.1 statistics.

The paper reports, over its random 75-node topologies: average and
99-percentile hops-to-root of 3.87 and 10, and average and 99-percentile
children per non-leaf node of 3.54 and 9. :func:`bfs_tree` builds the
shortest-hop tree the simplified BLESS protocol converges to on a static
topology, and :func:`tree_statistics` computes those four numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TreeSnapshot:
    """A rooted tree over node ids 0..n-1. ``parents[root] == -1``;
    unreachable nodes also carry -1 with ``hops`` of None."""

    root: int
    parents: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.root < len(self.parents):
            raise ValueError("root outside node range")
        if self.parents[self.root] != -1:
            raise ValueError("root must have parent -1")

    @property
    def n_nodes(self) -> int:
        return len(self.parents)

    def children_map(self) -> Dict[int, List[int]]:
        children: Dict[int, List[int]] = {i: [] for i in range(self.n_nodes)}
        for node, parent in enumerate(self.parents):
            if parent >= 0:
                children[parent].append(node)
        return children

    def hops(self) -> List[Optional[int]]:
        """Hops to root per node (None if detached or on a cycle)."""
        out: List[Optional[int]] = [None] * self.n_nodes
        out[self.root] = 0
        for node in range(self.n_nodes):
            if out[node] is not None:
                continue
            path = []
            cursor: int = node
            seen = set()
            while cursor >= 0 and out[cursor] is None and cursor not in seen:
                seen.add(cursor)
                path.append(cursor)
                cursor = self.parents[cursor]
            base = out[cursor] if cursor >= 0 and out[cursor] is not None else None
            for i, member in enumerate(reversed(path), start=1):
                out[member] = base + i if base is not None else None
        return out

    def reachable(self) -> List[int]:
        """Nodes connected to the root through parent links."""
        return [n for n, h in enumerate(self.hops()) if h is not None]


def bfs_tree(coords: Sequence[Sequence[float]], radio_range: float, root: int = 0) -> TreeSnapshot:
    """The shortest-hop (BFS) tree over the unit-disk graph.

    This is the fixed point of the simplified BLESS selection rule
    (min-hops parent, ties to the smallest id) on a static topology.
    """
    arr = np.asarray(coords, dtype=float)
    n = len(arr)
    deltas = arr[:, None, :] - arr[None, :, :]
    dists = np.hypot(deltas[..., 0], deltas[..., 1])
    parents = [-1] * n
    hops = [None] * n
    hops[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        node = queue.popleft()
        neighbors = sorted(np.flatnonzero(dists[node] <= radio_range))
        for neighbor in neighbors:
            if neighbor != node and hops[neighbor] is None:
                hops[neighbor] = hops[node] + 1
                parents[neighbor] = node
                queue.append(neighbor)
    return TreeSnapshot(root=root, parents=tuple(parents))


def tree_statistics(tree: TreeSnapshot) -> Dict[str, float]:
    """The four Section 4.1.1 numbers for one tree."""
    hop_values = [h for h in tree.hops() if h is not None and h > 0]
    children = tree.children_map()
    child_counts = [len(c) for c in children.values() if c]
    return {
        "avg_hops": float(np.mean(hop_values)) if hop_values else 0.0,
        "p99_hops": float(np.percentile(hop_values, 99)) if hop_values else 0.0,
        "avg_children": float(np.mean(child_counts)) if child_counts else 0.0,
        "p99_children": float(np.percentile(child_counts, 99)) if child_counts else 0.0,
        "reachable": float(len(tree.reachable())),
    }
