"""Restartable one-shot timers.

RMAC's procedure description is written in terms of named timers
(``Twf_rbt``, ``Twf_rdata``, ``Ttx_abt``, ``Twf_abt``); this class gives
each of them a start/cancel/expired lifecycle on top of the raw event
queue, so the protocol code reads like the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class Timer:
    """A named, restartable one-shot timer.

    ``start(delay)`` (re)arms the timer; starting a running timer cancels
    the previous arming first, matching the paper's "sets up the timer"
    wording. The callback receives no arguments.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None], name: str = "timer"):
        self._sim = sim
        self._callback = callback
        self._name = name
        self._handle: Optional[EventHandle] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def running(self) -> bool:
        """True while armed and not yet fired/cancelled."""
        return self._handle is not None and self._handle.pending

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time, or None if not running."""
        if self.running:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: int) -> None:
        """Arm the timer to fire ``delay`` ns from now (restarts if running)."""
        self.cancel()
        self._handle = self._sim.after(delay, self._fire, label=self._name)

    def start_at(self, time: int) -> None:
        """Arm the timer to fire at absolute time ``time`` (restarts if running)."""
        self.cancel()
        self._handle = self._sim.at(time, self._fire, label=self._name)

    def cancel(self) -> None:
        """Disarm the timer if running; otherwise a no-op."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"expires@{self.expires_at}" if self.running else "idle"
        return f"<Timer {self._name} {state}>"
