"""Deterministic discrete-event simulation engine.

This subpackage replaces GloMoSim (the simulator the paper used) with a
small, reproducible discrete-event core:

* :mod:`repro.sim.units`  -- the integer-nanosecond clock and unit helpers.
* :mod:`repro.sim.engine` -- the event queue, scheduling and cancellation.
* :mod:`repro.sim.timers` -- restartable timers built on the engine.
* :mod:`repro.sim.rng`    -- named, independently seeded random streams.
* :mod:`repro.sim.trace`  -- structured event traces (used by tests and
  the Fig. 4 timeline example), with list/ring/JSONL storage backends.
* :mod:`repro.sim.telemetry` -- event-loop throughput and profiling
  samples (events/sec, heap depth, per-label counts, subsystem wall time).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.telemetry import Telemetry, TelemetryReport
from repro.sim.timers import Timer
from repro.sim.trace import (
    JsonlTraceSink,
    ListBuffer,
    RingBuffer,
    TraceBuffer,
    TraceEvent,
    Tracer,
)
from repro.sim.units import MS, NS, SEC, US, format_time, ns_to_s, s_to_ns, us

__all__ = [
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "Telemetry",
    "TelemetryReport",
    "Timer",
    "TraceBuffer",
    "ListBuffer",
    "RingBuffer",
    "JsonlTraceSink",
    "TraceEvent",
    "Tracer",
    "NS",
    "US",
    "MS",
    "SEC",
    "us",
    "ns_to_s",
    "s_to_ns",
    "format_time",
]
