"""Time units for the simulation clock.

The simulator runs on an **integer nanosecond** clock. Every duration used
by the protocols in this repository (slot time 20 us, CCA 15 us, one bit at
1 or 2 Mb/s, ...) is an exact integer number of nanoseconds, so all timing
arithmetic is exact and runs are bit-for-bit reproducible from a seed.
Floating-point time (as used by e.g. SimPy) would make equality of event
times -- which RMAC's ABT window attribution relies on -- fragile.
"""

from __future__ import annotations

#: One nanosecond (the base tick).
NS: int = 1
#: One microsecond in nanoseconds.
US: int = 1_000
#: One millisecond in nanoseconds.
MS: int = 1_000_000
#: One second in nanoseconds.
SEC: int = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds.

    Raises :class:`ValueError` if the value is not an exact number of
    nanoseconds (protocol constants must be exact).
    """
    scaled = value * US
    result = round(scaled)
    if abs(scaled - result) > 1e-6:
        raise ValueError(f"{value} us is not an integral number of ns")
    return result


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return us(value * 1_000)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return us(value * 1_000_000)


def ns_to_s(t: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return t / SEC


def ns_to_us(t: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return t / US


def s_to_ns(t: float) -> int:
    """Convert float seconds to integer nanoseconds (rounds to nearest ns)."""
    return round(t * SEC)


def format_time(t: int) -> str:
    """Human-readable rendering of a simulation time, e.g. ``1.204303s``.

    Picks the largest unit that keeps the number readable; used in traces
    and error messages.
    """
    if t == 0:
        return "0"
    if t % SEC == 0:
        return f"{t // SEC}s"
    if abs(t) >= SEC:
        return f"{t / SEC:.6f}s"
    if abs(t) >= MS:
        return f"{t / MS:.3f}ms"
    if abs(t) >= US:
        return f"{t / US:.3f}us"
    return f"{t}ns"
