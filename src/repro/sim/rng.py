"""Named deterministic random streams.

A simulation run draws randomness for several independent purposes --
node placement, mobility waypoints, traffic jitter, per-node MAC backoff.
Giving each purpose (and each node) its own stream, derived from one
master seed, means changing e.g. the traffic model does not perturb the
backoff draws of an otherwise identical run. This mirrors how serious
network simulators (ns-3, GloMoSim/Parsec) manage substreams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from a master seed and a name path.

    Uses SHA-256 over a canonical encoding, so the mapping is stable across
    Python versions and platforms (unlike ``hash()``).
    """
    key = repr((int(master_seed),) + tuple(str(n) for n in names)).encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory for named :class:`random.Random` streams under one master seed.

    Streams are memoized: asking twice for the same name path returns the
    same generator object (so state advances coherently).
    """

    def __init__(self, master_seed: int):
        self._master_seed = int(master_seed)
        self._streams: Dict[tuple, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, *names: object) -> random.Random:
        """Return the memoized stream for the given name path."""
        key = tuple(str(n) for n in names)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, *key))
            self._streams[key] = rng
        return rng

    def spawn(self, *names: object) -> "RngRegistry":
        """Create a child registry whose master seed is derived from a name path.

        Used to give each experiment replication an independent seed space.
        """
        return RngRegistry(derive_seed(self._master_seed, "spawn", *names))
