"""The discrete-event simulator core.

A :class:`Simulator` owns an integer-nanosecond clock and a binary-heap
event queue. Events are plain callbacks scheduled at absolute times;
ties are broken by insertion order so execution is fully deterministic.
Cancellation is O(1) (lazy deletion: the handle is flagged and skipped
when popped).

This is the substrate standing in for GloMoSim's event kernel; every
other subsystem (PHY, MAC, network layer, mobility, metrics) hangs off
one ``Simulator`` instance.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling into the past)."""


class EventHandle:
    """A handle to a scheduled event, allowing cancellation.

    Attributes
    ----------
    time:
        Absolute firing time in nanoseconds.
    callback:
        Zero-argument callable invoked when the event fires. Cleared after
        firing or cancellation so captured objects can be collected.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_fired", "label")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.label = label
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Cancel the event. Cancelling a fired or cancelled event is a no-op.

        In particular, cancelling *after* the event fired leaves the handle
        reporting ``fired`` (not ``cancelled``), so instrumentation and
        ``repr`` reflect what actually happened.
        """
        if self._fired:
            return
        self._cancelled = True
        self.callback = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time} {self.label or 'event'} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    The heap stores ``(time, seq, handle)`` tuples so ordering comparisons
    run entirely in C (time and seq are ints; seq is unique, so the handle
    itself is never compared) -- profiling showed Python-level ``__lt__``
    dominating heap churn otherwise.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._events_processed = 0
        #: Optional telemetry collector (see repro.sim.telemetry). ``None``
        #: keeps the hot loop on a single-branch fast path.
        self._telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Current heap length, counting lazily-cancelled entries (O(1))."""
        return len(self._queue)

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Arm (or with ``None`` disarm) a telemetry collector.

        While armed, every executed event is timed and reported via
        ``telemetry.record(label, duration_s, heap_depth)``.
        """
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (ns)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time} before now={self._now}"
            )
        handle = EventHandle(int(time), self._seq, callback, label)
        heapq.heappush(self._queue, (handle.time, self._seq, handle))
        self._seq += 1
        return handle

    def after(self, delay: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` after ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event '{label}'")
        return self.at(self._now + int(delay), callback, label)

    def call_soon(self, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.at(self._now, callback, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event. Returns False if the queue is empty."""
        while self._queue:
            _, _, handle = heapq.heappop(self._queue)
            if handle._cancelled:
                continue
            self._now = handle.time
            handle._fired = True
            callback = handle.callback
            handle.callback = None
            self._events_processed += 1
            assert callback is not None
            telemetry = self._telemetry
            if telemetry is None:
                callback()
            else:
                start = perf_counter()
                callback()
                telemetry.record(handle.label, perf_counter() - start, len(self._queue))
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` events have executed.

        Returns the simulation time when the run stopped. If ``until`` is
        given, the clock is advanced to ``until`` even if the queue drained
        earlier, so back-to-back ``run`` calls compose predictably.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head_time, _, head = self._queue[0]
                if head._cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n); tests only)."""
        return sum(1 for _, _, handle in self._queue if not handle.cancelled)
