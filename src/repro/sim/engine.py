"""The discrete-event simulator core.

A :class:`Simulator` owns an integer-nanosecond clock and a binary-heap
event queue. Events are plain callbacks scheduled at absolute times;
ties are broken by insertion order so execution is fully deterministic.
Cancellation is O(1) (lazy deletion: the handle is flagged and skipped
when popped).

This is the substrate standing in for GloMoSim's event kernel; every
other subsystem (PHY, MAC, network layer, mobility, metrics) hangs off
one ``Simulator`` instance.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling into the past)."""


class FastEvent:
    """Base class for handle-less fast-path events (see ``schedule_many``).

    Subclasses are zero-argument callables that the simulator executes
    directly off the heap with no :class:`EventHandle` wrapper, so they
    cannot be cancelled. The class attributes below let the hot loop
    treat heap items uniformly without an ``isinstance`` check:

    * ``_cancelled`` is always ``False`` (never skipped on pop);
    * ``callback`` is always ``None`` (the item *is* the callback);
    * ``label`` names the event kind for telemetry (override per class).
    """

    __slots__ = ()

    _cancelled = False
    cancelled = False
    callback = None
    label = ""

    def __call__(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EventHandle:
    """A handle to a scheduled event, allowing cancellation.

    Attributes
    ----------
    time:
        Absolute firing time in nanoseconds.
    callback:
        Zero-argument callable invoked when the event fires. Cleared after
        firing or cancellation so captured objects can be collected.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_fired", "label")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], label: str = ""):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.label = label
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Cancel the event. Cancelling a fired or cancelled event is a no-op.

        In particular, cancelling *after* the event fired leaves the handle
        reporting ``fired`` (not ``cancelled``), so instrumentation and
        ``repr`` reflect what actually happened.
        """
        if self._fired:
            return
        self._cancelled = True
        self.callback = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time} {self.label or 'event'} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    The heap stores ``(time, seq, item)`` tuples so ordering comparisons
    run entirely in C (time and seq are ints; seq is unique, so the item
    itself is never compared) -- profiling showed Python-level ``__lt__``
    dominating heap churn otherwise. ``item`` is an :class:`EventHandle`
    (cancellable, from :meth:`at`/:meth:`after`) or a bare
    :class:`FastEvent` callable (fire-and-forget, from
    :meth:`schedule_many`).
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._now: int = 0
        self._seq: int = 0
        self._running = False
        self._events_processed = 0
        #: Optional telemetry collector (see repro.sim.telemetry). ``None``
        #: keeps the hot loop on a single-branch fast path.
        self._telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Current heap length, counting lazily-cancelled entries (O(1))."""
        return len(self._queue)

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Arm (or with ``None`` disarm) a telemetry collector.

        While armed, every executed event is timed and reported via
        ``telemetry.record(label, duration_s, heap_depth)``.
        """
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (ns)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time} before now={self._now}"
            )
        handle = EventHandle(int(time), self._seq, callback, label)
        heapq.heappush(self._queue, (handle.time, self._seq, handle))
        self._seq += 1
        return handle

    def after(self, delay: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` after ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event '{label}'")
        # Inlined self.at(): the MAC backoff pumps reschedule every slot,
        # making this the most-called scheduling entry point.
        seq = self._seq
        handle = EventHandle(self._now + int(delay), seq, callback, label)
        heapq.heappush(self._queue, (handle.time, seq, handle))
        self._seq = seq + 1
        return handle

    def call_soon(self, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        seq = self._seq
        handle = EventHandle(self._now, seq, callback, label)
        heapq.heappush(self._queue, (handle.time, seq, handle))
        self._seq = seq + 1
        return handle

    def schedule_many(self, entries) -> None:
        """Bulk-schedule fire-and-forget events (the PHY fan-out fast path).

        ``entries`` is an iterable of ``(time, event)`` pairs where each
        ``event`` is a :class:`FastEvent`-style callable (class attributes
        ``_cancelled = False``, ``callback = None``, and a ``label``).
        Events are pushed as pre-built heap tuples in iteration order --
        same-time ties still break by insertion order -- but no
        :class:`EventHandle` is created and nothing is returned, so these
        events cannot be cancelled. One transmission fanning out to N
        receivers costs N heap pushes and zero handle allocations.
        """
        queue = self._queue
        seq = self._seq
        now = self._now
        push = heapq.heappush
        for time, event in entries:
            if time < now:
                self._seq = seq
                raise SimulationError(
                    f"cannot schedule event '{event.label}' at t={time} "
                    f"before now={now}"
                )
            push(queue, (time, seq, event))
            seq += 1
        self._seq = seq

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event. Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time, _, item = heapq.heappop(queue)
            if item._cancelled:
                continue
            self._now = time
            # A FastEvent has callback=None at class level and *is* the
            # callable; an EventHandle carries its callback and must be
            # marked fired. The attribute probe replaces an isinstance
            # check on the hot loop.
            callback = item.callback
            if callback is None:
                callback = item
            else:
                item._fired = True
                item.callback = None
            self._events_processed += 1
            telemetry = self._telemetry
            if telemetry is None:
                callback()
            else:
                start = perf_counter()
                callback()
                telemetry.record(item.label, perf_counter() - start, len(queue))
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` events have executed.

        Returns the simulation time when the run stopped. If ``until`` is
        given, the clock is advanced to ``until`` even if the queue drained
        earlier, so back-to-back ``run`` calls compose predictably.

        The loop body inlines :meth:`step` (one heap access per event
        instead of a peek *and* a pop, no method-call overhead): profiling
        showed the peek-then-delegate pattern costing ~10% of paper-scale
        runs. Semantics are identical to calling ``step`` in a loop.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                entry = queue[0]
                if entry[2]._cancelled:
                    heappop(queue)
                    continue
                if until is not None and entry[0] > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(queue)
                self._now = entry[0]
                item = entry[2]
                callback = item.callback
                if callback is None:
                    callback = item
                else:
                    item._fired = True
                    item.callback = None
                self._events_processed += 1
                telemetry = self._telemetry
                if telemetry is None:
                    callback()
                else:
                    start = perf_counter()
                    callback()
                    telemetry.record(item.label, perf_counter() - start, len(queue))
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n); tests only)."""
        return sum(1 for _, _, handle in self._queue if not handle.cancelled)
