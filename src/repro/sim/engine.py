"""The discrete-event simulator core.

A :class:`Simulator` owns an integer-nanosecond clock and a pluggable
event queue (the **kernel**). Events are plain callbacks scheduled at
absolute times; ties are broken by insertion order (a per-simulator
sequence number), so execution is fully deterministic regardless of the
kernel. Cancellation is O(1) (lazy deletion: the handle is flagged and
skipped when popped), with a compaction policy that sweeps flagged
entries out of the queue when they pile up.

Two kernels ship (``Simulator(kernel=...)``, default ``"heap"``):

* ``"heap"`` -- the classic binary heap (`heapq`): O(log n) push/pop,
  the reference implementation every other kernel must be bit-identical
  to.
* ``"calendar"`` -- a calendar/bucket queue (:class:`CalendarQueue`)
  tuned to the protocol's timing structure: the MACs schedule
  overwhelmingly at a handful of near-future quanta (20 us slots, the
  15 us CCA, SIFS/DIFS, sub-microsecond propagation delays -- see
  ``repro.phy.params``), which is exactly the near-future-heavy
  distribution calendar queues turn into O(1) enqueue/dequeue. Days of
  2**15 ns (~33 us, slot scale) hash into a ring of buckets; the
  current day's entries are kept as a sorted cursor list, so a pop is
  a list index and a push is an append (or a C-level ``insort`` for
  same-day pushes).

Both kernels implement the narrow :class:`EventQueue` drain protocol,
so third-party kernels (e.g. a re-tuned ``CalendarQueue``) can be
passed as instances: ``Simulator(kernel=CalendarQueue(day_shift=12))``.
The ``"heap"`` kernel's run loop is additionally inlined into
:meth:`Simulator.run` (one heap access per event, no per-event method
calls) -- profiling showed the generic drain costing ~10% there.

This is the substrate standing in for GloMoSim's event kernel; every
other subsystem (PHY, MAC, network layer, mobility, metrics) hangs off
one ``Simulator`` instance.
"""

from __future__ import annotations

import heapq
from bisect import insort
from time import perf_counter
from typing import Any, Callable, Iterator, Optional, Tuple, Union


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. scheduling into the past)."""


class FastEvent:
    """Base class for handle-less fast-path events (see ``schedule_many``).

    Subclasses are zero-argument callables that the simulator executes
    directly off the queue with no :class:`EventHandle` wrapper, so they
    cannot be cancelled. The class attributes below let the hot loop
    treat queue items uniformly without an ``isinstance`` check:

    * ``_cancelled`` is always ``False`` (never skipped on pop);
    * ``callback`` is always ``None`` (the item *is* the callback);
    * ``label`` names the event kind for telemetry (override per class).
    """

    __slots__ = ()

    _cancelled = False
    cancelled = False
    callback = None
    label = ""

    def __call__(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EventHandle:
    """A handle to a scheduled event, allowing cancellation.

    Attributes
    ----------
    time:
        Absolute firing time in nanoseconds.
    callback:
        Zero-argument callable invoked when the event fires. Cleared after
        firing or cancellation so captured objects can be collected.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_fired", "label",
                 "_queue")

    def __init__(self, time: int, seq: int, callback: Callable[[], None],
                 label: str = "", queue: Optional["EventQueue"] = None):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        #: The kernel holding this handle's entry; told about the
        #: cancellation so live-depth accounting stays O(1) and the
        #: compaction policy can trigger (None for detached handles).
        self._queue = queue

    def cancel(self) -> None:
        """Cancel the event. Cancelling a fired or cancelled event is a no-op.

        In particular, cancelling *after* the event fired leaves the handle
        reporting ``fired`` (not ``cancelled``), so instrumentation and
        ``repr`` reflect what actually happened.
        """
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        self.callback = None
        queue = self._queue
        if queue is not None:
            queue.note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True if the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time} {self.label or 'event'} {state}>"


#: One stored event: ``(time, seq, item)``. Ordering comparisons run
#: entirely in C (time and seq are ints; seq is unique, so the item
#: itself is never compared) -- profiling showed Python-level ``__lt__``
#: dominating queue churn otherwise. ``item`` is an :class:`EventHandle`
#: (cancellable) or a bare :class:`FastEvent` callable.
Entry = Tuple[int, int, Any]

#: Sentinel horizon: far beyond any reachable simulation time or event
#: count, so the hot loops compare plain ints instead of testing None.
_FOREVER = 1 << 62


class EventQueue:
    """The narrow kernel interface between storage policy and the loop.

    A kernel owns event *storage and ordering*; the :class:`Simulator`
    owns the clock, sequence numbers and dispatch. Implementations must
    deliver entries in exact ``(time, seq)`` order -- that invariant is
    what makes every kernel bit-identical to every other (property-
    tested in ``tests/properties``), so protocols never observe which
    kernel is underneath.

    Required surface:

    * ``name`` -- kernel name for telemetry/CLI.
    * :meth:`push` -- store one entry.
    * the **drain protocol**: ``_due`` (a list of entries, sorted
      ascending), ``_due_i`` (cursor into it), and :meth:`_refill`
      which, when the cursor exhausts ``_due``, replaces its contents
      with the next batch of entries (respecting an ``until`` horizon)
      and resets the cursor. The run loop consumes ``_due[_due_i]``
      by incrementing the cursor only; consumption is *settled* against
      ``_count`` when :meth:`_refill` (or a cursor-discarding push
      path) subtracts the cursor -- keeping the per-event cost at one
      integer store. A same-day push may ``insort`` into ``_due`` at or
      after the cursor. The batch granularity is the kernel's choice
      (the heap refills one entry at a time; the calendar a day at a
      time).
    * ``_count`` -- live + lazily-cancelled entries currently stored.
    * ``cancelled`` / :meth:`note_cancel` / :meth:`compact` -- lazy-
      deletion accounting: ``cancelled`` counts flagged entries still
      stored, so ``live_depth`` stays O(1) and compaction can trigger
      once flagged entries dominate.
    * :meth:`live_depth`, :meth:`entries` -- instrumentation.
    """

    name = "abstract"

    #: Compaction triggers once at least this many cancelled entries
    #: are stored *and* they make up half the queue; after a sweep the
    #: floor rises past whatever could not be removed (entries parked
    #: in the active cursor list), so cancels can never trigger
    #: back-to-back futile sweeps.
    COMPACT_MIN = 1024

    def __init__(self) -> None:
        self._due: list = []
        self._due_i = 0
        self._count = 0
        self.cancelled = 0
        self._compact_at = self.COMPACT_MIN

    # -- storage -------------------------------------------------------
    def push(self, time: int, seq: int, item: Any) -> None:
        raise NotImplementedError

    def _refill(self, until: Optional[int]) -> bool:
        """Refill ``_due`` with the next batch; False if nothing is due.

        Must not disturb (or pop) entries whose firing time lies beyond
        ``until`` -- the queue composes across back-to-back ``run``
        calls.
        """
        raise NotImplementedError

    # -- lazy deletion -------------------------------------------------
    def note_cancel(self) -> None:
        """Account one freshly-cancelled stored entry; maybe compact."""
        self.cancelled = cancelled = self.cancelled + 1
        if cancelled >= self._compact_at and (
                2 * cancelled >= self._count - self._due_i):
            self.compact()
            self._compact_at = max(self.COMPACT_MIN, 2 * self.cancelled + 256)

    def compact(self) -> None:
        """Sweep lazily-cancelled entries out of storage."""
        raise NotImplementedError

    # -- instrumentation -----------------------------------------------
    def live_depth(self) -> int:
        """Pending (not-cancelled) entries currently stored; O(1)."""
        return self._count - self._due_i - self.cancelled

    def entries(self) -> Iterator[Entry]:
        """Every stored entry, in no particular order (tests only)."""
        raise NotImplementedError


class HeapQueue(EventQueue):
    """The reference kernel: a binary heap of ``(time, seq, item)``.

    O(log n) push/pop via ``heapq`` (all in C). When selected by name
    (``Simulator(kernel="heap")``) the run loop bypasses the drain
    protocol entirely and pops the heap inline; the protocol methods
    below exist so a ``HeapQueue`` *instance* still works behind the
    generic loop (the interface conformance tests run it there).
    """

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list = []

    def push(self, time: int, seq: int, item: Any) -> None:
        # A push below the parked cursor tail (possible between runs,
        # after run(until=...) left a peeked entry in _due) must not be
        # overtaken by it: flush the tail back into the heap first.
        due = self._due
        if due:
            for entry in due[self._due_i:]:
                heapq.heappush(self._heap, entry)
            self._count -= self._due_i  # settle consumed entries
            due.clear()
            self._due_i = 0
        heapq.heappush(self._heap, (time, seq, item))
        self._count += 1

    def note_cancel(self) -> None:
        # The heap's physical size is just len(); the inlined fast path
        # (Simulator(kernel="heap")) deliberately skips _count
        # maintenance to keep scheduling at two attribute ops, so the
        # base class's _count-based compaction trigger would misfire.
        self.cancelled = cancelled = self.cancelled + 1
        if cancelled >= self._compact_at and 2 * cancelled >= len(self._heap):
            self.compact()
            self._compact_at = max(self.COMPACT_MIN, 2 * self.cancelled + 256)

    def _refill(self, until: Optional[int]) -> bool:
        due = self._due
        self._count -= self._due_i  # settle consumed entries
        due.clear()
        self._due_i = 0
        heap = self._heap
        if not heap:
            return False
        if until is not None and heap[0][0] > until:
            return False
        due.append(heapq.heappop(heap))
        return True

    def compact(self) -> None:
        heap = self._heap
        live = [entry for entry in heap if not entry[2]._cancelled]
        removed = len(heap) - len(live)
        # In-place: the run loop (and any caller) may hold a reference.
        heap[:] = live
        heapq.heapify(heap)
        self._count -= removed
        self.cancelled -= removed

    def entries(self) -> Iterator[Entry]:
        yield from self._heap
        yield from self._due[self._due_i:]

    def live_depth(self) -> int:
        pending = len(self._heap) + (len(self._due) - self._due_i)
        return pending - self.cancelled


class CalendarQueue(EventQueue):
    """A calendar/bucket queue: O(1) push and pop for near-future events.

    Time is divided into **days** of ``2**day_shift`` ns hashing into a
    ring of ``n_buckets`` unsorted buckets (``day & (n_buckets - 1)``).
    The cursor day's entries live in the sorted ``_due`` list; a pop is
    ``_due[_due_i]`` plus a cursor increment, a push is a bucket append
    (or, for the current day, a C-level ``insort`` at/after the
    cursor -- a scheduled-into-the-past entry cannot exist, so sorted
    order is preserved without ever moving consumed entries).

    When the cursor day drains, :meth:`_refill` walks the ring to the
    next populated day and partitions that bucket: this-day entries are
    sorted into ``_due``, far-future entries (a full ring span or more
    ahead: BLESS heartbeats, traffic timers, mobility legs) stay put
    and are re-examined one lap later. A completely dry lap (every
    stored entry lies beyond one ring span) jumps the cursor straight
    to the earliest populated day instead of spinning.

    Defaults: ``day_shift=15`` makes a ~33 us day -- the scale of the
    backoff slot (20 us) and CCA (15 us) that dominate MAC scheduling --
    so a day holds a handful of events at paper densities; 2048 buckets
    span ~67 ms per lap, amortizing far-future touch cost to nothing.
    Both are constructor-tunable; the defaults are benchmarked in
    ``repro bench --tier large``.
    """

    name = "calendar"

    def __init__(self, day_shift: int = 15, n_buckets: int = 2048) -> None:
        if n_buckets & (n_buckets - 1) or n_buckets <= 0:
            raise ValueError(f"n_buckets must be a power of two, got {n_buckets}")
        if day_shift < 0:
            raise ValueError(f"negative day_shift {day_shift}")
        super().__init__()
        self._shift = day_shift
        self._mask = n_buckets - 1
        self._buckets: list = [[] for _ in range(n_buckets)]
        #: Absolute day number the cursor (``_due``) currently covers.
        self._day = 0
        #: Occupancy bitmask, bit *i* set when ``_buckets[i]`` may be
        #: non-empty (a superset: push sets bits eagerly, _refill and
        #: compact clear them lazily when a bucket is seen empty). Lets
        #: the refill walk jump over empty days in O(1) big-int ops --
        #: sparse stretches (warmup/drain, heartbeat-only traffic) would
        #: otherwise probe thousands of empty buckets per refill.
        self._occ = 0

    def push(self, time: int, seq: int, item: Any) -> None:
        day = time >> self._shift
        cursor_day = self._day
        if day == cursor_day:
            # Same-day push: keep _due sorted. Everything at or before
            # the cursor has (time, seq) <= the new entry's, so
            # inserting at/after the cursor preserves total order.
            insort(self._due, (time, seq, item), self._due_i)
        elif day > cursor_day:
            idx = day & self._mask
            bucket = self._buckets[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append((time, seq, item))
        else:
            # Earlier than the cursor day: only possible between runs
            # (run(until=...) can park the cursor on a later day, and a
            # fresh schedule may land in the gap). Rewind the cursor.
            tail = self._due[self._due_i:]
            if tail:
                idx = cursor_day & self._mask
                bucket = self._buckets[idx]
                if not bucket:
                    self._occ |= 1 << idx
                bucket.extend(tail)
            self._count -= self._due_i  # settle consumed entries
            self._due.clear()
            self._due_i = 0
            self._day = day - 1  # _refill scans from day onward
            idx = day & self._mask
            bucket = self._buckets[idx]
            if not bucket:
                self._occ |= 1 << idx
            bucket.append((time, seq, item))
        self._count += 1

    def _refill(self, until: Optional[int]) -> bool:
        due = self._due
        self._count -= self._due_i  # settle consumed entries
        due.clear()
        self._due_i = 0
        if self._count <= 0:
            self._occ = 0  # ring is empty: drop any stale bits
            return False
        shift = self._shift
        mask = self._mask
        buckets = self._buckets
        lap = mask + 1
        day = self._day
        occ = self._occ
        # Jump-to-min trigger: once the candidate day advances a full
        # lap past this point without a match, every occupied bucket
        # was probed once and holds only far-future entries.
        wrapped = day + lap
        while True:
            # Next candidate: the first occupied ring slot strictly
            # after the current day (occupancy rotated so the slot
            # after `day` becomes bit 0; lowest set bit = distance).
            idx = (day + 1) & mask
            spun = (occ >> idx) | ((occ & ((1 << idx) - 1)) << (lap - idx))
            if not spun:
                # No occupancy bits at all (can only be stale-clear
                # racing _count bookkeeping): fall back to the jump.
                day = min(e[0] >> shift
                          for b in buckets for e in b) - 1
                wrapped = day + lap
                continue
            day += 1 + (spun & -spun).bit_length() - 1
            if until is not None and (day << shift) > until:
                # The next populated day starts beyond the horizon:
                # leave the ring untouched (and the cursor where it is)
                # so back-to-back run calls compose.
                self._occ = occ
                return False
            bucket = buckets[day & mask]
            if bucket:
                matched = [e for e in bucket if e[0] >> shift == day]
                if matched:
                    if len(matched) == len(bucket):
                        bucket.clear()
                        occ &= ~(1 << (day & mask))
                    else:
                        bucket[:] = [e for e in bucket if e[0] >> shift != day]
                    matched.sort()
                    due.extend(matched)
                    self._day = day
                    self._occ = occ
                    return True
            else:
                occ &= ~(1 << (day & mask))  # stale bit: clear it
            if day >= wrapped:
                # A full dry lap: every stored entry lies at least one
                # ring span ahead. Jump straight to the earliest day.
                day = min(e[0] >> shift
                          for b in buckets for e in b) - 1
                wrapped = day + lap

    def compact(self) -> None:
        # Sweep the ring only: the cursor list is at most one day of
        # entries and the run loop may be indexing into it mid-callback;
        # its flagged entries drain naturally within the day.
        removed = 0
        for idx, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            live = [e for e in bucket if not e[2]._cancelled]
            if len(live) != len(bucket):
                removed += len(bucket) - len(live)
                bucket[:] = live
                if not live:
                    self._occ &= ~(1 << idx)
        self._count -= removed
        self.cancelled -= removed

    def entries(self) -> Iterator[Entry]:
        for bucket in self._buckets:
            yield from bucket
        yield from self._due[self._due_i:]


#: Kernel registry for ``Simulator(kernel=<name>)`` and the CLI.
KERNELS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}


class Simulator:
    """Deterministic discrete-event simulator with an integer-ns clock.

    ``kernel`` selects the event queue: a name from :data:`KERNELS`
    (``"heap"``, the default, or ``"calendar"``) or a ready-made
    :class:`EventQueue` instance (e.g. a re-tuned
    :class:`CalendarQueue`). Every kernel executes the exact same
    ``(time, seq)`` event order, so results are bit-identical across
    kernels -- only the wall clock changes.
    """

    def __init__(self, kernel: Union[str, EventQueue] = "heap") -> None:
        if isinstance(kernel, str):
            try:
                queue: EventQueue = KERNELS[kernel]()
            except KeyError:
                raise SimulationError(
                    f"unknown kernel {kernel!r}; have {sorted(KERNELS)} "
                    f"(or pass an EventQueue instance)") from None
            #: Fast path: the name "heap" (not a HeapQueue instance)
            #: selects the inlined heap loop below.
            self._heap: Optional[list] = (
                queue._heap if kernel == "heap" else None)  # type: ignore[attr-defined]
        else:
            queue = kernel
            self._heap = None
        self._kq: EventQueue = queue
        #: Fast path: a registry-built CalendarQueue gets its push logic
        #: inlined into after()/schedule_many() (no per-event method
        #: call); instance-passed kernels go through EventQueue.push.
        self._cal: Optional[CalendarQueue] = (
            queue if self._heap is None and type(queue) is CalendarQueue
            else None)
        #: Current simulation time in nanoseconds. A plain attribute
        #: (not a property): hot paths across the stack read the clock
        #: millions of times per run, and a Python-level property getter
        #: costs more than many of those callers' entire bodies. Treat
        #: as read-only outside the run loops.
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        self._events_processed = 0
        #: Optional telemetry collector (see repro.sim.telemetry). ``None``
        #: keeps the hot loop on a single-branch fast path.
        self._telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> str:
        """Name of the event-queue kernel driving this simulator."""
        return self._kq.name

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Live (pending, not lazily-cancelled) queue entries, O(1).

        This is the number the telemetry heap-depth samples report too:
        cancelled-but-unswept entries are bookkeeping, not load.
        """
        return self._kq.live_depth()

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Arm (or with ``None`` disarm) a telemetry collector.

        While armed, every executed event is timed and reported via
        ``telemetry.record(label, duration_s, live_depth)``.
        """
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at absolute time ``time`` (ns)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={time} before now={self.now}"
            )
        seq = self._seq
        handle = EventHandle(int(time), seq, callback, label, self._kq)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, (handle.time, seq, handle))
        else:
            self._kq.push(handle.time, seq, handle)
        self._seq = seq + 1
        return handle

    def after(self, delay: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` after ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event '{label}'")
        # Inlined self.at(): the MAC backoff pumps reschedule every slot,
        # making this the most-called scheduling entry point.
        seq = self._seq
        time = self.now + int(delay)
        handle = EventHandle(time, seq, callback, label, self._kq)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, (time, seq, handle))
        else:
            cal = self._cal
            if cal is not None:
                # Inlined CalendarQueue.push (the calendar-run twin of
                # the heappush above); the rare rewind case delegates.
                day = time >> cal._shift
                if day == cal._day:
                    insort(cal._due, (time, seq, handle), cal._due_i)
                    cal._count += 1
                elif day > cal._day:
                    idx = day & cal._mask
                    bucket = cal._buckets[idx]
                    if not bucket:
                        cal._occ |= 1 << idx
                    bucket.append((time, seq, handle))
                    cal._count += 1
                else:
                    cal.push(time, seq, handle)
            else:
                self._kq.push(time, seq, handle)
        self._seq = seq + 1
        return handle

    def call_soon(self, callback: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        seq = self._seq
        handle = EventHandle(self.now, seq, callback, label, self._kq)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, (handle.time, seq, handle))
        else:
            self._kq.push(handle.time, seq, handle)
        self._seq = seq + 1
        return handle

    def schedule_many(self, entries) -> None:
        """Bulk-schedule fire-and-forget events (the PHY fan-out fast path).

        ``entries`` is an iterable of ``(time, event)`` pairs where each
        ``event`` is a :class:`FastEvent`-style callable (class attributes
        ``_cancelled = False``, ``callback = None``, and a ``label``).
        Events are pushed in iteration order -- same-time ties still
        break by insertion order -- but no :class:`EventHandle` is
        created and nothing is returned, so these events cannot be
        cancelled. One transmission fanning out to N receivers costs N
        queue pushes and zero handle allocations.

        The call is **atomic**: every pair is validated against the
        clock first, so a past-time entry anywhere in the batch raises
        with the queue untouched (no partially-scheduled fan-out).
        """
        if type(entries) is not list:
            entries = list(entries)
        now = self.now
        for time, event in entries:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event '{event.label}' at t={time} "
                    f"before now={now}"
                )
        seq = self._seq
        heap = self._heap
        cal = self._cal
        if heap is not None:
            push = heapq.heappush
            for time, event in entries:
                push(heap, (time, seq, event))
                seq += 1
        elif cal is not None:
            # Inlined CalendarQueue.push over the whole batch. The
            # locals are re-hoisted after a rewind (which restructures
            # the cursor state); rewinds cannot happen mid-run, only on
            # pre-run scheduling below an earlier parked cursor.
            shift = cal._shift
            cday = cal._day
            cdue = cal._due
            cdue_i = cal._due_i
            buckets = cal._buckets
            mask = cal._mask
            fast = 0
            for time, event in entries:
                day = time >> shift
                if day == cday:
                    insort(cdue, (time, seq, event), cdue_i)
                    fast += 1
                elif day > cday:
                    idx = day & mask
                    bucket = buckets[idx]
                    if not bucket:
                        cal._occ |= 1 << idx
                    bucket.append((time, seq, event))
                    fast += 1
                else:
                    cal.push(time, seq, event)
                    cday = cal._day
                    cdue = cal._due
                    cdue_i = cal._due_i
                seq += 1
            cal._count += fast
        else:
            kpush = self._kq.push
            for time, event in entries:
                kpush(time, seq, event)
                seq += 1
        self._seq = seq

    def schedule_fast(self, time: int, event) -> None:
        """Schedule one fire-and-forget :class:`FastEvent` at ``time`` (ns).

        The single-event sibling of :meth:`schedule_many`: no
        :class:`EventHandle` is allocated and nothing is returned, so the
        event cannot be cancelled. For periodic machinery that never
        cancels (the MAC backoff pumps), one reusable event object makes
        scheduling allocation-free.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event '{event.label}' at t={time} "
                f"before now={self.now}"
            )
        seq = self._seq
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, (time, seq, event))
        else:
            cal = self._cal
            if cal is not None:
                day = time >> cal._shift
                if day == cal._day:
                    insort(cal._due, (time, seq, event), cal._due_i)
                    cal._count += 1
                elif day > cal._day:
                    idx = day & cal._mask
                    bucket = cal._buckets[idx]
                    if not bucket:
                        cal._occ |= 1 << idx
                    bucket.append((time, seq, event))
                    cal._count += 1
                else:
                    cal.push(time, seq, event)
            else:
                self._kq.push(time, seq, event)
        self._seq = seq + 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event. Returns False if the queue is empty."""
        heap = self._heap
        if heap is not None:
            kq = self._kq
            while heap:
                time, _, item = heapq.heappop(heap)
                if item._cancelled:
                    kq.cancelled -= 1
                    continue
                self.now = time
                self._dispatch(item)
                return True
            return False
        kq = self._kq
        while True:
            due = kq._due
            i = kq._due_i
            if i >= len(due):
                if not kq._refill(None):
                    return False
                due = kq._due
                i = 0
            entry = due[i]
            kq._due_i = i + 1
            item = entry[2]
            if item._cancelled:
                kq.cancelled -= 1
                continue
            self.now = entry[0]
            self._dispatch(item)
            return True

    def _dispatch(self, item) -> None:
        """Execute one popped item (shared by step(); run() inlines this)."""
        # A FastEvent has callback=None at class level and *is* the
        # callable; an EventHandle carries its callback and must be
        # marked fired. The attribute probe replaces an isinstance
        # check on the hot loop.
        callback = item.callback
        if callback is None:
            callback = item
        else:
            item._fired = True
            item.callback = None
        self._events_processed += 1
        telemetry = self._telemetry
        if telemetry is None:
            callback()
        else:
            start = perf_counter()
            callback()
            telemetry.record(item.label, perf_counter() - start,
                             self._kq.live_depth())

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` events have executed.

        Returns the simulation time when the run stopped. If ``until`` is
        given, the clock is advanced to ``until`` even if the queue drained
        earlier, so back-to-back ``run`` calls compose predictably; the
        queue beyond ``until`` is left untouched (even lazily-cancelled
        entries stay put until a run actually reaches them).

        The loop bodies inline :meth:`step` (one queue access per event
        instead of a peek *and* a pop, no method-call overhead): profiling
        showed the peek-then-delegate pattern costing ~10% of paper-scale
        runs. Semantics are identical to calling ``step`` in a loop.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            if self._heap is not None:
                self._run_heap(until, max_events)
            elif self._cal is not None:
                self._run_calendar(until, max_events)
            else:
                self._run_drain(until, max_events)
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def _run_heap(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The inlined hot loop for the named ``"heap"`` kernel."""
        executed = 0
        queue = self._heap
        kq = self._kq
        heappop = heapq.heappop
        horizon = until if until is not None else _FOREVER
        limit = max_events if max_events is not None else _FOREVER
        telemetry = self._telemetry
        if telemetry is not None:
            label_stats = telemetry._label_stats
            interval = telemetry.heap_sample_interval
            sample_in = interval - telemetry.events % interval
            samples_append = telemetry.heap_samples.append
        last_wall = perf_counter()
        while queue:
            entry = queue[0]
            time = entry[0]
            if time > horizon:
                break
            item = entry[2]
            if item._cancelled:
                heappop(queue)
                kq.cancelled -= 1
                continue
            if executed >= limit:
                break
            heappop(queue)
            self.now = time
            callback = item.callback
            if callback is None:
                callback = item
            else:
                item._fired = True
                item.callback = None
            if telemetry is None:
                callback()
            else:
                callback()
                now_wall = perf_counter()
                # Inlined telemetry.record() (same bookkeeping, no call).
                try:
                    stats = label_stats[item.label]
                except KeyError:
                    stats = label_stats[item.label] = [0, 0.0]
                stats[0] += 1
                stats[1] += now_wall - last_wall
                last_wall = now_wall
                sample_in -= 1
                if not sample_in:
                    sample_in = interval
                    samples_append(len(queue) - kq.cancelled)
            executed += 1
        self._events_processed += executed
        if telemetry is not None:
            telemetry.events += executed
            telemetry._last_heap_depth = len(queue) - kq.cancelled

    def _run_calendar(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The inlined hot loop for the named ``"calendar"`` kernel.

        Identical semantics to :meth:`_run_drain`, specialized: the
        ``until``/``max_events`` guards collapse to plain integer
        compares against sentinels, consumption is one cursor store per
        event (``_refill`` settles ``_count``), and the telemetry
        bookkeeping is inlined.
        """
        executed = 0
        cal = self._cal
        refill = cal._refill
        due = cal._due
        i = cal._due_i
        horizon = until if until is not None else _FOREVER
        limit = max_events if max_events is not None else _FOREVER
        telemetry = self._telemetry
        if telemetry is not None:
            # Hoisted telemetry state: per-event stores collapse to two
            # dict/list ops; the global counters are settled after the
            # loop (see below). ``sample_in`` counts down to the next
            # heap-depth sample so the hot path pays no modulo.
            label_stats = telemetry._label_stats
            interval = telemetry.heap_sample_interval
            sample_in = interval - telemetry.events % interval
            samples_append = telemetry.heap_samples.append
        last_wall = perf_counter()
        while True:
            if i >= len(due):
                if not refill(until):
                    break
                i = 0
            time, _seq, item = due[i]
            if time > horizon:
                break
            if item._cancelled:
                i += 1
                cal._due_i = i
                cal.cancelled -= 1
                continue
            if executed >= limit:
                break
            i += 1
            cal._due_i = i
            self.now = time
            callback = item.callback
            if callback is None:
                callback = item
            else:
                item._fired = True
                item.callback = None
            if telemetry is None:
                callback()
            else:
                callback()
                now_wall = perf_counter()
                # Inlined telemetry.record() (same bookkeeping, no call).
                try:
                    stats = label_stats[item.label]
                except KeyError:
                    stats = label_stats[item.label] = [0, 0.0]
                stats[0] += 1
                stats[1] += now_wall - last_wall
                last_wall = now_wall
                sample_in -= 1
                if not sample_in:
                    sample_in = interval
                    samples_append(cal._count - i - cal.cancelled)
            executed += 1
        self._events_processed += executed
        if telemetry is not None:
            telemetry.events += executed
            telemetry._last_heap_depth = (
                cal._count - cal._due_i - cal.cancelled)

    def _run_drain(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The generic drain-protocol loop (calendar and custom kernels).

        The cursor list ``kq._due`` is mutated only in place (refill
        reuses the list object; same-day pushes ``insort`` at or after
        the cursor), so the loop's local reference stays valid across
        callbacks; the cursor index is published to the kernel before
        each dispatch so a callback's pushes see a consistent boundary.
        """
        executed = 0
        kq = self._kq
        refill = kq._refill
        due = kq._due
        i = kq._due_i
        last_wall = perf_counter()
        while True:
            if i >= len(due):
                if not refill(until):
                    break
                i = 0
            entry = due[i]
            time = entry[0]
            if until is not None and time > until:
                break
            item = entry[2]
            if item._cancelled:
                i += 1
                kq._due_i = i
                kq.cancelled -= 1
                continue
            if max_events is not None and executed >= max_events:
                break
            i += 1
            kq._due_i = i
            self.now = time
            callback = item.callback
            if callback is None:
                callback = item
            else:
                item._fired = True
                item.callback = None
            self._events_processed += 1
            telemetry = self._telemetry
            if telemetry is None:
                callback()
            else:
                callback()
                now_wall = perf_counter()
                telemetry.record(item.label, now_wall - last_wall,
                                 kq._count - i - kq.cancelled)
                last_wall = now_wall
            executed += 1

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(n); tests only)."""
        return sum(1 for entry in self._kq.entries()
                   if not entry[2]._cancelled)
