"""Event-loop telemetry: throughput, heap depth and per-label profiles.

Paper-scale campaigns are hours of pure-Python event processing, and the
ROADMAP's "fast as the hardware allows" goal needs a measured baseline
before anything can be optimized. A :class:`Telemetry` attached to a
:class:`~repro.sim.engine.Simulator` samples the event loop while it
runs:

* **events/sec** -- wall-clock throughput of the event loop;
* **per-label event counts** -- which event kinds dominate the queue;
* **per-subsystem wall time** -- where the callback time actually goes,
  grouped by label prefix (``rmac-pump`` -> ``rmac``, ``tone-on`` ->
  ``tone``, ...);
* **heap depth** -- queue length sampled every ``heap_sample_interval``
  events, so queue growth (a leak, or genuine load) is visible.

The cost model mirrors Abstract-MAC-layer work treating per-message
progress bounds as first-class observables: a run's telemetry is part of
its result, not an ad-hoc printout.

Overhead: when no telemetry is attached the simulator pays a single
``is None`` check per event. When attached, each event additionally pays
one ``perf_counter`` call and one dict update: the run loop timestamps
event *boundaries*, so a label's wall time is inclusive -- the callback
body plus that event's share of scheduling overhead. The per-label
split remains proportional (scheduling cost is near-uniform per event)
and the total matches the loop's true wall time instead of undercounting
it -- fine for profiling runs, which is the only time telemetry is on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TelemetryReport:
    """An immutable snapshot of one run's event-loop telemetry."""

    #: Total events executed while telemetry was attached.
    events: int
    #: Wall-clock seconds spent inside :meth:`Simulator.step`.
    wall_s: float
    #: Events per wall-clock second (0.0 if nothing ran).
    events_per_sec: float
    #: Simulated nanoseconds covered while attached.
    sim_time_ns: int
    #: Simulated nanoseconds per wall second (the "speedup" over real time).
    sim_ns_per_wall_s: float
    #: label -> number of events executed under that label.
    label_counts: Dict[str, int]
    #: label prefix (before the first ``-``) -> inclusive wall seconds
    #: (callback body + that event's share of loop overhead).
    subsystem_wall_s: Dict[str, float]
    #: Sampled event-queue depths (one sample per ``heap_sample_interval``).
    heap_depth_max: int
    heap_depth_mean: float
    heap_depth_last: int
    #: Named counter sections contributed by subsystems outside the event
    #: loop (e.g. ``"neighbors"`` -> link-table rebuild/cache counters).
    #: Each payload must be a flat JSON-serializable dict.
    sections: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-serializable dict (stable key order for diffs)."""
        out = {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "sim_time_ns": self.sim_time_ns,
            "sim_ns_per_wall_s": self.sim_ns_per_wall_s,
            "heap_depth": {
                "max": self.heap_depth_max,
                "mean": self.heap_depth_mean,
                "last": self.heap_depth_last,
            },
            "label_counts": dict(
                sorted(self.label_counts.items(), key=lambda kv: -kv[1])
            ),
            "subsystem_wall_s": dict(
                sorted(self.subsystem_wall_s.items(), key=lambda kv: -kv[1])
            ),
        }
        for name in sorted(self.sections):
            out[name] = dict(self.sections[name])
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """A compact human-readable profile (top labels and subsystems)."""
        lines = [
            f"events          {self.events}",
            f"wall time       {self.wall_s:.3f} s",
            f"events/sec      {self.events_per_sec:,.0f}",
            f"sim speedup     {self.sim_ns_per_wall_s / 1e9:.2f}x realtime",
            f"heap depth      max {self.heap_depth_max}, "
            f"mean {self.heap_depth_mean:.1f}, last {self.heap_depth_last}",
        ]
        top_labels = sorted(self.label_counts.items(), key=lambda kv: -kv[1])[:8]
        if top_labels:
            lines.append("top labels      " + ", ".join(
                f"{label or '(unlabeled)'}={count}" for label, count in top_labels
            ))
        top_subsystems = sorted(
            self.subsystem_wall_s.items(), key=lambda kv: -kv[1]
        )[:8]
        if top_subsystems:
            lines.append("subsystem wall  " + ", ".join(
                f"{name or '(unlabeled)'}={secs * 1e3:.1f}ms"
                for name, secs in top_subsystems
            ))
        for name in sorted(self.sections):
            payload = self.sections[name]
            lines.append(f"{name:<15} " + ", ".join(
                f"{key}={value}" for key, value in payload.items()
            ))
        return "\n".join(lines)


class Telemetry:
    """Collects event-loop samples; attach to a simulator before running.

    Usage::

        telemetry = Telemetry()
        telemetry.attach(sim)
        sim.run(until=...)
        report = telemetry.report(sim)

    Attaching is what arms the simulator's per-event hook; detaching (or
    attaching ``None``) restores the zero-overhead path.
    """

    def __init__(self, heap_sample_interval: int = 1024):
        if heap_sample_interval < 1:
            raise ValueError("heap_sample_interval must be >= 1")
        self.heap_sample_interval = heap_sample_interval
        #: label -> ``[count, wall_s]``. One dict hit per event; the
        #: public per-label/per-subsystem views are derived on demand
        #: (see :attr:`label_counts` / :attr:`subsystem_wall_s`).
        self._label_stats: Dict[str, list] = {}
        self.heap_samples: List[int] = []
        #: Named counter sections (see :attr:`TelemetryReport.sections`).
        self.sections: Dict[str, dict] = {}
        self.events = 0
        self._last_heap_depth = 0
        self._start_sim_time: Optional[int] = None
        self._start_wall: Optional[float] = None

    # -- derived views (report/tests; not on the hot path) -------------
    @property
    def label_counts(self) -> Dict[str, int]:
        """label -> number of events executed under that label."""
        return {label: stats[0] for label, stats in self._label_stats.items()}

    @property
    def subsystem_wall_s(self) -> Dict[str, float]:
        """label prefix (before the first ``-``) -> inclusive wall seconds."""
        out: Dict[str, float] = {}
        for label, stats in self._label_stats.items():
            subsystem = label.split("-", 1)[0]
            out[subsystem] = out.get(subsystem, 0.0) + stats[1]
        return out

    @property
    def wall_s(self) -> float:
        """Total wall seconds accounted to executed events."""
        return sum(stats[1] for stats in self._label_stats.values())

    # ------------------------------------------------------------------
    def attach(self, sim) -> "Telemetry":
        """Arm this collector on ``sim`` (returns self for chaining)."""
        sim.set_telemetry(self)
        self._start_sim_time = sim.now
        self._start_wall = perf_counter()
        return self

    def detach(self, sim) -> None:
        """Disarm; the simulator returns to the zero-overhead path."""
        sim.set_telemetry(None)

    # ------------------------------------------------------------------
    def set_section(self, name: str, payload: dict) -> None:
        """Attach (or replace) a named counter section for the report.

        For subsystems that keep their own counters off the event-loop
        hot path (the neighbor layer, caches, ...): set once before
        :meth:`report` with the final values.
        """
        self.sections[name] = dict(payload)

    # ------------------------------------------------------------------
    def record(self, label: str, duration_s: float, heap_depth: int) -> None:
        """Account one executed event (called by the simulator hot loop)."""
        self.events = events = self.events + 1
        try:
            stats = self._label_stats[label]
        except KeyError:
            stats = self._label_stats[label] = [0, 0.0]
        stats[0] += 1
        stats[1] += duration_s
        self._last_heap_depth = heap_depth
        if not events % self.heap_sample_interval:
            self.heap_samples.append(heap_depth)

    # ------------------------------------------------------------------
    def report(self, sim=None) -> TelemetryReport:
        """Freeze the collected samples into a :class:`TelemetryReport`.

        With ``sim`` given, wall time is measured from :meth:`attach` to
        now (covering scheduling overhead, not just callback bodies) and
        simulated time from the attach point; otherwise only the summed
        callback time is available.
        """
        if sim is not None and self._start_wall is not None:
            wall_s = perf_counter() - self._start_wall
            sim_time_ns = sim.now - (self._start_sim_time or 0)
        else:
            wall_s = self.wall_s
            sim_time_ns = 0
        samples = self.heap_samples or [self._last_heap_depth]
        return TelemetryReport(
            events=self.events,
            wall_s=wall_s,
            events_per_sec=(self.events / wall_s) if wall_s > 0 else 0.0,
            sim_time_ns=sim_time_ns,
            sim_ns_per_wall_s=(sim_time_ns / wall_s) if wall_s > 0 else 0.0,
            label_counts=dict(self.label_counts),
            subsystem_wall_s=dict(self.subsystem_wall_s),
            heap_depth_max=max(samples),
            heap_depth_mean=sum(samples) / len(samples),
            heap_depth_last=self._last_heap_depth,
            sections={name: dict(payload)
                      for name, payload in self.sections.items()},
        )
