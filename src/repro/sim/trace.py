"""Structured event tracing with pluggable, bounded-memory storage.

The tracer records (time, node, kind, detail) tuples. Integration tests
assert on traces (e.g. that a Reliable Send produces exactly the
MRTS -> RBT -> DATA -> ABT sequence of the paper's Fig. 4), and
``examples/timeline_fig4.py`` pretty-prints one.

Storage is a pluggable :class:`TraceBuffer`:

* :class:`ListBuffer` (default) -- keeps everything, the historical
  behavior. Fine for tests and short runs; unbounded on long ones.
* :class:`RingBuffer` -- keeps only the most recent ``capacity`` events
  (and counts what it dropped). Memory is bounded regardless of run
  length, so a 60 s paper-scale run can stay traced for post-mortems.
* :class:`JsonlTraceSink` -- streams every event to a JSONL file and
  keeps nothing in memory. The file is the trace; ``len()`` still
  reports how many events were written.

Tracing is off by default and costs one predicate call per emit when off.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, IO, Iterable, Iterator, List, Optional, Union

from repro.sim.units import format_time


@dataclass(frozen=True)
class TraceEvent:
    """One traced protocol event."""

    time: int
    node: int
    kind: str
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        """One-line human-readable rendering."""
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{format_time(self.time):>12}] node {self.node:>3} {self.kind:<18} {extras}".rstrip()

    def to_json(self) -> str:
        """One-line JSON rendering (the JSONL record format)."""
        payload = {"time": self.time, "node": self.node, "kind": self.kind}
        if self.detail:
            payload["detail"] = self.detail
        return json.dumps(payload, default=str)


class TraceBuffer:
    """Storage strategy for accepted trace events. Subclass and override."""

    def append(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def snapshot(self) -> List[TraceEvent]:
        """The retained events, oldest first (may be a subset or empty)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Total events *accepted* (retained or not)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (flush files). Idempotent."""


class ListBuffer(TraceBuffer):
    """Keep every event in a plain list (unbounded; the default)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def snapshot(self) -> List[TraceEvent]:
        return self.events

    def __len__(self) -> int:
        return len(self.events)


class NullBuffer(TraceBuffer):
    """Retain nothing; only count. The backend for runs that enable
    tracing purely to feed live subscribers (the invariant oracle's
    ``repro run --oracle`` path) without accumulating events."""

    def __init__(self) -> None:
        self._accepted = 0

    def append(self, event: TraceEvent) -> None:
        self._accepted += 1

    def snapshot(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return self._accepted


class RingBuffer(TraceBuffer):
    """Keep only the most recent ``capacity`` events (bounded memory)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._accepted = 0

    @property
    def dropped(self) -> int:
        """Events accepted but since evicted by newer ones."""
        return self._accepted - len(self._ring)

    def append(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self._accepted += 1

    def snapshot(self) -> List[TraceEvent]:
        return list(self._ring)

    def __len__(self) -> int:
        return self._accepted


class JsonlTraceSink(TraceBuffer):
    """Stream events to a JSONL file; retain nothing in memory.

    Accepts a path (opened and owned, closed by :meth:`close`) or an
    already-open text file object (borrowed; left open).
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._written = 0
        self._closed = False

    def append(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json())
        self._fh.write("\n")
        self._written += 1

    def snapshot(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return self._written

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()


class Tracer:
    """Collects :class:`TraceEvent` records, with optional kind filtering.

    ``buffer`` selects the storage backend (default: unbounded
    :class:`ListBuffer`). The query helpers (:attr:`events`,
    :meth:`of_kind`, ...) operate on whatever the backend retained.
    """

    def __init__(
        self,
        enabled: bool = False,
        kinds: Optional[Iterable[str]] = None,
        buffer: Optional[TraceBuffer] = None,
    ):
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self.buffer: TraceBuffer = buffer if buffer is not None else ListBuffer()
        #: Optional sink called on each accepted event (e.g. live printing).
        self.sink: Optional[Callable[[TraceEvent], None]] = None

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return self.buffer.snapshot()

    def emit(self, time: int, node: int, kind: str, **detail: object) -> None:
        """Record one event if tracing is enabled and the kind passes the filter."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        event = TraceEvent(time, node, kind, dict(detail))
        self.buffer.append(event)
        if self.sink is not None:
            self.sink(event)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """All retained events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def for_node(self, node: int) -> List[TraceEvent]:
        """All retained events for ``node``, in order."""
        return [e for e in self.events if e.node == node]

    def kinds_sequence(self) -> List[str]:
        """The sequence of kinds, useful for compact assertions."""
        return [e.kind for e in self.events]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        """Total events accepted (JSONL/ring backends may retain fewer)."""
        return len(self.buffer)

    def close(self) -> None:
        """Close the storage backend (flushes streaming sinks)."""
        self.buffer.close()

    def render(self) -> str:
        """Multi-line rendering of the retained trace."""
        return "\n".join(e.render() for e in self.events)


#: A module-level disabled tracer used as the default everywhere.
NULL_TRACER = Tracer(enabled=False)
