"""Structured event tracing.

The tracer records (time, node, kind, detail) tuples. Integration tests
assert on traces (e.g. that a Reliable Send produces exactly the
MRTS -> RBT -> DATA -> ABT sequence of the paper's Fig. 4), and
``examples/timeline_fig4.py`` pretty-prints one.

Tracing is off by default and costs one predicate call per emit when off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional

from repro.sim.units import format_time


@dataclass(frozen=True)
class TraceEvent:
    """One traced protocol event."""

    time: int
    node: int
    kind: str
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        """One-line human-readable rendering."""
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{format_time(self.time):>12}] node {self.node:>3} {self.kind:<18} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceEvent` records, with optional kind filtering."""

    def __init__(self, enabled: bool = False, kinds: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self._kinds = set(kinds) if kinds is not None else None
        self.events: List[TraceEvent] = []
        #: Optional sink called on each accepted event (e.g. live printing).
        self.sink: Optional[Callable[[TraceEvent], None]] = None

    def emit(self, time: int, node: int, kind: str, **detail: object) -> None:
        """Record one event if tracing is enabled and the kind passes the filter."""
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        event = TraceEvent(time, node, kind, dict(detail))
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        """All recorded events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def for_node(self, node: int) -> List[TraceEvent]:
        """All recorded events for ``node``, in order."""
        return [e for e in self.events if e.node == node]

    def kinds_sequence(self) -> List[str]:
        """The sequence of kinds, useful for compact assertions."""
        return [e.kind for e in self.events]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def render(self) -> str:
        """Multi-line rendering of the whole trace."""
        return "\n".join(e.render() for e in self.events)


#: A module-level disabled tracer used as the default everywhere.
NULL_TRACER = Tracer(enabled=False)
