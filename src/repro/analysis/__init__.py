"""Closed-form analytic models (Sections 2/3.4), per-hop capacity floors,
and the paper-claim validation bands."""

from repro.analysis.capacity import (
    bmmm_transaction_time,
    max_forwarding_rate,
    rmac_transaction_time,
    saturation_rate,
)
from repro.analysis.validation import CLAIMS, all_pass, validate
from repro.analysis.overhead import (
    abt_detection_time,
    bmmm_control_overhead,
    bmw_transaction_time,
    max_receivers_per_mrts,
    mrts_bytes,
    rmac_control_overhead,
    rmac_min_exchange_time,
)

__all__ = [
    "abt_detection_time",
    "bmmm_control_overhead",
    "bmw_transaction_time",
    "max_receivers_per_mrts",
    "mrts_bytes",
    "rmac_control_overhead",
    "rmac_min_exchange_time",
    "bmmm_transaction_time",
    "max_forwarding_rate",
    "rmac_transaction_time",
    "saturation_rate",
    "CLAIMS",
    "all_pass",
    "validate",
]
