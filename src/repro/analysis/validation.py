"""The paper's quantitative claims, encoded as checkable bands.

Section 4 and the conclusion make concrete claims ("R_deliv is close to
1 when stationary", "R_txoh is around 0.2 in case of stationary nodes",
"the MRTS length ... is less than 74 bytes in most cases", ...). This
module turns each into a :class:`Claim` with an explicit tolerance band,
so a sweep can be *validated* mechanically — `python -m repro validate`
prints a pass/fail table, and regressions in the protocol implementation
surface as claim failures rather than silently shifted numbers.

Bands are deliberately wider than the paper's point values: they encode
the claim's *shape* (orderings and magnitudes) at bench scale, per the
reproduction brief.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import SweepResult


@dataclass(frozen=True)
class Claim:
    """One checkable claim from the paper."""

    claim_id: str
    source: str          # where the paper states it
    statement: str       # the claim, paraphrased
    check: Callable[[Dict[tuple, SweepResult]], Optional[bool]]

    def evaluate(self, points: Dict[tuple, SweepResult]) -> Optional[bool]:
        """True/False, or None when the sweep lacks the needed points."""
        try:
            return self.check(points)
        except KeyError:
            return None


def _points_by_key(results: Sequence[SweepResult]) -> Dict[tuple, SweepResult]:
    return {(r.protocol, r.scenario, r.rate_pps): r for r in results}


def _stationary(points, protocol, metric):
    values = [v[metric] for (p, s, _), v in points.items()
              if p == protocol and s == "stationary" and v[metric] is not None]
    if not values:
        raise KeyError("no stationary points")
    return values


def _mobile(points, protocol, metric):
    values = [v[metric] for (p, s, _), v in points.items()
              if p == protocol and s in ("speed1", "speed2")
              and v[metric] is not None]
    if not values:
        raise KeyError("no mobile points")
    return values


def _paired(points, scenario_filter, metric):
    pairs = []
    for (p, s, r), v in points.items():
        if p != "rmac" or not scenario_filter(s):
            continue
        other = points.get(("bmmm", s, r))
        if other is not None and v[metric] is not None and other[metric] is not None:
            pairs.append((v[metric], other[metric]))
    if not pairs:
        raise KeyError("no paired points")
    return pairs


CLAIMS: List[Claim] = [
    Claim(
        "deliv-static",
        "Fig. 7a / Conclusion",
        "stationary R_deliv close to 1 for RMAC",
        lambda pts: min(_stationary(pts, "rmac", "delivery_ratio")) > 0.95,
    ),
    Claim(
        "deliv-mobile-ordering",
        "Fig. 7b,c / Conclusion",
        "mobile R_deliv drops but stays above BMMM's",
        lambda pts: all(r >= b for r, b in _paired(
            pts, lambda s: s != "stationary", "delivery_ratio"))
        and max(_mobile(pts, "rmac", "delivery_ratio")) < 0.99,
    ),
    Claim(
        "drop-static",
        "Fig. 8a",
        "stationary R_drop tiny for RMAC (paper: ~0.003 at 120 pkt/s)",
        lambda pts: max(_stationary(pts, "rmac", "avg_drop_ratio")) < 0.02,
    ),
    Claim(
        "delay-ordering",
        "Fig. 9",
        "RMAC's end-to-end delay below BMMM's everywhere",
        lambda pts: all(r < b for r, b in _paired(
            pts, lambda s: True, "avg_delay_s")),
    ),
    Claim(
        "delay-bounded",
        "Fig. 9 / Conclusion",
        "RMAC's average delay under 2 s at every point",
        lambda pts: max(_stationary(pts, "rmac", "avg_delay_s")
                        + _mobile(pts, "rmac", "avg_delay_s")) < 2.0,
    ),
    Claim(
        "retx-static",
        "Fig. 10 / Conclusion",
        "stationary R_retx low for RMAC (paper: <= 0.32)",
        lambda pts: min(_stationary(pts, "rmac", "avg_retx_ratio")) < 0.45,
    ),
    Claim(
        "retx-mobile",
        "Fig. 10 / Conclusion",
        "mobile R_retx around 1 for RMAC (paper: < 1.3)",
        lambda pts: max(_mobile(pts, "rmac", "avg_retx_ratio")) < 2.0,
    ),
    Claim(
        "txoh-static",
        "Fig. 11 / Conclusion",
        "stationary R_txoh around 0.2 for RMAC vs ~1.0 for BMMM",
        lambda pts: max(_stationary(pts, "rmac", "avg_txoh_ratio")) < 0.4
        and all(b > 2 * r for r, b in _paired(
            pts, lambda s: s == "stationary", "avg_txoh_ratio")),
    ),
    Claim(
        "txoh-mobile",
        "Conclusion",
        "mobile R_txoh below ~1.1 for RMAC",
        lambda pts: max(_mobile(pts, "rmac", "avg_txoh_ratio")) < 1.3,
    ),
    Claim(
        "mrts-short",
        "Fig. 12 / Conclusion",
        "MRTS average short, 99% under 74 bytes",
        lambda pts: max(_stationary(pts, "rmac", "mrts_len_avg")
                        + _mobile(pts, "rmac", "mrts_len_avg")) < 74
        and max(_stationary(pts, "rmac", "mrts_len_p99")) <= 74,
    ),
    Claim(
        "abort-rare",
        "Fig. 13 / Conclusion",
        "MRTS abortion rare (paper: avg < 0.0035 stationary)",
        lambda pts: max(_stationary(pts, "rmac", "abort_avg")
                        + _mobile(pts, "rmac", "abort_avg")) < 0.02,
    ),
]


def validate(results: Sequence[SweepResult]) -> List[dict]:
    """Evaluate every claim against a sweep; returns printable rows."""
    points = _points_by_key(results)
    rows = []
    for claim in CLAIMS:
        verdict = claim.evaluate(points)
        rows.append({
            "claim": claim.claim_id,
            "source": claim.source,
            "statement": claim.statement,
            "verdict": {True: "PASS", False: "FAIL", None: "n/a"}[verdict],
        })
    return rows


def all_pass(rows: Sequence[dict]) -> bool:
    """True if no claim failed (n/a rows do not count as failures)."""
    return all(row["verdict"] != "FAIL" for row in rows)


def validate_store(store) -> List[dict]:
    """Evaluate every claim against an on-disk result store
    (``repro validate --from DIR``): aggregates whatever points the
    store holds — no simulation — and claims whose points are missing
    report ``n/a`` rather than failing, so a partially-populated
    campaign can be sanity-checked while it is still running."""
    from repro.experiments.runner import results_from_store

    return validate(results_from_store(store, ("rmac", "bmmm")))
