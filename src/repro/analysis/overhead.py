"""The paper's closed-form overhead arithmetic.

Section 2 derives: 96 us of physical-layer overhead per frame, a 56 us
ACK payload airtime, and a total of 632 n us of control-frame cost per
BMMM data frame (2n pairs: RTS 20 B + CTS/RAK/ACK 14 B each, all at
2 Mb/s plus 96 us PHY overhead per frame).

Section 3.4 derives the 20-receiver MRTS cap: an ABT detection takes
17 us and the shortest MRTS + shortest data exchange takes 352 us, so at
most floor(352 / 17) = 20 ABT windows fit before a neighboring Reliable
Send could complete and alias its ABT into ours.

All functions take a :class:`~repro.phy.params.PhyParams` so ablations
can re-derive the numbers for other PHYs.
"""

from __future__ import annotations

from repro.mac.frames import (
    ACK_BYTES,
    CTS_BYTES,
    MRTS_FIXED_BYTES,
    ADDRESS_BYTES,
    RAK_BYTES,
    RMAC_DATA_OVERHEAD,
    RTS_BYTES,
)
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.sim.units import US


def mrts_bytes(n_receivers: int) -> int:
    """MRTS size: 12 + 6 n bytes (Fig. 3)."""
    if n_receivers < 1:
        raise ValueError("MRTS needs at least one receiver")
    return MRTS_FIXED_BYTES + ADDRESS_BYTES * n_receivers


def bmmm_control_overhead(n_receivers: int, phy: PhyParams = DEFAULT_PHY) -> int:
    """Airtime (ns) of BMMM's 2n control-frame pairs for one data frame.

    With 802.11b parameters this is exactly 632 n us, the number
    Section 2 quotes.
    """
    if n_receivers < 1:
        raise ValueError("need at least one receiver")
    per_receiver = (
        phy.frame_airtime(RTS_BYTES)
        + phy.frame_airtime(CTS_BYTES)
        + phy.frame_airtime(RAK_BYTES)
        + phy.frame_airtime(ACK_BYTES)
    )
    return n_receivers * per_receiver


def rmac_control_overhead(
    n_receivers: int, phy: PhyParams = DEFAULT_PHY, tau: int = 1 * US
) -> int:
    """Airtime (ns) of RMAC's control machinery for one data frame:
    the MRTS plus the n ABT windows (2 tau + lambda each).

    The paper's headline comparison: one frame of 12 + 6n bytes versus
    BMMM's 2n whole control frames.
    """
    l_abt = 2 * tau + phy.cca_time
    return phy.frame_airtime(mrts_bytes(n_receivers)) + n_receivers * l_abt


def abt_detection_time(phy: PhyParams = DEFAULT_PHY, tau: int = 1 * US) -> int:
    """One ABT window: 2 tau + lambda = 17 us with paper values."""
    return 2 * tau + phy.cca_time


def rmac_min_exchange_time(phy: PhyParams = DEFAULT_PHY) -> int:
    """Shortest MRTS (1 receiver, 18 B) + shortest data frame airtime.

    352 us with the paper's parameters: the numerator of the Section 3.4
    receiver-limit derivation.
    """
    shortest_mrts = phy.frame_airtime(mrts_bytes(1))
    shortest_data = phy.frame_airtime(RMAC_DATA_OVERHEAD)  # empty payload
    return shortest_mrts + shortest_data


def max_receivers_per_mrts(phy: PhyParams = DEFAULT_PHY, tau: int = 1 * US) -> int:
    """Section 3.4: floor(shortest-exchange / ABT-window) = 20."""
    return rmac_min_exchange_time(phy) // abt_detection_time(phy, tau)


def bmw_transaction_time(
    n_receivers: int,
    payload_bytes: int,
    phy: PhyParams = DEFAULT_PHY,
    data_overhead: int = 28,
) -> int:
    """Nominal airtime of BMW's n sequential unicasts (Fig. 1a), ignoring
    contention: n x (RTS + CTS + DATA + ACK + 3 SIFS). Used to compare the
    protocols' floor costs in the overhead bench."""
    if n_receivers < 1:
        raise ValueError("need at least one receiver")
    one = (
        phy.frame_airtime(RTS_BYTES)
        + phy.frame_airtime(CTS_BYTES)
        + phy.frame_airtime(payload_bytes + data_overhead)
        + phy.frame_airtime(ACK_BYTES)
        + 3 * phy.sifs
    )
    return n_receivers * one
