"""Closed-form per-hop capacity: where Fig. 9's delay knee comes from.

A reliable multicast transaction occupies the channel for a deterministic
floor time (control + data + acknowledgment), so a forwarding node with
``n`` children can sustain at most ``1 / transaction_time`` packets per
second before its queue grows without bound. The source's neighborhood
additionally carries every child's forwarding, which is why delay rises
with rate well before the raw airtime saturates.

These formulas give the *floor* (zero contention, zero retransmission);
the simulator adds backoff, contention and retries on top. The capacity
bench checks the simulated knee lands above the floor prediction.
"""

from __future__ import annotations

from repro.analysis.overhead import mrts_bytes
from repro.mac.frames import (
    ACK_BYTES,
    CTS_BYTES,
    DOT11_DATA_OVERHEAD,
    RAK_BYTES,
    RMAC_DATA_OVERHEAD,
    RTS_BYTES,
)
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.sim.units import SEC, US


def rmac_transaction_time(
    n_receivers: int,
    payload_bytes: int,
    phy: PhyParams = DEFAULT_PHY,
    tau: int = 1 * US,
) -> int:
    """Airtime floor of one successful RMAC Reliable Send (ns):
    MRTS + Twf_rbt + DATA + n ABT windows."""
    l_abt = 2 * tau + phy.cca_time
    return (
        phy.frame_airtime(mrts_bytes(n_receivers))
        + l_abt  # Twf_rbt
        + phy.frame_airtime(payload_bytes + RMAC_DATA_OVERHEAD)
        + n_receivers * l_abt
    )


def bmmm_transaction_time(
    n_receivers: int,
    payload_bytes: int,
    phy: PhyParams = DEFAULT_PHY,
) -> int:
    """Airtime floor of one successful BMMM round (ns): n RTS/CTS pairs,
    DATA, n RAK/ACK pairs, all SIFS-separated."""
    sifs = phy.sifs
    per_receiver = (
        phy.frame_airtime(RTS_BYTES)
        + phy.frame_airtime(CTS_BYTES)
        + phy.frame_airtime(RAK_BYTES)
        + phy.frame_airtime(ACK_BYTES)
        + 4 * sifs
    )
    return (
        n_receivers * per_receiver
        + phy.frame_airtime(payload_bytes + DOT11_DATA_OVERHEAD)
        + sifs
    )


def max_forwarding_rate(transaction_time_ns: int) -> float:
    """Packets/second one node can push through back-to-back transactions."""
    if transaction_time_ns <= 0:
        raise ValueError("transaction time must be positive")
    return SEC / transaction_time_ns


def saturation_rate(
    n_receivers: int,
    payload_bytes: int,
    forwarders_sharing_channel: int,
    protocol: str = "rmac",
    phy: PhyParams = DEFAULT_PHY,
) -> float:
    """Source rate (pkt/s) at which a neighborhood of
    ``forwarders_sharing_channel`` nodes, each forwarding every packet to
    ``n_receivers`` children, saturates the shared channel."""
    if forwarders_sharing_channel <= 0:
        raise ValueError("need at least one forwarder")
    if protocol == "rmac":
        per_packet = rmac_transaction_time(n_receivers, payload_bytes, phy)
    elif protocol == "bmmm":
        per_packet = bmmm_transaction_time(n_receivers, payload_bytes, phy)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    return max_forwarding_rate(per_packet * forwarders_sharing_channel)
