"""repro -- a reproduction of "RMAC: A Reliable Multicast MAC Protocol for
Wireless Ad Hoc Networks" (Weisheng Si and Chengzhi Li, ICPP 2004).

The package contains everything the paper's evaluation needs, built from
scratch:

* a deterministic discrete-event engine (:mod:`repro.sim`);
* a wireless PHY with a shared data channel, per-receiver collision
  bookkeeping and the two narrow-band busy-tone channels RMAC introduces
  (:mod:`repro.phy`);
* the RMAC protocol itself (:mod:`repro.core`) plus the comparison
  protocols: IEEE 802.11 DCF, BMMM, BMW, LBP and an 802.11MX-style
  receiver-initiated variant (:mod:`repro.mac`);
* the paper's workload: a simplified BLESS tree and single-source tree
  multicast over 75 mobile nodes (:mod:`repro.net`, :mod:`repro.mobility`,
  :mod:`repro.world`);
* metrics and an experiment harness regenerating Figs. 6-13
  (:mod:`repro.metrics`, :mod:`repro.experiments`, :mod:`repro.analysis`).

Quickstart::

    from repro import ScenarioConfig, build_network

    summary = build_network(ScenarioConfig(
        protocol="rmac", n_nodes=40, rate_pps=10, n_packets=100, seed=1,
    )).run()
    print(summary.delivery_ratio)
"""

from repro.core import RmacConfig, RmacProtocol
from repro.experiments import run_point, run_sweep
from repro.mac.base import BROADCAST, MacProtocol, SendOutcome, SendRequest
from repro.metrics import MetricsCollector, RunSummary, summarize
from repro.sim import Simulator
from repro.world.network import (
    Network,
    PROTOCOLS,
    ScenarioConfig,
    build_network,
    register_protocol,
)
from repro.world.testbed import MacTestbed

__version__ = "1.0.0"

__all__ = [
    "RmacConfig",
    "RmacProtocol",
    "run_point",
    "run_sweep",
    "BROADCAST",
    "MacProtocol",
    "SendOutcome",
    "SendRequest",
    "MetricsCollector",
    "RunSummary",
    "summarize",
    "Simulator",
    "Network",
    "PROTOCOLS",
    "ScenarioConfig",
    "build_network",
    "register_protocol",
    "MacTestbed",
    "__version__",
]
