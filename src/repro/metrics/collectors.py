"""Application-level metric collection.

The MAC layer keeps its own counters (:class:`repro.mac.stats.MacStats`);
this collector records what only the application can see: which packets
were generated, which node received which packet, and the end-to-end
delay of every reception. Together they produce every figure of
Section 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MetricsCollector:
    """Shared, per-run collector the multicast apps report into."""

    def __init__(self, keep_delays: bool = False):
        #: pkt_id -> generation time (ns) at the source.
        self.generated: Dict[int, int] = {}
        #: node -> number of distinct packets received.
        self.deliveries_per_node: Dict[int, int] = {}
        self._delay_sum = 0
        self._delay_count = 0
        self._delay_max = 0
        self.keep_delays = keep_delays
        #: every (node, pkt_id, delay_ns) if keep_delays (tests, deep dives).
        self.delay_records: List[tuple] = []

    # ------------------------------------------------------------------
    def record_generated(self, pkt_id: int, time_ns: int) -> None:
        self.generated[pkt_id] = time_ns

    def record_delivery(self, node: int, pkt_id: int, delay_ns: int) -> None:
        self.deliveries_per_node[node] = self.deliveries_per_node.get(node, 0) + 1
        self._delay_sum += delay_ns
        self._delay_count += 1
        self._delay_max = max(self._delay_max, delay_ns)
        if self.keep_delays:
            self.delay_records.append((node, pkt_id, delay_ns))

    # ------------------------------------------------------------------
    @property
    def n_generated(self) -> int:
        return len(self.generated)

    @property
    def total_deliveries(self) -> int:
        return sum(self.deliveries_per_node.values())

    def delivery_ratio(self, n_nodes: int) -> Optional[float]:
        """R_deliv: receptions over (packets x non-source nodes)."""
        expected = self.n_generated * (n_nodes - 1)
        if expected == 0:
            return None
        return self.total_deliveries / expected

    def mean_delay_ns(self) -> Optional[float]:
        """Average end-to-end delay over every reception (Fig. 9's D)."""
        if self._delay_count == 0:
            return None
        return self._delay_sum / self._delay_count

    def max_delay_ns(self) -> int:
        return self._delay_max
