"""Delay distributions (extension beyond the paper's averages).

The paper reports only the mean end-to-end delay (Fig. 9). For a system
that claims *reliability*, tail latency matters too; collect with
``MetricsCollector(keep_delays=True)`` and summarize here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.metrics.collectors import MetricsCollector
from repro.sim.units import SEC


@dataclass(frozen=True)
class DelayDistribution:
    """Percentiles of end-to-end delay, in seconds."""

    count: int
    mean_s: float
    p50_s: float
    p90_s: float
    p99_s: float
    max_s: float

    def as_row(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean (s)": self.mean_s,
            "p50 (s)": self.p50_s,
            "p90 (s)": self.p90_s,
            "p99 (s)": self.p99_s,
            "max (s)": self.max_s,
        }


def delay_distribution(metrics: MetricsCollector) -> DelayDistribution:
    """Distribution over every recorded reception.

    Requires the collector to have been created with ``keep_delays=True``
    (raises ValueError otherwise, rather than silently reporting zeros).
    """
    if not metrics.keep_delays:
        raise ValueError("collector was not keeping delays; "
                         "construct it with keep_delays=True")
    delays = np.array([d for _, _, d in metrics.delay_records], dtype=float)
    if len(delays) == 0:
        return DelayDistribution(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DelayDistribution(
        count=len(delays),
        mean_s=float(delays.mean()) / SEC,
        p50_s=float(np.percentile(delays, 50)) / SEC,
        p90_s=float(np.percentile(delays, 90)) / SEC,
        p99_s=float(np.percentile(delays, 99)) / SEC,
        max_s=float(delays.max()) / SEC,
    )


def per_node_delay_means(metrics: MetricsCollector) -> Dict[int, float]:
    """Mean delay (s) per receiving node -- exposes depth-in-tree effects:
    deeper nodes pay one queueing + transaction time per hop."""
    if not metrics.keep_delays:
        raise ValueError("collector was not keeping delays")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for node, _pkt, delay in metrics.delay_records:
        sums[node] = sums.get(node, 0.0) + delay
        counts[node] = counts.get(node, 0) + 1
    return {node: (sums[node] / counts[node]) / SEC for node in sums}
