"""Metrics: per-run collection and the paper's aggregate figures."""

from repro.metrics.collectors import MetricsCollector
from repro.metrics.distributions import (
    DelayDistribution,
    delay_distribution,
    per_node_delay_means,
)
from repro.metrics.summary import RunSummary, summarize

__all__ = [
    "MetricsCollector",
    "DelayDistribution",
    "delay_distribution",
    "per_node_delay_means",
    "RunSummary",
    "summarize",
]
