"""Per-run aggregation into the paper's reported quantities.

One :class:`RunSummary` holds every number a single experiment
contributes to Figs. 7-13:

* Fig. 7  -- ``delivery_ratio``                         (R_deliv)
* Fig. 8  -- ``avg_drop_ratio`` over non-leaf nodes     (R_drop)
* Fig. 9  -- ``avg_delay_s``                            (D)
* Fig. 10 -- ``avg_retx_ratio`` over non-leaf nodes     (R_retx)
* Fig. 11 -- ``avg_txoh_ratio`` over non-leaf nodes     (R_txoh)
* Fig. 12 -- ``mrts_len_{avg,p99,max}`` over all MRTSs  (RMAC only)
* Fig. 13 -- ``abort_{avg,p99,max}`` over non-leaf nodes (RMAC only)

"Non-leaf" follows the paper's definition: a node that forwarded packets
("for a leaf node, since it forwards no packets, it drops no packets") --
operationally, ``packets_offered > 0``, with the source excluded from no
figure (it forwards too). Fig. 12 pools frames; Fig. 13 takes per-node
ratios; both match the paper's captions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.mac.stats import MacStats
from repro.metrics.collectors import MetricsCollector
from repro.sim.units import SEC


def _mean(values: Sequence[float]) -> Optional[float]:
    return float(np.mean(values)) if len(values) else None


def _p99(values: Sequence[float]) -> Optional[float]:
    return float(np.percentile(values, 99)) if len(values) else None


@dataclass(frozen=True)
class RunSummary:
    """All figure inputs from one simulation run."""

    protocol: str
    n_nodes: int
    n_generated: int
    total_deliveries: int
    delivery_ratio: Optional[float]
    avg_delay_s: Optional[float]
    max_delay_s: float
    avg_drop_ratio: Optional[float]
    avg_retx_ratio: Optional[float]
    avg_txoh_ratio: Optional[float]
    mrts_len_avg: Optional[float]
    mrts_len_p99: Optional[float]
    mrts_len_max: Optional[float]
    abort_avg: Optional[float]
    abort_p99: Optional[float]
    abort_max: Optional[float]
    n_forwarders: int
    total_drops: int
    total_retransmissions: int
    # --- run telemetry (None unless the run collected it) -------------
    #: Simulator events executed during the run.
    events_processed: Optional[int] = None
    #: Wall-clock seconds the event loop ran.
    wall_time_s: Optional[float] = None
    #: Event-loop throughput (events per wall second).
    events_per_sec: Optional[float] = None
    #: Full telemetry report (see repro.sim.telemetry), JSON-serializable.
    telemetry: Optional[dict] = None
    # --- invariant oracle (None unless the run attached it) ------------
    #: Total invariant violations the oracle counted (0 = clean run).
    oracle_violations: Optional[int] = None
    #: Full oracle report (see repro.oracle), JSON-serializable:
    #: per-rule counts plus a bounded sample of full violations.
    oracle_report: Optional[dict] = None
    # --- SINR interference stats (None on the threshold path) ----------
    #: Per-run interference stats (see repro.phy.sinr.SinrState.stats):
    #: SINR-dropped receptions, deliveries, mean/min SINR at delivery,
    #: and the concurrent-signal high-water mark.
    sinr: Optional[dict] = None

    # -- stable serialization (the result store's record payload) ------
    def to_dict(self) -> dict:
        """JSON-serializable dict of every field. All metric fields are
        plain Python ints/floats/None, so a ``json`` round trip through
        :meth:`from_dict` reconstructs a bit-identical summary."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSummary":
        """Rebuild a summary from :meth:`to_dict` output.

        Compatibility: unknown keys are ignored (records written by
        newer code load under older code); fields this version added
        with defaults fall back to those defaults; a payload missing a
        *required* field raises ``ValueError`` naming it.
        """
        fields = dataclasses.fields(cls)
        known = {f.name for f in fields}
        kwargs = {k: v for k, v in payload.items() if k in known}
        missing = [
            f.name for f in fields
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            and f.name not in kwargs
        ]
        if missing:
            raise ValueError(
                f"RunSummary payload missing required field(s) {missing}; "
                f"the store record predates a schema change and must be "
                f"re-run"
            )
        return cls(**kwargs)


def summarize(
    protocol: str,
    metrics: MetricsCollector,
    stats: Sequence[MacStats],
    telemetry=None,
    oracle: Optional[dict] = None,
    sinr: Optional[dict] = None,
) -> RunSummary:
    """Aggregate one run's collector + per-node MAC stats.

    ``telemetry`` is an optional :class:`~repro.sim.telemetry.TelemetryReport`
    surfacing the run's event-loop throughput alongside its metrics.
    ``oracle`` is an optional :meth:`repro.oracle.InvariantOracle.report`
    dict; its violation count also lands in the telemetry dict (when
    both are collected) so operational dashboards see one payload.
    ``sinr`` is an optional :meth:`repro.phy.sinr.SinrState.stats` dict
    (interference drops, SINR at delivery, concurrency high-water).
    """
    forwarders = [s for s in stats if s.packets_offered > 0]

    drop_ratios = [r for r in (s.drop_ratio() for s in forwarders) if r is not None]
    retx_ratios = [
        r for r in (s.retransmission_ratio() for s in forwarders) if r is not None
    ]
    txoh_ratios = [r for r in (s.overhead_ratio() for s in forwarders) if r is not None]

    mrts_lengths: List[int] = []
    for s in stats:
        mrts_lengths.extend(s.mrts_length_values())

    abort_ratios = [r for r in (s.abort_ratio() for s in forwarders) if r is not None]

    mean_delay = metrics.mean_delay_ns()
    telemetry_dict = telemetry.to_dict() if telemetry is not None else None
    if telemetry_dict is not None and oracle is not None:
        telemetry_dict["oracle_violations"] = oracle["total"]
    return RunSummary(
        protocol=protocol,
        n_nodes=len(stats),
        n_generated=metrics.n_generated,
        total_deliveries=metrics.total_deliveries,
        delivery_ratio=metrics.delivery_ratio(len(stats)),
        avg_delay_s=(mean_delay / SEC) if mean_delay is not None else None,
        max_delay_s=metrics.max_delay_ns() / SEC,
        avg_drop_ratio=_mean(drop_ratios),
        avg_retx_ratio=_mean(retx_ratios),
        avg_txoh_ratio=_mean(txoh_ratios),
        mrts_len_avg=_mean(mrts_lengths),
        mrts_len_p99=_p99(mrts_lengths),
        mrts_len_max=float(max(mrts_lengths)) if mrts_lengths else None,
        abort_avg=_mean(abort_ratios),
        abort_p99=_p99(abort_ratios),
        abort_max=float(max(abort_ratios)) if abort_ratios else None,
        n_forwarders=len(forwarders),
        total_drops=sum(s.packets_dropped for s in stats),
        total_retransmissions=sum(s.retransmissions for s in stats),
        events_processed=telemetry.events if telemetry is not None else None,
        wall_time_s=telemetry.wall_s if telemetry is not None else None,
        events_per_sec=telemetry.events_per_sec if telemetry is not None else None,
        telemetry=telemetry_dict,
        oracle_violations=oracle["total"] if oracle is not None else None,
        oracle_report=oracle if oracle is not None else None,
        sinr=sinr,
    )
