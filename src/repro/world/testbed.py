"""Protocol-level assembly for tests, examples and MAC-only benchmarks.

A :class:`MacTestbed` wires a simulator, the data channel, the RBT/ABT
busy-tone channels and one radio per node from a set of coordinates (or a
mobility-driven position provider), then builds MAC instances on request.
It is the smallest thing that can run a real RMAC/BMMM exchange; the full
network stack (routing tree + multicast application) composes on top in
:mod:`repro.world.network`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.channel import DataChannel
from repro.phy.error import BitErrorModel
from repro.phy.neighbors import NeighborService, PositionProvider, StaticPositions
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.phy.propagation import PropagationModel, UnitDiskModel
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.injector import FaultInjector
    from repro.phy.sinr import SinrConfig, SinrState


class MacTestbed:
    """Simulator + channels + one radio per node."""

    def __init__(
        self,
        coords: Optional[Sequence[Sequence[float]]] = None,
        *,
        provider: Optional[PositionProvider] = None,
        n_nodes: Optional[int] = None,
        phy: PhyParams = DEFAULT_PHY,
        propagation: Optional[PropagationModel] = None,
        error_model: Optional[BitErrorModel] = None,
        seed: int = 1,
        trace: bool = False,
        tracer: Optional[Tracer] = None,
        cache_window: int = 50_000_000,
        neighbor_indexing: str = "auto",
        capture_threshold_db: Optional[float] = None,
        faults: Optional["FaultInjector"] = None,
        sinr: Optional["SinrConfig"] = None,
        kernel: str = "heap",
    ):
        if provider is None:
            if coords is None:
                raise ValueError("give either coords or a position provider")
            provider = StaticPositions(coords)
            n_nodes = len(coords)
        if n_nodes is None:
            raise ValueError("n_nodes is required with a custom provider")
        self.n_nodes = n_nodes
        self.phy = phy
        self.sim = Simulator(kernel=kernel)
        self.rngs = RngRegistry(seed)
        #: ``tracer`` overrides the default (e.g. to use a RingBuffer or
        #: JsonlTraceSink backend); otherwise one is built from ``trace``.
        self.tracer = tracer if tracer is not None else Tracer(enabled=trace)
        #: SINR subsystem (see repro.phy.sinr): the wiring supplies the
        #: propagation model and the power-domain link spec; the per-run
        #: channel state (tracker/counters) hangs off the data channel.
        self.sinr_state: Optional["SinrState"] = None
        power_spec = None
        tone_threshold = None
        if sinr is not None:
            if propagation is not None:
                raise ValueError(
                    "give either a propagation model or a SinrConfig "
                    "(the SINR wiring builds its own model)")
            from repro.phy.sinr import wire_sinr

            wiring = wire_sinr(sinr, phy, n_nodes, seed)
            model: PropagationModel = wiring.model
            power_spec = wiring.power_spec
            tone_threshold = wiring.tone_threshold_dbm
            self.sinr_state = wiring.build_state(self.rngs.stream("fading"))
        else:
            model = propagation or UnitDiskModel(phy.radio_range)
        #: ``neighbor_indexing``: "auto" (grid at >= GRID_THRESHOLD nodes),
        #: "grid", or "brute" -- see repro.phy.neighbors.
        self.neighbors = NeighborService(
            provider, model, cache_window=cache_window,
            indexing=neighbor_indexing, power_spec=power_spec,
        )
        #: Optional fault injector shared by the data and tone channels.
        self.faults = faults
        self.data_channel = DataChannel(
            self.sim,
            self.neighbors,
            phy,
            error_model=error_model,
            rng=self.rngs.stream("channel"),
            tracer=self.tracer,
            capture_threshold_db=capture_threshold_db,
            faults=faults,
            sinr=self.sinr_state,
        )
        self.tones: Dict[ToneType, BusyToneChannel] = {
            tone: BusyToneChannel(
                self.sim, self.neighbors, tone, detect_time=phy.cca_time,
                tracer=self.tracer, faults=faults,
                power_threshold_dbm=tone_threshold,
            )
            for tone in ToneType
        }
        self.radios: List[Radio] = [
            Radio(i, self.data_channel, self.tones) for i in range(n_nodes)
        ]
        self.macs: List[object] = [None] * n_nodes

    def node_rng(self, node_id: int) -> random.Random:
        """The deterministic backoff RNG stream for one node."""
        return self.rngs.stream("mac", node_id)

    def build_macs(self, factory: Callable[[int, "MacTestbed"], object]) -> List[object]:
        """Construct one MAC per node via ``factory(node_id, testbed)``."""
        self.macs = [factory(i, self) for i in range(self.n_nodes)]
        for mac in self.macs:
            mac.start()  # type: ignore[attr-defined]
        return self.macs

    def run(self, until: int) -> int:
        """Run the simulation until ``until`` ns."""
        return self.sim.run(until=until)
