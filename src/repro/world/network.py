"""Full-stack network assembly from a scenario description.

A :class:`ScenarioConfig` describes one experiment run exactly as
Section 4.1 does: node count, plain, radio range, mobility setting,
MAC protocol under test, source rate, packet count, seed.
:func:`build_network` wires placement -> mobility -> PHY -> MAC ->
BLESS -> multicast app -> metrics, and :meth:`Network.run` executes the
run and returns the :class:`~repro.metrics.summary.RunSummary`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.core.config import RmacConfig
from repro.core.rmac import RmacProtocol
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mac.base import MacProtocol
from repro.mac.bmmm import BmmmProtocol
from repro.mac.dot11 import Dot11Config, Dot11Dcf
from repro.metrics.collectors import MetricsCollector
from repro.metrics.summary import RunSummary, summarize
from repro.mobility.base import MobilityProvider
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.net.bless import BlessConfig
from repro.net.multicast import MulticastConfig
from repro.net.stack import NetworkLayer
from repro.oracle import InvariantOracle
from repro.phy.sinr import SinrConfig
from repro.sim.rng import derive_seed
from repro.sim.telemetry import Telemetry
from repro.sim.trace import NullBuffer, Tracer
from repro.sim.units import SEC
from repro.world.placement import random_placement
from repro.world.testbed import MacTestbed


@dataclass(frozen=True)
class ScenarioConfig:
    """One experiment run (defaults follow Section 4.1)."""

    protocol: str = "rmac"
    n_nodes: int = 75
    width: float = 500.0
    height: float = 300.0
    radio_range: float = 75.0
    #: "stationary", or random waypoint with the speeds below.
    mobile: bool = False
    min_speed: float = 0.0
    max_speed: float = 4.0
    pause_s: float = 10.0
    rate_pps: float = 10.0
    n_packets: int = 200
    payload_bytes: int = 500
    seed: int = 1
    warmup_s: float = 5.0
    #: Extra time after the last source emission for in-flight packets.
    drain_s: float = 5.0
    #: BLESS heartbeat. The paper does not give its routing period; these
    #: defaults are calibrated against its Fig. 7: a 0.5 s heartbeat with
    #: a 4-period expiry keeps static delivery ~1.0 (shorter expiries let
    #: clustered hello losses evict live children under load) while
    #: repairing mobile trees fast enough to approach the paper's mobile
    #: delivery levels. The ablation bench sweeps the sensitivity.
    bless_period_s: float = 0.5
    bless_expiry_s: float = 2.0
    require_connected: bool = True
    trace: bool = False
    #: Attach event-loop telemetry (events/sec, per-label counts, heap
    #: depth) to the run; surfaced in the RunSummary's telemetry fields.
    collect_telemetry: bool = False
    #: Uniform bit-error rate on the data channel (0 = collision-only
    #: losses, the paper's setting). Section 3.4 notes the MRTS cap
    #: "can be further reduced in case of high error bit rate"; the BER
    #: ablation bench sweeps this.
    ber: float = 0.0
    #: Protocol-config overrides (e.g. {"retry_limit": 4}).
    mac_overrides: dict = field(default_factory=dict)
    #: Optional fault-injection plan (crashes, fades, corruption windows,
    #: replacement error model). Part of the config -- and therefore of
    #: the result store's config_hash -- so faulted campaign points
    #: resume exactly like fault-free ones. ``None`` hashes identically
    #: to configs that predate the field.
    faults: Optional[FaultPlan] = None
    #: Attach the protocol invariant oracle to the run (violations
    #: surface in the RunSummary). ``False`` hashes identically to
    #: configs that predate the field.
    oracle: bool = False
    #: Optional SINR interference subsystem (see repro.phy.sinr):
    #: accumulated-power reception, shadowing/fading propagation,
    #: heterogeneous radios. Part of the config hash; ``None`` (the
    #: threshold path) hashes identically to configs that predate the
    #: field, and keeps every channel hot path on one ``is None`` test.
    sinr: Optional[SinrConfig] = None

    #: Float-typed fields coerced in __post_init__ so a config built
    #: with ``rate_pps=10`` hashes and compares identically to one
    #: built with ``rate_pps=10.0`` (the result store keys points by a
    #: hash of the whole config).
    _FLOAT_FIELDS = ("width", "height", "radio_range", "min_speed",
                     "max_speed", "pause_s", "rate_pps", "warmup_s",
                     "drain_s", "bless_period_s", "bless_expiry_s", "ber")

    def __post_init__(self):
        for name in self._FLOAT_FIELDS:
            value = getattr(self, name)
            if type(value) is not float:
                object.__setattr__(self, name, float(value))

    def variant(self, **changes) -> "ScenarioConfig":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **changes)


#: MAC factory registry: name -> (node_id, testbed, rng, overrides) -> MAC.
MacFactory = Callable[[int, MacTestbed, random.Random, dict], MacProtocol]

PROTOCOLS: Dict[str, MacFactory] = {}


def register_protocol(name: str, factory: MacFactory) -> None:
    """Register a MAC protocol for use in scenarios (plug-in point)."""
    PROTOCOLS[name] = factory


def _make_rmac(node_id: int, tb: MacTestbed, rng: random.Random, overrides: dict):
    config = RmacConfig(phy=tb.phy, **overrides)
    return RmacProtocol(node_id, tb.sim, tb.radios[node_id], rng, config, tracer=tb.tracer)


def _make_bmmm(node_id: int, tb: MacTestbed, rng: random.Random, overrides: dict):
    config = Dot11Config(phy=tb.phy, **overrides)
    return BmmmProtocol(node_id, tb.sim, tb.radios[node_id], rng, config, tracer=tb.tracer)


def _make_dot11(node_id: int, tb: MacTestbed, rng: random.Random, overrides: dict):
    config = Dot11Config(phy=tb.phy, **overrides)
    return Dot11Dcf(node_id, tb.sim, tb.radios[node_id], rng, config, tracer=tb.tracer)


def _dot11_family(cls):
    def factory(node_id: int, tb: MacTestbed, rng: random.Random, overrides: dict):
        config = Dot11Config(phy=tb.phy, **overrides)
        return cls(node_id, tb.sim, tb.radios[node_id], rng, config, tracer=tb.tracer)

    return factory


register_protocol("rmac", _make_rmac)
register_protocol("bmmm", _make_bmmm)
register_protocol("dot11", _make_dot11)

# Extension protocols (see DESIGN.md): imported lazily to keep the core
# import graph small is unnecessary here -- the modules are tiny.
from repro.mac.bmw import BmwProtocol
from repro.mac.lamm import LammProtocol
from repro.mac.lbp import LbpProtocol
from repro.mac.mx import MxProtocol

register_protocol("bmw", _dot11_family(BmwProtocol))
register_protocol("lamm", _dot11_family(LammProtocol))
register_protocol("lbp", _dot11_family(LbpProtocol))
register_protocol("mx", _dot11_family(MxProtocol))


class Network:
    """A fully wired simulated network, ready to run.

    ``tracer`` overrides the testbed's default tracer -- the hook for
    bounded-memory backends (``RingBuffer``, ``JsonlTraceSink``) on long
    traced runs.
    """

    def __init__(self, config: ScenarioConfig, tracer: Optional[Tracer] = None,
                 kernel: str = "heap"):
        if config.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {config.protocol!r}; "
                f"registered: {sorted(PROTOCOLS)}"
            )
        self.config = config
        master = random.Random(derive_seed(config.seed, "placement"))
        self.coords = random_placement(
            config.n_nodes,
            config.width,
            config.height,
            master,
            radio_range=config.radio_range,
            require_connected=config.require_connected,
        )
        if config.mobile:
            models = []
            for i, (x, y) in enumerate(self.coords):
                leg_rng = random.Random(derive_seed(config.seed, "waypoint", i))
                models.append(
                    RandomWaypointModel(
                        x,
                        y,
                        config.width,
                        config.height,
                        config.min_speed,
                        config.max_speed,
                        config.pause_s,
                        leg_rng,
                    )
                )
        else:
            models = [StationaryModel(x, y) for x, y in self.coords]
        provider = MobilityProvider(models)

        from repro.phy.params import DEFAULT_PHY
        from dataclasses import replace as dc_replace

        phy = dc_replace(DEFAULT_PHY, radio_range=config.radio_range)
        from repro.phy.error import NoErrors, UniformBitErrors, error_model_from_dict

        plan = config.faults
        if plan is not None and plan.error_model is not None:
            # Rebuild from parameters so a stateful model (GilbertElliott)
            # starts fresh every run: replays stay bit-identical even when
            # one FaultPlan instance is shared across sweep points.
            error_model = error_model_from_dict(plan.error_model.to_dict())
        elif config.ber:
            error_model = UniformBitErrors(config.ber)
        else:
            error_model = NoErrors()
        injector = FaultInjector(plan) if plan else None
        if config.oracle and tracer is None and not config.trace:
            # The oracle needs the trace stream but the run did not ask
            # for a trace: enable one that retains nothing.
            tracer = Tracer(enabled=True, buffer=NullBuffer())
        self.testbed = MacTestbed(
            provider=provider,
            n_nodes=config.n_nodes,
            phy=phy,
            seed=config.seed,
            trace=config.trace,
            error_model=error_model,
            tracer=tracer,
            faults=injector,
            sinr=config.sinr,
            kernel=kernel,
        )
        tb = self.testbed
        self.oracle: Optional[InvariantOracle] = (
            InvariantOracle().attach(tb.tracer) if config.oracle else None
        )
        self.telemetry: Optional[Telemetry] = (
            Telemetry().attach(tb.sim) if config.collect_telemetry else None
        )
        factory = PROTOCOLS[config.protocol]
        self.macs: List[MacProtocol] = tb.build_macs(
            lambda i, t: factory(i, t, t.node_rng(i), config.mac_overrides)
        )
        self.metrics = MetricsCollector()
        bless_config = BlessConfig(
            period=round(config.bless_period_s * SEC),
            expiry=round(config.bless_expiry_s * SEC),
        )
        mc_config = MulticastConfig(
            rate_pps=config.rate_pps,
            n_packets=config.n_packets,
            payload_bytes=config.payload_bytes,
            start_time=round(config.warmup_s * SEC),
        )
        self.layers: List[NetworkLayer] = [
            NetworkLayer(
                i,
                tb.sim,
                self.macs[i],
                bless_config,
                mc_config,
                tb.rngs.stream("net", i),
                metrics=self.metrics,
            )
            for i in range(config.n_nodes)
        ]
        for layer in self.layers:
            layer.start()
        self._mc_config = mc_config

    @property
    def sim(self):
        return self.testbed.sim

    def run(self) -> RunSummary:
        """Run warm-up + traffic + drain and summarize."""
        end = self._mc_config.traffic_end + round(self.config.drain_s * SEC)
        self.sim.run(until=end)
        if self.oracle is not None:
            self.oracle.finish()
        self.testbed.tracer.close()
        return self.summary()

    def summary(self) -> RunSummary:
        sinr_state = self.testbed.sinr_state
        if self.telemetry is not None:
            # Neighbor-layer counters (link-table rebuilds, cache hits/
            # misses, grid cells/pairs touched) ride along in the
            # telemetry report as a named section.
            self.telemetry.set_section(
                "neighbors", self.testbed.neighbors.counters.as_dict()
            )
            if sinr_state is not None:
                # Interference stats: SINR-dropped receptions, mean/min
                # SINR at delivery, concurrent-signal high-water mark.
                self.telemetry.set_section("sinr", sinr_state.stats())
        return summarize(
            self.config.protocol,
            self.metrics,
            [mac.stats for mac in self.macs],
            telemetry=(
                self.telemetry.report(self.sim) if self.telemetry is not None else None
            ),
            oracle=self.oracle.report() if self.oracle is not None else None,
            sinr=sinr_state.stats() if sinr_state is not None else None,
        )


def build_network(config: ScenarioConfig, tracer: Optional[Tracer] = None,
                  kernel: str = "heap") -> Network:
    """Convenience constructor (the public API entry point).

    ``kernel`` picks the event-queue kernel (``"heap"`` | ``"calendar"``,
    see :mod:`repro.sim.engine`). It is a runtime knob, not part of
    :class:`ScenarioConfig`: kernels are bit-identical by contract
    (enforced by ``tools/kernel_ab.py`` in CI), so the scenario hash --
    and every recorded result -- is kernel-independent.
    """
    return Network(config, tracer=tracer, kernel=kernel)
