"""Random node placement for the paper's topologies.

The evaluation drops 75 nodes uniformly on a 500 m x 300 m plain with a
75 m radio range. With those densities the topology is essentially always
connected, but a disconnected draw would silently depress every delivery
metric, so :func:`random_placement` can (optionally, on by default)
redraw until the unit-disk graph is connected -- a standard hygiene step
the paper does not discuss; the ablation bench measures its effect.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np


def _unit_disk_adjacency(coords: np.ndarray, radio_range: float) -> List[List[int]]:
    deltas = coords[:, None, :] - coords[None, :, :]
    dists = np.hypot(deltas[..., 0], deltas[..., 1])
    adjacency: List[List[int]] = []
    n = len(coords)
    for i in range(n):
        adjacency.append([j for j in range(n) if j != i and dists[i, j] <= radio_range])
    return adjacency


def connected_components(
    coords: Sequence[Sequence[float]], radio_range: float
) -> List[List[int]]:
    """Connected components of the unit-disk graph, each sorted by id."""
    arr = np.asarray(coords, dtype=float)
    adjacency = _unit_disk_adjacency(arr, radio_range)
    seen = [False] * len(arr)
    components: List[List[int]] = []
    for start in range(len(arr)):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in adjacency[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(sorted(component))
    return components


def random_placement(
    n_nodes: int,
    width: float,
    height: float,
    rng: random.Random,
    radio_range: float = 75.0,
    require_connected: bool = True,
    max_tries: int = 200,
) -> List[Tuple[float, float]]:
    """Place ``n_nodes`` uniformly at random on a ``width x height`` plain.

    With ``require_connected`` the draw is repeated until the unit-disk
    graph at ``radio_range`` is connected (raises RuntimeError after
    ``max_tries`` -- a sign the density is simply too low).
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if width <= 0 or height <= 0:
        raise ValueError("area dimensions must be positive")
    for _ in range(max_tries):
        coords = [(rng.uniform(0, width), rng.uniform(0, height)) for _ in range(n_nodes)]
        if not require_connected or len(connected_components(coords, radio_range)) == 1:
            return coords
    raise RuntimeError(
        f"no connected placement of {n_nodes} nodes in {width}x{height} m "
        f"at range {radio_range} m after {max_tries} tries"
    )
