"""Random node placement for the paper's topologies.

The evaluation drops 75 nodes uniformly on a 500 m x 300 m plain with a
75 m radio range. With those densities the topology is essentially always
connected, but a disconnected draw would silently depress every delivery
metric, so :func:`random_placement` can (optionally, on by default)
redraw until the unit-disk graph is connected -- a standard hygiene step
the paper does not discuss; the ablation bench measures its effect.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np

from repro.phy.grid import SpatialGrid


def _unit_disk_adjacency_csr(
    coords: np.ndarray, radio_range: float
) -> Tuple[np.ndarray, List[int]]:
    """Unit-disk adjacency as (neighbor ids, per-node CSR bounds).

    Grid-pruned: candidate pairs come from 3 x 3 cell neighborhoods
    instead of the full n x n distance matrix, so connectivity checks on
    1000-node placement draws stay cheap (they re-run per rejected draw).
    """
    grid = SpatialGrid(coords, radio_range)
    senders, cands = grid.pairs()
    keep = senders != cands
    senders, cands = senders[keep], cands[keep]
    dists = np.hypot(coords[cands, 0] - coords[senders, 0],
                     coords[cands, 1] - coords[senders, 1])
    keep = dists <= radio_range
    senders, cands = senders[keep], cands[keep]
    order = np.argsort(senders, kind="stable")
    senders, cands = senders[order], cands[order]
    bounds = np.searchsorted(senders, np.arange(len(coords) + 1)).tolist()
    return cands, bounds


def connected_components(
    coords: Sequence[Sequence[float]], radio_range: float
) -> List[List[int]]:
    """Connected components of the unit-disk graph, each sorted by id."""
    arr = np.asarray(coords, dtype=float)
    neighbors, bounds = _unit_disk_adjacency_csr(arr, radio_range)
    seen = [False] * len(arr)
    components: List[List[int]] = []
    for start in range(len(arr)):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in neighbors[bounds[node]:bounds[node + 1]].tolist():
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(sorted(component))
    return components


def random_placement(
    n_nodes: int,
    width: float,
    height: float,
    rng: random.Random,
    radio_range: float = 75.0,
    require_connected: bool = True,
    max_tries: int = 200,
) -> List[Tuple[float, float]]:
    """Place ``n_nodes`` uniformly at random on a ``width x height`` plain.

    With ``require_connected`` the draw is repeated until the unit-disk
    graph at ``radio_range`` is connected (raises RuntimeError after
    ``max_tries`` -- a sign the density is simply too low).
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if width <= 0 or height <= 0:
        raise ValueError("area dimensions must be positive")
    for _ in range(max_tries):
        coords = [(rng.uniform(0, width), rng.uniform(0, height)) for _ in range(n_nodes)]
        if not require_connected or len(connected_components(coords, radio_range)) == 1:
            return coords
    raise RuntimeError(
        f"no connected placement of {n_nodes} nodes in {width}x{height} m "
        f"at range {radio_range} m after {max_tries} tries"
    )
