"""Assembly: placements, node stacks, and full simulated networks.

* :mod:`repro.world.testbed`   -- protocol-level assembly (sim + channels +
  radios + MAC instances) used by tests, examples and the MAC-only benches.
* :mod:`repro.world.placement` -- random node placement and connectivity
  checks for the paper's 75-node, 500 m x 300 m topologies.
* :mod:`repro.world.network`   -- the full stack (mobility + PHY + MAC +
  BLESS tree + multicast application) built from a scenario config.
"""

from repro.world.placement import connected_components, random_placement
from repro.world.testbed import MacTestbed

__all__ = ["MacTestbed", "random_placement", "connected_components"]
