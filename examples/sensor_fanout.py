"""Sparse-sensor fan-out: one-hop reliable multicast to a large group.

Usage::

    python examples/sensor_fanout.py

The paper's other motivating workload is sparse sensor networks where a
cluster head pushes configuration to many one-hop sensors at once. This
example drives the MAC service interface directly (no routing layer):
one head, N sensors in range, one Reliable Send per configuration blob.

It demonstrates two RMAC mechanisms end to end:

* the ordered ABT windows -- watch per-sensor acknowledgment with zero
  feedback frames;
* the Section 3.4 refinement -- with 30 sensors the send splits into a
  20-receiver and a 10-receiver invocation automatically.

It also prints the closed-form control-cost comparison against BMMM for
the same group size (Section 2 arithmetic).
"""

import math

from repro.analysis.overhead import bmmm_control_overhead, rmac_control_overhead
from repro.core import RmacConfig, RmacProtocol
from repro.experiments.report import format_table
from repro.sim.units import MS, US
from repro.world.testbed import MacTestbed


def ring_coords(n_sensors: int, radius: float = 60.0):
    coords = [(0.0, 0.0)]
    for k in range(n_sensors):
        angle = 2 * math.pi * k / n_sensors
        coords.append((radius * math.cos(angle), radius * math.sin(angle)))
    return coords


def main() -> None:
    n_sensors = 30
    testbed = MacTestbed(coords=ring_coords(n_sensors), seed=3)
    config = RmacConfig(phy=testbed.phy)
    testbed.build_macs(
        lambda i, t: RmacProtocol(i, t.sim, t.radios[i], t.node_rng(i), config)
    )

    deliveries = []
    for sensor in range(1, n_sensors + 1):
        mac = testbed.macs[sensor]
        mac.upper_rx = lambda p, s, sensor=sensor: deliveries.append(sensor)

    outcomes = []
    head = testbed.macs[0]
    head.send_reliable(
        tuple(range(1, n_sensors + 1)), payload="config-v7", payload_bytes=500,
        on_complete=outcomes.append,
    )
    testbed.run(200 * MS)

    outcome = outcomes[0]
    print(f"sensors configured: {len(set(deliveries))}/{n_sensors}")
    print(f"acked: {len(outcome.acked)}, failed: {len(outcome.failed)}, "
          f"dropped: {outcome.dropped}")
    stats = head.stats
    print(f"MRTS invocations (Section 3.4 split): "
          f"{sorted(stats.mrts_lengths.items())}  (bytes -> count)")
    print(f"completed at t = {outcome.completed_at / 1e6:.2f} ms\n")

    rows = []
    for n in (5, 10, 20, 30):
        rows.append({
            "sensors": n,
            "RMAC control (us)": rmac_control_overhead(min(n, 20)) / US
            + (rmac_control_overhead(n - 20) / US if n > 20 else 0),
            "BMMM control (us)": bmmm_control_overhead(n) / US,
        })
    print(format_table(rows, title="Per-blob control cost (Section 2 arithmetic)"))


if __name__ == "__main__":
    main()
