"""Reproduce the paper's Fig. 4 as a live protocol trace.

Usage::

    python examples/timeline_fig4.py

Node A (0) runs one Reliable Send to nodes B (1) and C (2). The printed
trace shows the exact sequence the figure draws: the MRTS, both receivers
raising RBT, the collision-protected data frame, and the two ordered ABT
responses checked window-by-window at the sender.
"""

from repro.core import RmacConfig, RmacProtocol
from repro.sim.units import MS
from repro.world.testbed import MacTestbed


def main() -> None:
    testbed = MacTestbed(coords=[(0, 0), (50, 0), (0, 50)], seed=7, trace=True)
    config = RmacConfig(phy=testbed.phy)
    testbed.build_macs(
        lambda i, t: RmacProtocol(
            i, t.sim, t.radios[i], t.node_rng(i), config, tracer=t.tracer
        )
    )

    received = []
    testbed.macs[1].upper_rx = lambda p, s: received.append(("B", p))
    testbed.macs[2].upper_rx = lambda p, s: received.append(("C", p))

    outcomes = []
    testbed.macs[0].send_reliable(
        (1, 2), payload="fig4-payload", payload_bytes=500,
        on_complete=outcomes.append,
    )
    testbed.run(50 * MS)

    print("Fig. 4 -- Procedure of the Reliable Send service")
    print("Node 0 = A (sender), node 1 = B (first receiver), node 2 = C\n")
    print(testbed.tracer.render())
    print()
    outcome = outcomes[0]
    print(f"deliveries: {received}")
    print(f"sender outcome: acked={outcome.acked} failed={outcome.failed} "
          f"dropped={outcome.dropped}")
    print(f"timers: Twf_rbt = {config.twf_rbt} ns, l_abt = {config.l_abt} ns")


if __name__ == "__main__":
    main()
