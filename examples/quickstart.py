"""Quickstart: run one RMAC tree-multicast experiment and print the metrics.

Usage::

    python examples/quickstart.py

Builds the paper's workload at small scale -- 25 nodes on a proportional
plain, a BLESS tree rooted at node 0, a 500-byte CBR multicast source --
runs it, and prints every Section 4 metric for the run.
"""

from repro import ScenarioConfig, build_network
from repro.experiments.report import format_table


def main() -> None:
    config = ScenarioConfig(
        protocol="rmac",
        n_nodes=25,
        width=290,
        height=175,
        rate_pps=20,
        n_packets=200,
        payload_bytes=500,
        seed=42,
    )
    print(f"Building a {config.n_nodes}-node network (seed {config.seed})...")
    network = build_network(config)
    summary = network.run()

    rows = [
        {"metric": "packets generated", "value": summary.n_generated},
        {"metric": "total deliveries", "value": summary.total_deliveries},
        {"metric": "R_deliv (Fig. 7)", "value": summary.delivery_ratio},
        {"metric": "R_drop (Fig. 8)", "value": summary.avg_drop_ratio},
        {"metric": "avg delay s (Fig. 9)", "value": summary.avg_delay_s},
        {"metric": "R_retx (Fig. 10)", "value": summary.avg_retx_ratio},
        {"metric": "R_txoh (Fig. 11)", "value": summary.avg_txoh_ratio},
        {"metric": "MRTS avg bytes (Fig. 12)", "value": summary.mrts_len_avg},
        {"metric": "R_abort (Fig. 13)", "value": summary.abort_avg},
        {"metric": "forwarding (non-leaf) nodes", "value": summary.n_forwarders},
    ]
    print(format_table(rows, title=f"RMAC run summary ({config.n_nodes} nodes, "
                                   f"{config.rate_pps} pkt/s)"))
    print(f"simulated events: {network.sim.events_processed:,}")

    tree_rows = []
    for layer in network.layers[:8]:
        bless = layer.bless
        tree_rows.append({
            "node": layer.node_id,
            "parent": bless.parent,
            "hops": bless.hops,
            "children": len(bless.children()),
        })
    print(format_table(tree_rows, title="BLESS tree (first 8 nodes)"))


if __name__ == "__main__":
    main()
