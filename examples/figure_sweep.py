"""Regenerate a paper figure from the command line.

Usage::

    python examples/figure_sweep.py fig7 [--scale small|medium|paper]
                                         [--workers N] [--csv out.csv]

Runs the RMAC-vs-BMMM sweep behind the requested figure (fig7..fig13)
and prints the figure's rows; optionally writes CSV. ``--scale paper``
is the full Section 4.1 matrix (hours of CPU); ``small`` finishes in a
couple of minutes.
"""

import argparse
import sys

from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table, rows_to_csv
from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import PAPER_RATES, SCENARIOS, paper_scenario, scaled_scenario

SCALES = {
    # (n_nodes, n_packets, rates, seeds)
    "small": (25, 60, (10, 60, 120), (1, 2)),
    "medium": (40, 150, (5, 20, 60, 120), (1, 2, 3)),
    "paper": (75, 10_000, PAPER_RATES, tuple(range(1, 11))),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=sorted(FIGURES))
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = run serially)")
    parser.add_argument("--csv", help="also write the rows to this CSV file")
    args = parser.parse_args(argv)

    spec = FIGURES[args.figure]
    n_nodes, n_packets, rates, seeds = SCALES[args.scale]

    def make_config(protocol, scenario, rate, seed):
        if args.scale == "paper":
            return paper_scenario(protocol, scenario, rate, seed)
        return scaled_scenario(protocol, scenario, rate, seed,
                               n_packets=n_packets, n_nodes=n_nodes)

    total = len(spec.protocols) * len(SCENARIOS) * len(rates) * len(seeds)
    print(f"{spec.figure}: {spec.title}")
    print(f"scale={args.scale}: {total} runs "
          f"({n_nodes} nodes, {n_packets} packets each)...")
    results = run_sweep(list(spec.protocols), list(SCENARIOS), list(rates),
                        list(seeds), make_config, workers=args.workers)
    rows = figure_rows(spec, results)
    print(format_table(rows, title=spec.title))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rows_to_csv(rows))
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
