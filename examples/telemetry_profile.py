"""Profile a run: event-loop telemetry plus a bounded-memory trace.

Usage::

    python examples/telemetry_profile.py

Runs a small RMAC scenario with telemetry attached and a ring-buffer
trace (last 200 events only, so memory stays flat however long the run
is), then prints the event-loop profile -- events/sec, where the wall
time went per subsystem, which event labels dominate -- and the tail of
the trace. This is the measurement loop every performance change should
report against.
"""

from repro import ScenarioConfig, build_network
from repro.sim.trace import RingBuffer, Tracer


def main(n_nodes: int = 25, n_packets: int = 100) -> None:
    config = ScenarioConfig(
        protocol="rmac",
        n_nodes=n_nodes,
        width=290,
        height=175,
        rate_pps=20,
        n_packets=n_packets,
        seed=42,
        collect_telemetry=True,
        trace=True,
    )
    tracer = Tracer(enabled=True, buffer=RingBuffer(capacity=200))
    network = build_network(config, tracer=tracer)
    summary = network.run()

    print("=== event-loop profile ===")
    print(network.telemetry.report(network.sim).render())
    print()
    print(f"delivery ratio: {summary.delivery_ratio:.3f}  "
          f"({summary.events_processed} events at "
          f"{summary.events_per_sec:,.0f} events/s)")
    print()
    print(f"=== last 10 of {len(tracer)} traced events "
          f"(ring kept {len(tracer.events)}) ===")
    for event in tracer.events[-10:]:
        print(event.render())


if __name__ == "__main__":
    main()
