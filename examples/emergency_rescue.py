"""Emergency-rescue scenario: reliable multicast under mobility.

Usage::

    python examples/emergency_rescue.py [--fast]

The paper motivates RMAC with ad hoc networks like "emergency rescue
networks": a coordinator (node 0) streams orders to a moving team, and
every hop must be reliable. This example runs the same moving-team
workload under RMAC, BMMM and BMW and prints the paper's headline
metrics side by side -- the mobile version of Figs. 7/9/11.

``--fast`` shrinks the run for a quick demo.
"""

import sys

from repro import ScenarioConfig, build_network
from repro.experiments.report import format_table


def main() -> None:
    fast = "--fast" in sys.argv
    base = ScenarioConfig(
        n_nodes=20 if fast else 40,
        width=250 if fast else 365,
        height=150 if fast else 220,
        mobile=True,
        min_speed=0.0,
        max_speed=4.0,       # rescuers on foot (the paper's "speed 1")
        pause_s=10.0,
        rate_pps=10,
        n_packets=40 if fast else 150,
        payload_bytes=500,
        seed=21,
    )

    rows = []
    for protocol in ("rmac", "bmmm", "bmw"):
        config = base.variant(protocol=protocol)
        print(f"running {protocol} ({config.n_nodes} rescuers, "
              f"{config.n_packets} orders)...")
        summary = build_network(config).run()
        rows.append({
            "protocol": protocol,
            "orders delivered": f"{(summary.delivery_ratio or 0) * 100:.1f}%",
            "avg latency (ms)": (summary.avg_delay_s or 0) * 1000,
            "retransmission ratio": summary.avg_retx_ratio,
            "control overhead": summary.avg_txoh_ratio,
            "drops": summary.total_drops,
        })

    print()
    print(format_table(rows, title="Moving rescue team: reliable multicast "
                                   "MAC comparison"))
    print("\nExpected shape (paper Figs. 7, 9, 11): RMAC delivers the most "
          "orders,\nfastest, with a fraction of the control overhead.")


if __name__ == "__main__":
    main()
