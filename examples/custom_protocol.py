"""Plug in a custom MAC protocol and run it through the paper's workload.

Usage::

    python examples/custom_protocol.py

Defines **RMAC-NoRBT**, an ablated RMAC whose receivers never raise the
Receiver Busy Tone (the sender still waits T_wf_rbt but transmits the
data frame unconditionally), registers it under the experiment harness,
and compares it against real RMAC on the same seeds. The delta isolates
the contribution of RBT's hidden-terminal protection -- the paper's
central mechanism.
"""

from repro import ScenarioConfig, build_network, register_protocol
from repro.core import RmacConfig, RmacProtocol
from repro.experiments.report import format_table


class RmacNoRbt(RmacProtocol):
    """RMAC with the Receiver Busy Tone disabled (ablation)."""

    NAME = "rmac-norbt"

    def _handle_mrts(self, mrts):
        # Receivers accept the MRTS but never turn RBT on: hidden nodes
        # are free to collide with the data frame.
        if self.node_id not in mrts.receivers:
            return
        from repro.core.states import RmacState

        if self.state not in (RmacState.IDLE, RmacState.BACKOFF):
            return
        self._rx_mrts = mrts
        self._rx_index = mrts.index_of(self.node_id)
        self._rx_first_bit = False
        self._set_state(RmacState.WF_RDATA)
        self._twf_rdata.start(self.config.twf_rdata)
        # NOTE: no self.radio.tone_on(ToneType.RBT)

    def _on_twf_rbt_expired(self):
        # Without RBT there is nothing to detect; transmit unconditionally.
        from repro.core.states import RmacState
        from repro.mac.addresses import BROADCAST
        from repro.mac.frames import DataFrame

        assert self.state is RmacState.WF_RBT
        txn = self._txn
        frame = DataFrame(
            src=self.node_id, dst=BROADCAST, seq=txn.seq,
            payload_bytes=txn.request.payload_bytes, reliable=True,
            payload=txn.request.payload, overhead=self.config.data_overhead,
        )
        self._set_state(RmacState.TX_RDATA)
        self.stats.count_tx("RDATA")
        self._current_tx = self.radio.transmit(frame)

    def _receiver_finish(self, success):
        # The base implementation turns RBT off; here it was never on.
        self._twf_rdata.cancel()
        self._rx_mrts = None
        self._rx_index = -1
        self._rx_first_bit = False
        self._enter_contention(draw=False)


def factory(node_id, testbed, rng, overrides):
    config = RmacConfig(phy=testbed.phy, **overrides)
    return RmacNoRbt(node_id, testbed.sim, testbed.radios[node_id], rng,
                     config, tracer=testbed.tracer)


def main() -> None:
    register_protocol("rmac-norbt", factory)

    # An elongated plain produces deep forwarding chains -- the classic
    # hidden-terminal geometry -- and the high rate keeps the chain busy.
    base = ScenarioConfig(n_nodes=30, width=520, height=90, rate_pps=60,
                          n_packets=150, seed=5)
    rows = []
    for protocol in ("rmac", "rmac-norbt"):
        summary = build_network(base.variant(protocol=protocol)).run()
        rows.append({
            "protocol": protocol,
            "delivery": summary.delivery_ratio,
            "retx ratio": summary.avg_retx_ratio,
            "drops": summary.total_drops,
            "avg delay (ms)": (summary.avg_delay_s or 0) * 1000,
        })
    print(format_table(rows, title="Ablating the Receiver Busy Tone"))
    print("\nWithout RBT, hidden terminals collide with data frames: the "
          "retransmission\nratio jumps and delay/drops follow -- the "
          "mechanism behind the paper's Fig. 10.")


if __name__ == "__main__":
    main()
