"""Restartable timers built on the engine."""

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), "t")
    timer.start(100)
    sim.run()
    assert fired == [100]


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1), "t")
    timer.start(100)
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.running


def test_restart_replaces_previous_arming():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), "t")
    timer.start(100)
    sim.at(50, lambda: timer.start(100))  # re-arm at t=50 -> fires at 150
    sim.run()
    assert fired == [150]


def test_start_at_absolute():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), "t")
    timer.start_at(777)
    assert timer.expires_at == 777
    sim.run()
    assert fired == [777]


def test_running_and_expires_at():
    sim = Simulator()
    timer = Timer(sim, lambda: None, "t")
    assert not timer.running and timer.expires_at is None
    timer.start(10)
    assert timer.running and timer.expires_at == 10
    sim.run()
    assert not timer.running and timer.expires_at is None


def test_cancel_idle_timer_is_noop():
    sim = Simulator()
    timer = Timer(sim, lambda: None, "t")
    timer.cancel()  # no raise
    assert not timer.running


def test_timer_reusable_after_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), "t")
    timer.start(10)
    sim.run()
    timer.start(10)
    sim.run()
    assert fired == [10, 20]
