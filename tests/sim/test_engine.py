"""The discrete-event core: ordering, cancellation, run control."""

import pytest

from repro.sim.engine import FastEvent, SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(30, lambda: fired.append("c"))
    sim.at(10, lambda: fired.append("a"))
    sim.at(20, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.at(5, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcde")


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(100, lambda: sim.after(50, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150]


def test_call_soon_runs_at_current_time_after_peers():
    sim = Simulator()
    fired = []
    def first():
        fired.append("first")
        sim.call_soon(lambda: fired.append("soon"))
    sim.at(10, first)
    sim.at(10, lambda: fired.append("second"))
    sim.run()
    assert fired == ["first", "second", "soon"]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_cancellation_skips_event():
    sim = Simulator()
    fired = []
    handle = sim.at(10, lambda: fired.append("no"))
    sim.at(20, lambda: fired.append("yes"))
    handle.cancel()
    sim.run()
    assert fired == ["yes"]
    assert handle.cancelled and not handle.fired


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    handle = sim.at(1, lambda: None)
    sim.run()
    assert handle.fired
    handle.cancel()  # should not raise
    assert handle.fired


def test_cancel_after_fire_does_not_mark_cancelled():
    sim = Simulator()
    handle = sim.at(1, lambda: None, label="late-cancel")
    sim.run()
    handle.cancel()
    assert handle.fired and not handle.cancelled and not handle.pending
    assert "fired" in repr(handle)  # repr reports what actually happened


def test_handle_pending_lifecycle():
    sim = Simulator()
    handle = sim.at(5, lambda: None)
    assert handle.pending
    sim.run()
    assert not handle.pending and handle.fired


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.at(10, lambda: None)
    assert sim.run(until=1000) == 1000
    assert sim.now == 1000


def test_run_until_leaves_future_events():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: fired.append(1))
    sim.at(100, lambda: fired.append(2))
    sim.run(until=50)
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_run_until_boundary_inclusive():
    sim = Simulator()
    fired = []
    sim.at(50, lambda: fired.append(1))
    sim.run(until=50)
    assert fired == [1]


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.at(i, lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counts():
    sim = Simulator()
    for i in range(5):
        sim.at(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    handles = [sim.at(i, lambda: None) for i in range(4)]
    handles[0].cancel()
    handles[2].cancel()
    assert sim.pending_count() == 2


def test_run_not_reentrant():
    sim = Simulator()
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()
    sim.at(1, reenter)
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []
    def chain(n):
        fired.append(n)
        if n < 5:
            sim.after(10, lambda: chain(n + 1))
    sim.at(0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


class _Probe(FastEvent):
    """Minimal schedule_many payload used by the tests below."""

    __slots__ = ("log", "tag")

    label = "probe-event"

    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def __call__(self):
        self.log.append(self.tag)


def test_schedule_many_fires_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule_many([(30, _Probe(log, "c")), (10, _Probe(log, "a")),
                       (20, _Probe(log, "b"))])
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 30


def test_schedule_many_ties_interleave_with_handles_by_insertion():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append("handle-1"))
    sim.schedule_many([(5, _Probe(log, "fast"))])
    sim.at(5, lambda: log.append("handle-2"))
    sim.run()
    assert log == ["handle-1", "fast", "handle-2"]


def test_schedule_many_rejects_past_times_atomically():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    log = []
    with pytest.raises(SimulationError):
        sim.schedule_many([(150, _Probe(log, "ok")), (50, _Probe(log, "past"))])
    # Atomic: a bad entry anywhere in the batch leaves the queue untouched,
    # even for valid pairs that preceded it.
    assert sim.pending_count() == 0
    sim.run()
    assert log == []


def test_schedule_many_validates_before_consuming_generator():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    log = []
    entries = ((t, _Probe(log, t)) for t in (150, 50, 200))
    with pytest.raises(SimulationError):
        sim.schedule_many(entries)
    assert sim.pending_count() == 0


def test_schedule_many_counts_and_labels_in_telemetry():
    from repro.sim.telemetry import Telemetry

    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    log = []
    sim.schedule_many([(i, _Probe(log, i)) for i in range(4)])
    sim.run()
    assert sim.events_processed == 4
    assert telemetry.label_counts == {"probe-event": 4}


def test_schedule_many_via_step():
    sim = Simulator()
    log = []
    sim.schedule_many([(10, _Probe(log, "x"))])
    assert sim.step() is True
    assert log == ["x"] and sim.now == 10
