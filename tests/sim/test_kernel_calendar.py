"""The calendar kernel: semantics at the kernel boundary.

Every test here runs the same program under ``kernel="calendar"``
(usually against a ``kernel="heap"`` reference) and asserts identical
observable behavior -- the bit-identity contract that lets the bench
quote calendar wall clocks for heap-validated protocol results. The
calendar-specific machinery (ring laps, dry-lap jump, the pre-run
cursor rewind, compaction) is exercised through the public API only.
"""

import pytest

from repro.sim.engine import CalendarQueue, SimulationError, Simulator
from repro.sim.telemetry import Telemetry

#: One calendar day is 2**15 ns; one ring lap is 2048 days (~67 ms).
DAY = 1 << 15
LAP = 2048 * DAY


def both_kernels(program):
    """Run ``program(sim)`` under both kernels; return both logs."""
    logs = []
    for kernel in ("heap", "calendar"):
        sim = Simulator(kernel=kernel)
        logs.append(program(sim))
    return logs


def test_kernel_property_names_registered():
    assert Simulator(kernel="heap").kernel == "heap"
    assert Simulator(kernel="calendar").kernel == "calendar"
    with pytest.raises(SimulationError):
        Simulator(kernel="no-such-kernel")


def test_same_day_ties_fire_in_insertion_order():
    def program(sim):
        fired = []
        for i in range(8):
            sim.at(100, lambda i=i: fired.append(i))
        sim.run()
        return fired

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == list(range(8))


def test_cross_day_and_cross_lap_order():
    """Events spread within a day, across days, and across ring laps
    (the far-future path) still fire in exact time order."""
    times = [0, 1, DAY - 1, DAY, DAY + 1, 3 * DAY,
             LAP - 1, LAP, LAP + DAY, 5 * LAP, 5 * LAP + 1]

    def program(sim):
        fired = []
        for t in reversed(times):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run()
        return fired

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == sorted(times)


def test_dry_lap_jump_skips_empty_ring():
    """Two events many laps apart: the cursor jumps, never spins."""
    def program(sim):
        fired = []
        sim.at(0, lambda: fired.append(sim.now))
        sim.at(100 * LAP, lambda: fired.append(sim.now))
        sim.run()
        return fired

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == [0, 100 * LAP]


def test_run_until_does_not_consume_cancelled_beyond_horizon():
    """A cancelled entry whose firing time is beyond ``until`` must stay
    in the queue untouched -- back-to-back ``run`` calls compose."""
    for kernel in ("heap", "calendar"):
        sim = Simulator(kernel=kernel)
        fired = []
        sim.at(10, lambda: fired.append("early"))
        handle = sim.at(5 * LAP, lambda: fired.append("cancelled"))
        handle.cancel()
        sim.at(5 * LAP + 1, lambda: fired.append("late"))
        sim.run(until=100)
        # The cancelled entry was not popped: the kernel still counts it.
        assert sim._kq.cancelled == 1, kernel
        assert fired == ["early"], kernel
        sim.run()
        assert fired == ["early", "late"], kernel
        assert sim._kq.cancelled == 0, kernel


def test_rewind_between_runs():
    """run(until=...) can park the calendar cursor on a later day; a
    fresh schedule into the gap must rewind and still fire in order."""
    def program(sim):
        fired = []
        sim.at(10 * DAY, lambda: fired.append("far"))
        sim.run(until=4 * DAY)  # cursor advances past days 0..3
        sim.at(5 * DAY, lambda: fired.append("gap"))
        sim.at(4 * DAY + 1, lambda: fired.append("early-gap"))
        sim.run()
        return fired

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == ["early-gap", "gap", "far"]


def test_cannot_rewind_before_now():
    sim = Simulator(kernel="calendar")
    sim.at(2 * DAY, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(DAY, lambda: None)


def test_compaction_keeps_survivors_and_order():
    """Cancelling most of a large batch triggers compaction; the
    survivors still fire exactly in time order."""
    sim = Simulator(kernel="calendar")
    fired = []
    handles = []
    for i in range(2000):
        handles.append(
            sim.at(i * 1000, lambda i=i: fired.append(i)))
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    # Compaction must have pruned the bulk of the cancelled entries.
    assert sim._kq.cancelled < 1800
    assert sim._kq.live_depth() == 200
    sim.run()
    assert fired == [i for i in range(2000) if not i % 10]


def test_live_depth_matches_pending_during_run():
    sim = Simulator(kernel="calendar")
    depths = []
    for i in range(10):
        sim.at(i * 5000, lambda: depths.append(sim._kq.live_depth()))
    sim.run()
    assert depths == [9 - i for i in range(10)]


def test_telemetry_depth_is_live_depth_on_calendar():
    sim = Simulator(kernel="calendar")
    telemetry = Telemetry(heap_sample_interval=1)
    telemetry.attach(sim)
    for i in range(6):
        sim.at(i * 3000, lambda: None, label="tick")
    handle = sim.at(50_000, lambda: None)
    handle.cancel()
    sim.run()
    report = telemetry.report(sim)
    assert report.heap_depth_last == 0
    # Cancelled entries never count toward sampled depth.
    assert report.heap_depth_max <= 6


def test_instance_kernel_runs_generic_drain_loop():
    """A tuned CalendarQueue instance (not the registered name) takes
    the generic drain loop and still matches the heap."""
    def program(sim):
        fired = []
        for t in (7, DAY + 3, 3, 3, 12 * DAY):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run()
        return fired

    reference = program(Simulator(kernel="heap"))
    tuned = program(Simulator(kernel=CalendarQueue(day_shift=12,
                                                   n_buckets=64)))
    assert tuned == reference


def test_schedule_fast_and_many_interleave_with_handles():
    """FastEvent pushes (schedule_fast / schedule_many) share the seq
    stream with handle scheduling: ties break by overall insertion."""
    class Probe:
        __slots__ = ("log", "tag")
        label = "probe"
        _cancelled = False
        callback = None

        def __init__(self, log, tag):
            self.log = log
            self.tag = tag

        def __call__(self):
            self.log.append(self.tag)

    def program(sim):
        log = []
        sim.at(100, lambda: log.append("handle-a"))
        sim.schedule_fast(100, Probe(log, "fast"))
        sim.schedule_many([(100, Probe(log, "many-1")),
                           (100, Probe(log, "many-2"))])
        sim.at(100, lambda: log.append("handle-b"))
        sim.run()
        return log

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == [
        "handle-a", "fast", "many-1", "many-2", "handle-b"]


def test_max_events_and_resume():
    def program(sim):
        fired = []
        for i in range(10):
            sim.at(i * DAY, lambda i=i: fired.append(i))
        sim.run(max_events=4)
        snapshot = list(fired)
        sim.run()
        return snapshot, fired

    heap_log, cal_log = both_kernels(program)
    assert heap_log == cal_log == (list(range(4)), list(range(10)))


def test_clock_advances_to_until_on_drain():
    for kernel in ("heap", "calendar"):
        sim = Simulator(kernel=kernel)
        sim.at(5, lambda: None)
        sim.run(until=9 * LAP)
        assert sim.now == 9 * LAP, kernel
