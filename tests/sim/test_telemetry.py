"""Event-loop telemetry (repro.sim.telemetry)."""

import json

import pytest

from repro.sim.engine import Simulator
from repro.sim.telemetry import Telemetry, TelemetryReport


def _load(sim, n=50):
    for i in range(n):
        sim.after(i * 100, lambda: None, label="rmac-pump")
        sim.after(i * 100 + 7, lambda: None, label="tone-on")


def test_detached_simulator_has_no_collector():
    sim = Simulator()
    assert sim._telemetry is None
    _load(sim)
    sim.run()
    assert sim.events_processed == 100


def test_label_counts_and_events():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=30)
    sim.run()
    report = telemetry.report(sim)
    assert report.events == 60
    assert report.label_counts == {"rmac-pump": 30, "tone-on": 30}
    assert report.events_per_sec > 0
    assert report.wall_s > 0


def test_subsystem_wall_time_groups_by_label_prefix():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=10)
    sim.run()
    report = telemetry.report(sim)
    assert set(report.subsystem_wall_s) == {"rmac", "tone"}
    assert all(v >= 0 for v in report.subsystem_wall_s.values())


def test_heap_depth_sampling():
    sim = Simulator()
    telemetry = Telemetry(heap_sample_interval=4).attach(sim)
    _load(sim, n=40)
    sim.run()
    report = telemetry.report(sim)
    assert report.heap_depth_max > 0
    assert report.heap_depth_last == 0  # queue drained
    assert 0 < report.heap_depth_mean <= report.heap_depth_max


def test_detach_restores_fast_path():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    sim.after(10, lambda: None, label="a")
    sim.run()
    telemetry.detach(sim)
    sim.after(10, lambda: None, label="a")
    sim.run()
    assert telemetry.events == 1  # second event not recorded


def test_report_is_json_serializable():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=5)
    sim.run()
    report = telemetry.report(sim)
    payload = json.loads(report.to_json())
    assert payload["events"] == 10
    assert "label_counts" in payload and "heap_depth" in payload
    assert isinstance(report, TelemetryReport)


def test_render_mentions_throughput():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=5)
    sim.run()
    text = telemetry.report(sim).render()
    assert "events/sec" in text and "rmac-pump" in text


def test_sections_land_in_report_dict_and_render():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=5)
    sim.run()
    telemetry.set_section("neighbors", {"table_rebuilds": 3, "table_hits": 99})
    report = telemetry.report(sim)
    payload = json.loads(report.to_json())
    assert payload["neighbors"] == {"table_rebuilds": 3, "table_hits": 99}
    assert "table_rebuilds=3" in report.render()


def test_sections_default_empty_and_replaceable():
    sim = Simulator()
    telemetry = Telemetry().attach(sim)
    _load(sim, n=2)
    sim.run()
    assert telemetry.report(sim).sections == {}
    telemetry.set_section("cache", {"hits": 1})
    telemetry.set_section("cache", {"hits": 2})
    assert telemetry.report(sim).sections == {"cache": {"hits": 2}}


def test_sim_time_tracked_from_attach_point():
    sim = Simulator()
    sim.after(1000, lambda: None)
    sim.run()
    telemetry = Telemetry().attach(sim)
    sim.after(500, lambda: None)
    sim.run()
    report = telemetry.report(sim)
    assert report.sim_time_ns == 500


def test_invalid_sample_interval_rejected():
    with pytest.raises(ValueError):
        Telemetry(heap_sample_interval=0)


def test_network_run_surfaces_telemetry():
    from repro.world.network import ScenarioConfig, build_network

    config = ScenarioConfig(protocol="rmac", n_nodes=8, width=180, height=130,
                            n_packets=3, rate_pps=5, seed=2,
                            collect_telemetry=True)
    summary = build_network(config).run()
    assert summary.events_processed > 0
    assert summary.events_per_sec > 0
    assert summary.telemetry["events"] == summary.events_processed
    assert summary.telemetry["label_counts"]


def test_network_without_flag_has_none_telemetry():
    from repro.world.network import ScenarioConfig, build_network

    config = ScenarioConfig(protocol="rmac", n_nodes=8, width=180, height=130,
                            n_packets=3, rate_pps=5, seed=2)
    summary = build_network(config).run()
    assert summary.telemetry is None
    assert summary.events_processed is None
