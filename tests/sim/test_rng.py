"""Deterministic named random streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic_and_distinct():
    a = derive_seed(1, "mac", 0)
    assert a == derive_seed(1, "mac", 0)
    assert a != derive_seed(1, "mac", 1)
    assert a != derive_seed(2, "mac", 0)
    assert a != derive_seed(1, "net", 0)


def test_streams_are_memoized():
    reg = RngRegistry(7)
    assert reg.stream("mac", 3) is reg.stream("mac", 3)


def test_streams_independent_of_draw_order():
    """Drawing from one stream must not perturb another."""
    reg1 = RngRegistry(7)
    a_first = [reg1.stream("a").random() for _ in range(3)]

    reg2 = RngRegistry(7)
    reg2.stream("b").random()  # interleaved draw on another stream
    a_second = [reg2.stream("a").random() for _ in range(3)]
    assert a_first == a_second


def test_same_seed_same_sequences():
    xs = [RngRegistry(42).stream("x", i).randint(0, 10**9) for i in range(5)]
    ys = [RngRegistry(42).stream("x", i).randint(0, 10**9) for i in range(5)]
    assert xs == ys


def test_different_master_seeds_diverge():
    xs = [RngRegistry(1).stream("x").random() for _ in range(3)]
    ys = [RngRegistry(2).stream("x").random() for _ in range(3)]
    assert xs != ys


def test_spawn_children_are_stable_and_distinct():
    reg = RngRegistry(5)
    child_a = reg.spawn("rep", 0)
    child_b = reg.spawn("rep", 1)
    assert child_a.master_seed == reg.spawn("rep", 0).master_seed
    assert child_a.master_seed != child_b.master_seed
    assert child_a.master_seed != reg.master_seed
