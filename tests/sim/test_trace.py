"""Structured tracing and its storage backends."""

import json

import pytest

from repro.sim.trace import (
    JsonlTraceSink,
    ListBuffer,
    RingBuffer,
    TraceEvent,
    Tracer,
)


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(10, 1, "x", a=1)
    assert len(tracer) == 0


def test_enabled_tracer_records_in_order():
    tracer = Tracer(enabled=True)
    tracer.emit(10, 1, "tx-start")
    tracer.emit(20, 2, "rx-ok", sender=1)
    assert tracer.kinds_sequence() == ["tx-start", "rx-ok"]
    assert tracer.events[1].detail == {"sender": 1}


def test_kind_filter():
    tracer = Tracer(enabled=True, kinds={"keep"})
    tracer.emit(1, 0, "keep")
    tracer.emit(2, 0, "drop")
    assert tracer.kinds_sequence() == ["keep"]


def test_of_kind_and_for_node():
    tracer = Tracer(enabled=True)
    tracer.emit(1, 0, "a")
    tracer.emit(2, 1, "b")
    tracer.emit(3, 0, "b")
    assert [e.time for e in tracer.of_kind("b")] == [2, 3]
    assert [e.time for e in tracer.for_node(0)] == [1, 3]


def test_sink_called_per_event():
    seen = []
    tracer = Tracer(enabled=True)
    tracer.sink = seen.append
    tracer.emit(5, 3, "x")
    assert len(seen) == 1 and isinstance(seen[0], TraceEvent)


def test_render_contains_fields():
    tracer = Tracer(enabled=True)
    tracer.emit(17_000, 4, "rbt-on", index=2)
    text = tracer.render()
    assert "node   4" in text and "rbt-on" in text and "index=2" in text


# ----------------------------------------------------------------------
# Storage backends
# ----------------------------------------------------------------------
def test_default_backend_is_unbounded_list():
    tracer = Tracer(enabled=True)
    assert isinstance(tracer.buffer, ListBuffer)


def test_ring_buffer_bounds_memory():
    tracer = Tracer(enabled=True, buffer=RingBuffer(capacity=100))
    for i in range(10_000):
        tracer.emit(i, 0, "tick")
    assert len(tracer) == 10_000            # accepted count keeps the truth
    assert len(tracer.events) == 100        # retained memory stays bounded
    assert tracer.buffer.dropped == 9_900
    assert tracer.events[0].time == 9_900   # oldest retained = most recent 100


def test_ring_buffer_queries_use_retained_events():
    tracer = Tracer(enabled=True, buffer=RingBuffer(capacity=3))
    for i in range(5):
        tracer.emit(i, i % 2, "a" if i % 2 else "b")
    assert tracer.kinds_sequence() == ["b", "a", "b"]
    assert [e.time for e in tracer.for_node(1)] == [3]


def test_ring_buffer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        RingBuffer(capacity=0)


def test_jsonl_sink_streams_and_retains_nothing(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(enabled=True, buffer=JsonlTraceSink(path))
    tracer.emit(10, 1, "tx-start", frame="MRTS")
    tracer.emit(20, 2, "rx-ok")
    tracer.close()
    assert len(tracer) == 2
    assert tracer.events == []  # nothing held in memory
    lines = [json.loads(line) for line in open(path)]
    assert lines == [
        {"time": 10, "node": 1, "kind": "tx-start", "detail": {"frame": "MRTS"}},
        {"time": 20, "node": 2, "kind": "rx-ok"},
    ]


def test_jsonl_sink_borrowed_file_left_open(tmp_path):
    fh = open(tmp_path / "t.jsonl", "w")
    tracer = Tracer(enabled=True, buffer=JsonlTraceSink(fh))
    tracer.emit(1, 0, "x")
    tracer.close()
    assert not fh.closed
    fh.close()


def test_jsonl_sink_serializes_non_json_detail(tmp_path):
    path = str(tmp_path / "t.jsonl")
    tracer = Tracer(enabled=True, buffer=JsonlTraceSink(path))
    tracer.emit(1, 0, "x", obj=object())  # falls back to str()
    tracer.close()
    record = json.loads(open(path).read())
    assert "object object" in record["detail"]["obj"]


def test_close_is_idempotent(tmp_path):
    tracer = Tracer(enabled=True, buffer=JsonlTraceSink(str(tmp_path / "t.jsonl")))
    tracer.close()
    tracer.close()


def test_network_ring_buffer_trace_memory_bounded():
    """A traced full-stack run with a ring backend retains only `capacity`
    events no matter how many the run emits."""
    from repro.world.network import ScenarioConfig, build_network

    tracer = Tracer(enabled=True, buffer=RingBuffer(capacity=50))
    config = ScenarioConfig(protocol="rmac", n_nodes=8, width=180, height=130,
                            n_packets=5, rate_pps=10, seed=2, trace=True)
    network = build_network(config, tracer=tracer)
    network.run()
    assert len(tracer) > 50           # the run emitted far more...
    assert len(tracer.events) == 50   # ...but memory stayed at capacity
    assert tracer.buffer.dropped == len(tracer) - 50
