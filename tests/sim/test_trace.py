"""Structured tracing."""

from repro.sim.trace import TraceEvent, Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(10, 1, "x", a=1)
    assert len(tracer) == 0


def test_enabled_tracer_records_in_order():
    tracer = Tracer(enabled=True)
    tracer.emit(10, 1, "tx-start")
    tracer.emit(20, 2, "rx-ok", sender=1)
    assert tracer.kinds_sequence() == ["tx-start", "rx-ok"]
    assert tracer.events[1].detail == {"sender": 1}


def test_kind_filter():
    tracer = Tracer(enabled=True, kinds={"keep"})
    tracer.emit(1, 0, "keep")
    tracer.emit(2, 0, "drop")
    assert tracer.kinds_sequence() == ["keep"]


def test_of_kind_and_for_node():
    tracer = Tracer(enabled=True)
    tracer.emit(1, 0, "a")
    tracer.emit(2, 1, "b")
    tracer.emit(3, 0, "b")
    assert [e.time for e in tracer.of_kind("b")] == [2, 3]
    assert [e.time for e in tracer.for_node(0)] == [1, 3]


def test_sink_called_per_event():
    seen = []
    tracer = Tracer(enabled=True)
    tracer.sink = seen.append
    tracer.emit(5, 3, "x")
    assert len(seen) == 1 and isinstance(seen[0], TraceEvent)


def test_render_contains_fields():
    tracer = Tracer(enabled=True)
    tracer.emit(17_000, 4, "rbt-on", index=2)
    text = tracer.render()
    assert "node   4" in text and "rbt-on" in text and "index=2" in text
