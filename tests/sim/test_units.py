"""Unit conversions and formatting of the integer-ns clock."""

import pytest

from repro.sim import units


def test_base_constants():
    assert units.NS == 1
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.SEC == 1_000_000_000


def test_us_exact():
    assert units.us(20) == 20_000
    assert units.us(0.5) == 500
    assert units.us(0) == 0


def test_us_rejects_subnanosecond():
    with pytest.raises(ValueError):
        units.us(0.0001234)


def test_ms_and_seconds():
    assert units.ms(1.5) == 1_500_000
    assert units.seconds(2) == 2 * units.SEC


def test_roundtrips():
    assert units.ns_to_s(units.s_to_ns(1.25)) == pytest.approx(1.25)
    assert units.ns_to_us(17_000) == pytest.approx(17.0)


def test_format_time_units():
    assert units.format_time(0) == "0"
    assert units.format_time(999) == "999ns"
    assert units.format_time(17_000) == "17.000us"
    assert units.format_time(2_500_000) == "2.500ms"
    assert units.format_time(3 * units.SEC) == "3s"
    assert units.format_time(units.SEC + 1) == "1.000000s"
