"""Property fuzz for the 802.11-family batch protocols (BMMM/LAMM).

Random small topologies and request mixes; after draining, the global
invariants must hold: every request completed once with acked + failed
partitioning its receivers, transactions released, queues empty, NAVs in
the past.
"""

from hypothesis import given, settings, strategies as st

from repro.mac.dot11 import Dot11Config
from repro.sim.units import MS

from tests.conftest import make_dot11_testbed


@st.composite
def scenarios(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=5))
    spacing = draw(st.sampled_from([30.0, 60.0]))
    coords = [(i * spacing, 0.0) for i in range(n_nodes)]
    n_requests = draw(st.integers(min_value=1, max_value=4))
    requests = []
    for _ in range(n_requests):
        sender = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        others = [i for i in range(n_nodes) if i != sender]
        k = draw(st.integers(min_value=1, max_value=len(others)))
        receivers = tuple(draw(st.permutations(others))[:k])
        start = draw(st.integers(min_value=0, max_value=15 * MS))
        requests.append((sender, receivers, start))
    protocol = draw(st.sampled_from(["bmmm", "lamm"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return coords, requests, protocol, seed


@settings(max_examples=20, deadline=None)
@given(scenario=scenarios())
def test_batch_protocol_global_invariants(scenario):
    coords, requests, protocol, seed = scenario
    tb = make_dot11_testbed(coords, protocol=protocol, seed=seed,
                            config=Dot11Config(retry_limit=2))
    outcomes = []
    for sender, receivers, start in requests:
        tb.sim.at(start, lambda s=sender, r=receivers: tb.macs[s]
                  .send_reliable(r, "pkt", 200, on_complete=outcomes.append))
    tb.run(4000 * MS)

    assert len(outcomes) == len(requests)
    for outcome in outcomes:
        combined = sorted(outcome.acked + outcome.failed)
        assert combined == sorted(outcome.request.receivers)

    for mac in tb.macs:
        assert not mac.in_txn
        assert mac._request is None
        assert len(mac.queue) == 0
        assert mac.nav_until <= tb.sim.now
        stats = mac.stats
        assert stats.packets_delivered + stats.packets_dropped == stats.packets_offered
