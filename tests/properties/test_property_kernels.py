"""Property tests: the calendar kernel is bit-identical to the heap.

Each test drives both kernels through the same randomized program and
asserts identical observable behavior -- execution order, fired subset,
clock values. This is the kernel contract the full-stack A/B harness
(``tools/kernel_ab.py``) checks end-to-end; here hypothesis explores
the scheduling corner cases (same-tick ties, ring-lap boundaries,
cancellations, ``call_soon`` re-entry, ``until``/``max_events``)
directly at the engine API.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator

#: Calendar geometry under test (defaults): day 2**15 ns, 2048-day lap.
DAY = 1 << 15
LAP = 2048 * DAY

#: Times biased toward calendar boundaries: inside one day, on day
#: edges, across laps -- plus a smearing of arbitrary values.
interesting_times = st.one_of(
    st.integers(min_value=0, max_value=3),
    st.sampled_from([DAY - 1, DAY, DAY + 1, 2 * DAY,
                     LAP - 1, LAP, LAP + 1, 3 * LAP + DAY]),
    st.integers(min_value=0, max_value=4 * LAP),
)


def run_program(kernel, schedule, cancel_mask, nested_delays):
    """One deterministic program: absolute schedules (some cancelled),
    each firing optionally re-scheduling relative follow-ups and a
    same-time ``call_soon``."""
    sim = Simulator(kernel=kernel)
    log = []
    handles = []

    def fire(tag, followups):
        log.append((sim.now, tag))
        for j, delay in enumerate(followups):
            sim.after(delay, lambda t=f"{tag}+f{j}": log.append((sim.now, t)),
                      label="nested")
        if followups:
            sim.call_soon(lambda t=f"{tag}+soon": log.append((sim.now, t)))

    for i, t in enumerate(schedule):
        followups = nested_delays if i % 3 == 0 else []
        handles.append(sim.at(t, lambda i=i, f=tuple(followups): fire(i, f),
                              label="root"))
    for handle, cancel in zip(handles, cancel_mask):
        if cancel:
            handle.cancel()
    sim.run()
    return log, sim.now, sim.events_processed


@settings(max_examples=60, deadline=None)
@given(schedule=st.lists(interesting_times, min_size=1, max_size=25),
       cancel_mask=st.lists(st.booleans(), min_size=25, max_size=25),
       nested_delays=st.lists(st.integers(min_value=0, max_value=2 * DAY),
                              min_size=0, max_size=3))
def test_calendar_matches_heap_order(schedule, cancel_mask, nested_delays):
    heap = run_program("heap", schedule, cancel_mask, nested_delays)
    calendar = run_program("calendar", schedule, cancel_mask, nested_delays)
    assert calendar == heap


@settings(max_examples=40, deadline=None)
@given(schedule=st.lists(interesting_times, min_size=1, max_size=20),
       until=interesting_times,
       max_events=st.one_of(st.none(), st.integers(min_value=0, max_value=12)))
def test_until_and_max_events_agree(schedule, until, max_events):
    """Horizon and budget cut both kernels at the same event; a second
    unbounded run completes identically from the cut point."""
    results = []
    for kernel in ("heap", "calendar"):
        sim = Simulator(kernel=kernel)
        log = []
        for i, t in enumerate(schedule):
            sim.at(t, lambda i=i: log.append((sim.now, i)))
        sim.run(until=until, max_events=max_events)
        cut = (list(log), sim.now, sim.events_processed)
        sim.run()
        results.append((cut, list(log), sim.now))
    assert results[0] == results[1]


@settings(max_examples=40, deadline=None)
@given(times=st.lists(interesting_times, min_size=1, max_size=15),
       horizon=interesting_times)
def test_clock_advances_on_drain_under_both_kernels(times, horizon):
    """run(until=...) that outlives the queue parks the clock exactly at
    the horizon on every kernel."""
    ends = []
    for kernel in ("heap", "calendar"):
        sim = Simulator(kernel=kernel)
        for t in times:
            sim.at(t, lambda: None)
        end = sim.run(until=horizon)
        # The return value is the clock, never short of the horizon.
        assert end == sim.now >= horizon
        ends.append((end, sim.events_processed))
    assert ends[0] == ends[1]
