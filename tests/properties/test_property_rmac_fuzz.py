"""Property fuzz: random traffic through real RMAC stacks.

For arbitrary small topologies and request mixes, after the network
drains the protocol must satisfy its global invariants: every request
completed exactly once with acked + failed partitioning its receivers,
no tones left on, all nodes back in IDLE/BACKOFF, queues empty, and
reachable-receiver deliveries matching acknowledgments.
"""

from hypothesis import given, settings, strategies as st

from repro.core import RmacConfig, RmacProtocol
from repro.core.states import RmacState
from repro.phy.busytone import ToneType
from repro.sim.units import MS

from tests.conftest import make_rmac_testbed


@st.composite
def scenarios(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    # Nodes on a line with spacing that creates partial connectivity.
    spacing = draw(st.sampled_from([30.0, 60.0, 90.0]))
    coords = [(i * spacing, 0.0) for i in range(n_nodes)]
    n_requests = draw(st.integers(min_value=1, max_value=6))
    requests = []
    for _ in range(n_requests):
        sender = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        others = [i for i in range(n_nodes) if i != sender]
        k = draw(st.integers(min_value=1, max_value=len(others)))
        receivers = tuple(draw(st.permutations(others))[:k])
        start = draw(st.integers(min_value=0, max_value=20 * MS))
        payload = draw(st.integers(min_value=0, max_value=600))
        requests.append((sender, receivers, start, payload))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return coords, requests, seed


@settings(max_examples=25, deadline=None)
@given(scenario=scenarios())
def test_rmac_global_invariants(scenario):
    coords, requests, seed = scenario
    tb = make_rmac_testbed(coords, seed=seed,
                           config=RmacConfig(retry_limit=2))
    deliveries = {i: [] for i in range(len(coords))}
    for i, mac in enumerate(tb.macs):
        mac.upper_rx = lambda p, s, i=i: deliveries[i].append(p)

    outcomes = []
    for sender, receivers, start, payload in requests:
        tb.sim.at(start, lambda s=sender, r=receivers, p=payload: tb.macs[s]
                  .send_reliable(r, f"pkt-{s}-{r}", p, on_complete=outcomes.append))
    tb.run(3000 * MS)

    # Every request completed exactly once.
    assert len(outcomes) == len(requests)
    for outcome in outcomes:
        combined = sorted(outcome.acked + outcome.failed)
        assert combined == sorted(outcome.request.receivers)
        assert outcome.dropped == bool(outcome.failed)

    for i, mac in enumerate(tb.macs):
        # All nodes settled and released their tones.
        assert mac.state in (RmacState.IDLE, RmacState.BACKOFF), i
        assert not tb.radios[i].tone_emitting(ToneType.RBT)
        assert not tb.radios[i].tone_emitting(ToneType.ABT)
        assert len(mac.queue) == 0
        assert mac._txn is None
        stats = mac.stats
        assert stats.packets_delivered + stats.packets_dropped == stats.packets_offered
        assert stats.mrts_aborted <= stats.mrts_transmissions
