"""Property tests: data-channel bookkeeping conservation.

Whatever mix of transmissions and aborts runs, after everything
propagates: busy counters are zero everywhere, nobody is mid-reception,
idle notifications fired, and every (sender, receiver) pair saw exactly
one terminal event (delivery or error) per decodable transmission.
"""

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.phy.channel import DataChannel
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.params import DEFAULT_PHY
from repro.phy.propagation import UnitDiskModel
from repro.sim.engine import Simulator
from repro.sim.units import US

COORDS = [(0.0, 0.0), (50.0, 0.0), (100.0, 0.0), (150.0, 0.0)]


@dataclass(frozen=True)
class Frame:
    size_bytes: int
    uid: int = 0


class Recorder:
    def __init__(self):
        self.received = 0
        self.errors = 0
        self.tx_done = 0
        self.rx_starts = 0

    def on_frame_received(self, frame, sender):
        self.received += 1

    def on_frame_error(self, sender):
        self.errors += 1

    def on_tx_complete(self, frame, aborted):
        self.tx_done += 1

    def on_rx_start(self, sender):
        self.rx_starts += 1


@st.composite
def schedules(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    items = []
    for uid in range(n):
        sender = draw(st.integers(min_value=0, max_value=3))
        start = draw(st.integers(min_value=0, max_value=2000 * US))
        size = draw(st.integers(min_value=10, max_value=400))
        abort_frac = draw(st.one_of(st.none(), st.floats(min_value=0.05, max_value=0.95)))
        items.append((uid, sender, start, size, abort_frac))
    return items


@settings(max_examples=50, deadline=None)
@given(schedule=schedules())
def test_channel_conservation(schedule):
    sim = Simulator()
    svc = NeighborService(StaticPositions(COORDS), UnitDiskModel(75.0))
    channel = DataChannel(sim, svc, DEFAULT_PHY)
    recorders = [Recorder() for _ in COORDS]
    for node, rec in enumerate(recorders):
        channel.attach(node, rec)

    launched = []

    def launch(uid, sender, size, abort_frac):
        if channel.is_transmitting(sender):
            return  # half-duplex: a node cannot start a second tx
        tx = channel.transmit(sender, Frame(size, uid))
        launched.append(tx)
        if abort_frac is not None:
            abort_at = sim.now + int(tx.airtime * abort_frac)
            sim.at(abort_at, lambda tx=tx: channel.abort(tx) if not tx.aborted
                   and channel.current_tx(tx.sender) is tx else None)

    for uid, sender, start, size, abort_frac in schedule:
        sim.at(start, lambda u=uid, s=sender, z=size, a=abort_frac: launch(u, s, z, a))
    sim.run()
    sim.run(until=sim.now + 10 * US)

    # Conservation: all busy counters drained, nobody stuck receiving.
    for node in range(len(COORDS)):
        assert not channel.busy(node)
        assert not channel.is_transmitting(node)
        assert not channel._receiving.get(node)

    # Every launched transmission completed exactly once at the sender.
    assert sum(r.tx_done for r in recorders) == len(launched)

    # Every decodable (in-range) arrival terminated in exactly one of
    # delivery or error.
    expected_terminals = sum(
        sum(1 for link in tx.links if link.in_rx_range) for tx in launched
    )
    terminals = sum(r.received + r.errors for r in recorders)
    assert terminals == expected_terminals

    # rx_start fires once per decodable arrival.
    assert sum(r.rx_starts for r in recorders) == expected_terminals
