"""Property: grid-indexed link tables are *exactly* brute-force's.

The grid path's whole contract is "measurably faster, bit-identical
results": for every sender, the batched numpy rebuild must produce the
same node set, the same ``delay_ns``, the same ``in_rx_range`` flag and
the same ``power_dbm`` (to the last bit) as the per-sender brute-force
reference, for both propagation models, across mobility bucket epochs,
and with nodes straddling grid-cell boundaries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.base import MobilityProvider
from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.propagation import LogDistanceModel, UnitDiskModel

WIDTH, HEIGHT = 400.0, 250.0


def make_model(kind, sense_extra):
    if kind == "unit":
        return UnitDiskModel(75.0, 75.0 + sense_extra)
    return LogDistanceModel()


def make_coords(rng, n, clustered):
    coords = []
    for i in range(n):
        if clustered and i % 3 == 0 and coords:
            # Pile some nodes near others (dense cells) and some right on
            # multiples of the cell size (boundary straddlers).
            x, y = coords[rng.randrange(len(coords))]
            coords.append((min(WIDTH, x + rng.uniform(0, 2.0)),
                           min(HEIGHT, y + rng.uniform(0, 2.0))))
        elif i % 5 == 0:
            edge = 75.0 * rng.randrange(0, 5) + rng.choice((-1e-9, 0.0, 1e-9))
            coords.append((min(max(edge, 0.0), WIDTH), rng.uniform(0, HEIGHT)))
        else:
            coords.append((rng.uniform(0, WIDTH), rng.uniform(0, HEIGHT)))
    return coords


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 50),
    kind=st.sampled_from(["unit", "log"]),
    sense_extra=st.sampled_from([0.0, 25.0]),
    clustered=st.booleans(),
)
def test_static_grid_tables_equal_brute(seed, n, kind, sense_extra, clustered):
    rng = random.Random(seed)
    provider = StaticPositions(make_coords(rng, n, clustered))
    model = make_model(kind, sense_extra)
    grid = NeighborService(provider, model, indexing="grid")
    brute = NeighborService(provider, model, indexing="brute")
    for sender in range(n):
        assert grid.links_from(sender, 0) == brute.links_from(sender, 0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 30),
    kind=st.sampled_from(["unit", "log"]),
    window=st.sampled_from([10_000_000, 50_000_000]),
)
def test_mobile_grid_tables_equal_brute_across_epochs(seed, n, kind, window):
    rng = random.Random(seed)
    models = [
        RandomWaypointModel(x, y, WIDTH, HEIGHT, 0.5, 8.0, 1.0,
                            random.Random(seed * 1000 + i))
        for i, (x, y) in enumerate(make_coords(rng, n, clustered=True))
    ]
    provider = MobilityProvider(models)
    model = make_model(kind, 0.0)
    grid = NeighborService(provider, model, cache_window=window, indexing="grid")
    brute = NeighborService(provider, model, cache_window=window, indexing="brute")
    for epoch in range(4):
        t = epoch * window + window // 3
        for sender in range(n):
            assert grid.links_from(sender, t) == brute.links_from(sender, t)
