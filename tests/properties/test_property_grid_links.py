"""Property: grid-indexed link tables are *exactly* brute-force's.

The grid path's whole contract is "measurably faster, bit-identical
results": for every sender, the batched numpy rebuild must produce the
same node set, the same ``delay_ns``, the same ``in_rx_range`` flag and
the same ``power_dbm`` (to the last bit) as the per-sender brute-force
reference, for both propagation models, across mobility bucket epochs,
and with nodes straddling grid-cell boundaries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.base import MobilityProvider
from repro.mobility.waypoint import RandomWaypointModel
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.params import DEFAULT_PHY
from repro.phy.propagation import LogDistanceModel, UnitDiskModel
from repro.phy.sinr import SinrConfig, wire_sinr

WIDTH, HEIGHT = 400.0, 250.0


def make_model(kind, sense_extra):
    if kind == "unit":
        return UnitDiskModel(75.0, 75.0 + sense_extra)
    return LogDistanceModel()


def make_coords(rng, n, clustered):
    coords = []
    for i in range(n):
        if clustered and i % 3 == 0 and coords:
            # Pile some nodes near others (dense cells) and some right on
            # multiples of the cell size (boundary straddlers).
            x, y = coords[rng.randrange(len(coords))]
            coords.append((min(WIDTH, x + rng.uniform(0, 2.0)),
                           min(HEIGHT, y + rng.uniform(0, 2.0))))
        elif i % 5 == 0:
            edge = 75.0 * rng.randrange(0, 5) + rng.choice((-1e-9, 0.0, 1e-9))
            coords.append((min(max(edge, 0.0), WIDTH), rng.uniform(0, HEIGHT)))
        else:
            coords.append((rng.uniform(0, WIDTH), rng.uniform(0, HEIGHT)))
    return coords


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 50),
    kind=st.sampled_from(["unit", "log"]),
    sense_extra=st.sampled_from([0.0, 25.0]),
    clustered=st.booleans(),
)
def test_static_grid_tables_equal_brute(seed, n, kind, sense_extra, clustered):
    rng = random.Random(seed)
    provider = StaticPositions(make_coords(rng, n, clustered))
    model = make_model(kind, sense_extra)
    grid = NeighborService(provider, model, indexing="grid")
    brute = NeighborService(provider, model, indexing="brute")
    for sender in range(n):
        assert grid.links_from(sender, 0) == brute.links_from(sender, 0)


def make_power_spec(kind, hetero, n, seed):
    """Power-mode wiring (SINR subsystem): model + LinkPowerSpec."""
    overrides = dict(antenna_gain_db=2.0, antenna_gain_jitter_db=1.0,
                     tx_power_jitter_db=3.0) if hetero else {}
    config = SinrConfig(propagation=kind, **overrides)
    wiring = wire_sinr(config, DEFAULT_PHY, n, seed)
    return wiring.model, wiring.power_spec


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 50),
    kind=st.sampled_from(["shadowing", "logdistance"]),
    hetero=st.booleans(),
    clustered=st.booleans(),
)
def test_static_power_mode_grid_tables_equal_brute(
        seed, n, kind, hetero, clustered):
    """Power-mode links (pair-aware shadowing, heterogeneous radio
    offsets, interference-only tails) keep the grid==brute bit-identity
    contract: same nodes, delays, flags and ``power_dbm`` to the last
    bit. The shadow cache is per-model, so both services share one
    model instance -- exactly how the testbed wires it."""
    rng = random.Random(seed)
    provider = StaticPositions(make_coords(rng, n, clustered))
    model, spec = make_power_spec(kind, hetero, n, seed)
    grid = NeighborService(provider, model, indexing="grid", power_spec=spec)
    brute = NeighborService(provider, model, indexing="brute", power_spec=spec)
    for sender in range(n):
        links = grid.links_from(sender, 0)
        assert links == brute.links_from(sender, 0)
        for link in links:
            assert link.sensed == (link.power_dbm >= spec.cs_threshold_dbm)
            assert link.in_rx_range == (link.power_dbm >= spec.rx_threshold_dbm)
            assert link.power_dbm >= spec.keep_threshold_dbm


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 24),
    hetero=st.booleans(),
)
def test_mobile_power_mode_grid_tables_equal_brute(seed, n, hetero):
    rng = random.Random(seed)
    models = [
        RandomWaypointModel(x, y, WIDTH, HEIGHT, 0.5, 8.0, 1.0,
                            random.Random(seed * 1000 + i))
        for i, (x, y) in enumerate(make_coords(rng, n, clustered=True))
    ]
    provider = MobilityProvider(models)
    model, spec = make_power_spec("shadowing", hetero, n, seed)
    window = 50_000_000
    grid = NeighborService(provider, model, cache_window=window,
                           indexing="grid", power_spec=spec)
    brute = NeighborService(provider, model, cache_window=window,
                            indexing="brute", power_spec=spec)
    for epoch in range(3):
        t = epoch * window + window // 3
        for sender in range(n):
            assert grid.links_from(sender, t) == brute.links_from(sender, t)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 30),
    kind=st.sampled_from(["unit", "log"]),
    window=st.sampled_from([10_000_000, 50_000_000]),
)
def test_mobile_grid_tables_equal_brute_across_epochs(seed, n, kind, window):
    rng = random.Random(seed)
    models = [
        RandomWaypointModel(x, y, WIDTH, HEIGHT, 0.5, 8.0, 1.0,
                            random.Random(seed * 1000 + i))
        for i, (x, y) in enumerate(make_coords(rng, n, clustered=True))
    ]
    provider = MobilityProvider(models)
    model = make_model(kind, 0.0)
    grid = NeighborService(provider, model, cache_window=window, indexing="grid")
    brute = NeighborService(provider, model, cache_window=window, indexing="brute")
    for epoch in range(4):
        t = epoch * window + window // 3
        for sender in range(n):
            assert grid.links_from(sender, t) == brute.links_from(sender, t)
