"""Property tests: BFS trees over random placements are lawful."""

import random

from hypothesis import given, settings, strategies as st

from repro.net.tree import bfs_tree, tree_statistics
from repro.world.placement import connected_components


@st.composite
def placements(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    return [(rng.uniform(0, 300), rng.uniform(0, 200)) for _ in range(n)]


@settings(max_examples=40, deadline=None)
@given(coords=placements())
def test_tree_spans_exactly_the_roots_component(coords):
    tree = bfs_tree(coords, radio_range=75.0)
    components = connected_components(coords, 75.0)
    root_component = next(c for c in components if 0 in c)
    assert tree.reachable() == root_component


@settings(max_examples=40, deadline=None)
@given(coords=placements())
def test_tree_is_acyclic_with_minimal_hops(coords):
    tree = bfs_tree(coords, radio_range=75.0)
    hops = tree.hops()
    for node, parent in enumerate(tree.parents):
        if parent >= 0:
            assert hops[node] == hops[parent] + 1  # BFS layering, no cycles


@settings(max_examples=40, deadline=None)
@given(coords=placements())
def test_tree_edges_respect_radio_range(coords):
    import math

    tree = bfs_tree(coords, radio_range=75.0)
    for node, parent in enumerate(tree.parents):
        if parent >= 0:
            d = math.dist(coords[node], coords[parent])
            assert d <= 75.0


@settings(max_examples=20, deadline=None)
@given(coords=placements())
def test_statistics_are_finite_and_consistent(coords):
    tree = bfs_tree(coords, radio_range=75.0)
    stats = tree_statistics(tree)
    assert 0 <= stats["avg_hops"] <= len(coords)
    assert stats["p99_hops"] >= stats["avg_hops"] or stats["avg_hops"] == 0
    assert stats["reachable"] >= 1
