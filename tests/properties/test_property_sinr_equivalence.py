"""Property: SINR reception degenerates to the threshold path exactly.

Two degeneracy claims, both at full-network scale (placement, mobility,
MAC, routing, application -- the whole stack):

* With interference accounting *off* and no SINR threshold, the channel
  keeps the paper's overlap rule and the SINR clause never fires: the
  run must be bit-identical to a plain (``sinr=None``) run -- same
  deliveries, same delays, same retransmissions, same event count.
* With interference accounting *on* over unit-disk propagation, every
  in-range signal is equally strong (constant
  :data:`~repro.phy.propagation.IN_RANGE_POWER_DBM`), so the SINR
  decision -- ~90 dB solo, <= ~0 dB under any overlap, against a 10 dB
  threshold -- *derives* the overlap rule through the real interference
  tracker. Same bit-identity must hold.

The second form is the stronger one: it exercises the tracker's
add/remove bookkeeping on every arrival of the run and still demands
equality to the last bit.
"""

from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.sinr import SinrConfig
from repro.world.network import ScenarioConfig, build_network

SMALL = dict(n_nodes=12, width=200.0, height=140.0, rate_pps=20,
             n_packets=12, warmup_s=2.0, drain_s=2.0)

#: Interference accounting off, no threshold: the classic overlap rule
#: with a vacuous SINR check bolted on.
DEGENERATE = SinrConfig(propagation="unitdisk", interference=False,
                        sinr_threshold_db=None)

#: Interference accounting on, constant unit-disk powers: the overlap
#: rule re-derived from accumulated power against a 10 dB threshold.
DERIVED = SinrConfig(propagation="unitdisk", interference=True,
                     sinr_threshold_db=10.0)


def fingerprint(summary):
    payload = asdict(summary)
    # The SINR run carries its stats section; the threshold run has
    # None there. Everything else must match to the last bit.
    payload.pop("sinr")
    return tuple(sorted(payload.items()))


def run_pair(protocol, seed, mobile, sinr):
    base = ScenarioConfig(protocol=protocol, seed=seed, mobile=mobile,
                          require_connected=False, **SMALL)
    plain = build_network(base)
    summary_plain = plain.run()
    with_sinr = build_network(base.variant(sinr=sinr))
    summary_sinr = with_sinr.run()
    return plain, summary_plain, with_sinr, summary_sinr


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    protocol=st.sampled_from(["rmac", "bmmm"]),
    mobile=st.booleans(),
    sinr=st.sampled_from([DEGENERATE, DERIVED]),
)
def test_unitdisk_sinr_bit_identical_to_threshold_path(
        seed, protocol, mobile, sinr):
    plain, summary_plain, with_sinr, summary_sinr = run_pair(
        protocol, seed, mobile, sinr)
    assert fingerprint(summary_sinr) == fingerprint(summary_plain)
    assert (with_sinr.sim.events_processed == plain.sim.events_processed)
    # The SINR run did collect its stats section.
    stats = summary_sinr.sinr
    assert stats is not None
    if sinr.interference:
        assert stats["concurrent_high_water"] >= 1
    assert summary_plain.sinr is None
