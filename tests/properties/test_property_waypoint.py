"""Property tests: random-waypoint trajectories stay lawful."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.mobility.waypoint import RandomWaypointModel
from repro.sim.units import SEC


@st.composite
def rwp_models(draw):
    width = draw(st.floats(min_value=50, max_value=1000))
    height = draw(st.floats(min_value=50, max_value=1000))
    x = draw(st.floats(min_value=0, max_value=1)) * width
    y = draw(st.floats(min_value=0, max_value=1)) * height
    max_speed = draw(st.floats(min_value=0.5, max_value=20))
    min_speed = draw(st.floats(min_value=0, max_value=1)) * max_speed
    pause = draw(st.floats(min_value=0, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return RandomWaypointModel(x, y, width, height, min_speed, max_speed,
                               pause, random.Random(seed))


@settings(max_examples=30, deadline=None)
@given(model=rwp_models(), times=st.lists(
    st.integers(min_value=0, max_value=600 * SEC), min_size=1, max_size=30))
def test_positions_always_in_bounds(model, times):
    for t in times:
        x, y = model.position(t)
        assert -1e-9 <= x <= model.width + 1e-9
        assert -1e-9 <= y <= model.height + 1e-9


@settings(max_examples=30, deadline=None)
@given(model=rwp_models(), t=st.integers(min_value=0, max_value=600 * SEC))
def test_positions_deterministic_on_requery(model, t):
    first = model.position(t)
    model.position(t + 100 * SEC)  # extend further
    assert model.position(t) == first


@settings(max_examples=20, deadline=None)
@given(model=rwp_models())
def test_displacement_bounded_by_max_speed(model):
    dt = SEC
    prev = model.position(0)
    for t in range(dt, 120 * SEC, dt):
        cur = model.position(t)
        dist = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
        assert dist <= model.max_speed * (dt / SEC) * (1 + 1e-6)
        prev = cur
