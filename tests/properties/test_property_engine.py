"""Property tests: the event engine never reorders time."""

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


@given(delays=st.lists(st.integers(min_value=0, max_value=10**9),
                       min_size=1, max_size=60))
def test_execution_is_time_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.at(d, lambda d=d: fired.append(d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.integers(min_value=0, max_value=10**6),
                       min_size=2, max_size=40),
       cancel_mask=st.lists(st.booleans(), min_size=2, max_size=40))
def test_cancellation_subset(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = [sim.at(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
    for handle, cancel in zip(handles, cancel_mask):
        if cancel:
            handle.cancel()
    sim.run()
    expected = [i for i, (d, c) in enumerate(zip(delays, cancel_mask[:len(delays)]))
                if not c]
    # pad mask for unzipped tail
    expected = [i for i in range(len(delays))
                if not (i < len(cancel_mask) and cancel_mask[i])]
    assert sorted(fired) == expected


@given(chain=st.lists(st.integers(min_value=1, max_value=1000),
                      min_size=1, max_size=30))
def test_relative_scheduling_accumulates(chain):
    sim = Simulator()
    times = []

    def step(remaining):
        times.append(sim.now)
        if remaining:
            sim.after(remaining[0], lambda: step(remaining[1:]))

    sim.at(0, lambda: step(chain))
    sim.run()
    expected, acc = [0], 0
    for d in chain:
        acc += d
        expected.append(acc)
    assert times == expected


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.booleans()), min_size=1, max_size=50))
def test_monotonic_now_during_run(events):
    sim = Simulator()
    observed = []
    for t, _ in events:
        sim.at(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
