"""Property tests: the Section 3.4 receiver split is a partition."""

from hypothesis import given, strategies as st

from repro.core.mrts import split_receivers

receiver_lists = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=120, unique=True
)
limits = st.integers(min_value=1, max_value=25)


@given(receivers=receiver_lists, limit=limits)
def test_split_is_an_ordered_partition(receivers, limit):
    chunks = split_receivers(receivers, limit)
    flat = [r for chunk in chunks for r in chunk]
    assert flat == list(receivers)          # order preserved, nothing lost
    assert all(1 <= len(c) <= limit for c in chunks)


@given(receivers=receiver_lists, limit=limits)
def test_split_chunk_count_is_minimal(receivers, limit):
    chunks = split_receivers(receivers, limit)
    n = len(receivers)
    assert len(chunks) == -(-n // limit)    # ceil division


@given(receivers=receiver_lists, limit=limits)
def test_all_chunks_full_except_last(receivers, limit):
    chunks = split_receivers(receivers, limit)
    assert all(len(c) == limit for c in chunks[:-1])
