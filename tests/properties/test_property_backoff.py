"""Property tests: backoff invariants of Section 3.3.1."""

import random

from hypothesis import given, strategies as st

from repro.mac.backoff import Backoff


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       ops=st.lists(st.sampled_from(["draw", "double", "reset", "dec"]),
                    max_size=100))
def test_bi_always_within_window_and_nonnegative(seed, ops):
    backoff = Backoff(random.Random(seed), cw_min=31, cw_max=1023)
    for op in ops:
        if op == "draw":
            backoff.draw()
            assert 0 <= backoff.bi <= backoff.cw
        elif op == "double":
            backoff.double_cw()
        elif op == "reset":
            backoff.reset_cw()
        else:
            before = backoff.bi
            backoff.decrement()
            assert backoff.bi in (before, before - 1)
            assert backoff.bi >= 0
        assert 31 <= backoff.cw <= 1023


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       doublings=st.integers(min_value=0, max_value=20))
def test_cw_sequence_follows_2x_plus_1(seed, doublings):
    backoff = Backoff(random.Random(seed), cw_min=31, cw_max=1023)
    cw = 31
    for _ in range(doublings):
        backoff.double_cw()
        cw = min(1023, 2 * cw + 1)
    assert backoff.cw == cw


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_same_seed_same_draw_sequence(seed):
    a = Backoff(random.Random(seed))
    b = Backoff(random.Random(seed))
    assert [a.draw() for _ in range(20)] == [b.draw() for _ in range(20)]
