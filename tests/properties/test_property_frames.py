"""Property tests: frame wire formats round-trip for arbitrary inputs."""

from hypothesis import given, strategies as st

from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    MrtsFrame,
    RakFrame,
    RtsFrame,
)

node_ids = st.integers(min_value=0, max_value=2**48 - 3)
aux_values = st.integers(min_value=0, max_value=0xFFFF)


@given(
    transmitter=node_ids,
    receivers=st.lists(node_ids, min_size=1, max_size=30, unique=True),
)
def test_mrts_roundtrip(transmitter, receivers):
    frame = MrtsFrame(transmitter, tuple(receivers))
    decoded = MrtsFrame.from_bytes(frame.to_bytes())
    assert decoded == frame
    assert len(frame.to_bytes()) == 12 + 6 * len(receivers)


@given(
    transmitter=node_ids,
    receivers=st.lists(node_ids, min_size=1, max_size=30, unique=True),
    index=st.data(),
)
def test_mrts_index_bijection(transmitter, receivers, index):
    frame = MrtsFrame(transmitter, tuple(receivers))
    for i, r in enumerate(receivers):
        assert frame.index_of(r) == i


@given(transmitter=node_ids, receiver=node_ids, aux=aux_values)
def test_rts_roundtrip(transmitter, receiver, aux):
    frame = RtsFrame(transmitter, receiver, aux)
    assert RtsFrame.from_bytes(frame.to_bytes()) == frame


@given(receiver=node_ids, aux=aux_values,
       cls=st.sampled_from([CtsFrame, AckFrame, RakFrame]))
def test_response_roundtrip_wire_fields(receiver, aux, cls):
    frame = cls(transmitter=5, receiver=receiver, aux=aux)
    decoded = cls.from_bytes(frame.to_bytes())
    assert decoded.receiver == receiver
    assert decoded.aux == aux


@given(
    src=node_ids,
    dst=st.one_of(node_ids, st.sampled_from([-1, -2])),
    seq=st.integers(min_value=0, max_value=0xFFFF),
    payload_bytes=st.integers(min_value=0, max_value=2000),
    reliable=st.booleans(),
    overhead=st.integers(min_value=0, max_value=255),
)
def test_data_roundtrip(src, dst, seq, payload_bytes, reliable, overhead):
    frame = DataFrame(src=src, dst=dst, seq=seq, payload_bytes=payload_bytes,
                      reliable=reliable, overhead=overhead)
    decoded = DataFrame.from_bytes(frame.to_bytes())
    assert (decoded.src, decoded.dst, decoded.seq) == (src, dst, seq)
    assert decoded.payload_bytes == payload_bytes
    assert decoded.reliable == reliable
    assert decoded.overhead == overhead


@given(data=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_never_crash_decoder(data):
    from repro.mac.frames import FrameDecodeError

    for cls in (MrtsFrame, RtsFrame, CtsFrame, DataFrame):
        try:
            cls.from_bytes(data)
        except FrameDecodeError:
            pass  # rejection is the expected failure mode
