"""Property tests: busy-tone presence accounting never leaks."""

from hypothesis import given, settings, strategies as st

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.propagation import UnitDiskModel
from repro.sim.engine import Simulator
from repro.sim.units import US


@st.composite
def pulse_schedules(draw):
    """A set of (emitter, start, duration) pulses on a 3-node line."""
    n_pulses = draw(st.integers(min_value=1, max_value=12))
    pulses = []
    busy_until = {}
    for _ in range(n_pulses):
        emitter = draw(st.integers(min_value=0, max_value=2))
        start = draw(st.integers(min_value=0, max_value=500 * US))
        duration = draw(st.integers(min_value=1 * US, max_value=50 * US))
        # Avoid double-on for the same emitter (a protocol invariant).
        # <= : a pulse starting exactly when the previous one ends races
        # the turn-off event (the test schedules all pulses up front, so
        # the new turn-on carries the earlier seq and fires first --
        # real MACs only re-pulse after observing the previous one end).
        if start <= busy_until.get(emitter, -1):
            continue
        busy_until[emitter] = start + duration
        pulses.append((emitter, start, duration))
    return pulses


@settings(max_examples=60, deadline=None)
@given(pulses=pulse_schedules())
def test_presence_always_clears_after_all_pulses(pulses):
    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (50, 0), (100, 0)]),
                          UnitDiskModel(75.0))
    tone = BusyToneChannel(sim, svc, ToneType.ABT, detect_time=15 * US)
    for emitter, start, duration in pulses:
        sim.at(start, lambda e=emitter, d=duration: tone.pulse(e, d))
    sim.run()
    sim.run(until=sim.now + 10 * US)
    for node in range(3):
        assert not tone.present(node)
        assert not tone.is_emitting(node)


@settings(max_examples=60, deadline=None)
@given(pulses=pulse_schedules())
def test_longest_presence_bounded_by_window_and_total(pulses):
    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (50, 0), (100, 0)]),
                          UnitDiskModel(75.0))
    tone = BusyToneChannel(sim, svc, ToneType.ABT, detect_time=15 * US)
    for emitter, start, duration in pulses:
        sim.at(start, lambda e=emitter, d=duration: tone.pulse(e, d))
    sim.run()
    end = sim.now
    window = tone.longest_presence(1, 0, end)
    assert 0 <= window <= end
    # A sub-window can never see more presence than the full window.
    assert tone.longest_presence(1, 0, end // 2 or 1) <= window or window == 0
