"""Smoke tests: every example's main() runs and prints what it claims."""

import sys

import pytest

sys.path.insert(0, "examples")


def test_timeline_fig4_example(capsys):
    import timeline_fig4

    timeline_fig4.main()
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "MRTS" in out and "abt-on" in out
    assert "acked=(1, 2)" in out


def test_sensor_fanout_example(capsys):
    import sensor_fanout

    sensor_fanout.main()
    out = capsys.readouterr().out
    assert "sensors configured: 30/30" in out
    assert "132" in out  # the 20-receiver chunk appears in the split


def test_quickstart_example(capsys):
    import quickstart

    quickstart.main()
    out = capsys.readouterr().out
    assert "R_deliv (Fig. 7)" in out
    assert "BLESS tree" in out


def test_custom_protocol_example_registers_and_compares(capsys):
    import custom_protocol

    custom_protocol.main()
    out = capsys.readouterr().out
    assert "rmac-norbt" in out
    assert "Ablating the Receiver Busy Tone" in out


def test_telemetry_profile_example(capsys):
    import telemetry_profile

    telemetry_profile.main(n_nodes=10, n_packets=5)
    out = capsys.readouterr().out
    assert "event-loop profile" in out
    assert "events/sec" in out
    assert "ring kept" in out


def test_figure_sweep_example_cli(capsys, tmp_path):
    import figure_sweep

    figure_sweep.SCALES["small"] = (10, 5, (10,), (1,))
    csv = tmp_path / "out.csv"
    code = figure_sweep.main(["fig13", "--scale", "small", "--csv", str(csv)])
    assert code == 0
    assert csv.exists()
    out = capsys.readouterr().out
    assert "MRTS Abortion" in out
