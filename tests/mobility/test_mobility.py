"""Mobility models: stationary and random waypoint."""

import math
import random

import pytest

from repro.mobility.base import MobilityProvider
from repro.mobility.stationary import StationaryModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.sim.units import SEC


def make_rwp(**kw):
    defaults = dict(x=100.0, y=100.0, width=500.0, height=300.0,
                    min_speed=1.0, max_speed=4.0, pause=2.0,
                    rng=random.Random(7))
    defaults.update(kw)
    return RandomWaypointModel(**defaults)


class TestStationary:
    def test_never_moves(self):
        model = StationaryModel(3.5, 7.5)
        assert model.position(0) == (3.5, 7.5)
        assert model.position(10**12) == (3.5, 7.5)
        assert model.is_static()


class TestRandomWaypoint:
    def test_starts_at_initial_position(self):
        model = make_rwp(pause=2.0)
        assert model.position(0) == (100.0, 100.0)

    def test_initial_pause_is_partial(self):
        # The first pause is drawn uniformly from [0, pause] so short runs
        # are not artificially stationary; it never exceeds the pause.
        for seed in range(10):
            model = make_rwp(pause=5.0, rng=random.Random(seed))
            assert 0 <= model._legs[0].end <= 5 * SEC

    def test_positions_stay_in_bounds(self):
        model = make_rwp()
        for t in range(0, 300 * SEC, SEC):
            x, y = model.position(t)
            assert 0 <= x <= 500 and 0 <= y <= 300

    def test_speed_respects_bounds(self):
        model = make_rwp(min_speed=2.0, max_speed=4.0, pause=0.0)
        dt = SEC // 10
        for t in range(0, 60 * SEC, dt):
            x0, y0 = model.position(t)
            x1, y1 = model.position(t + dt)
            speed = math.hypot(x1 - x0, y1 - y0) / (dt / SEC)
            assert speed <= 4.0 + 1e-6  # pauses allow 0

    def test_reaches_waypoints_exactly(self):
        model = make_rwp()
        model._extend_to(100 * SEC)
        for leg in model._legs[1:3]:
            assert model.position(leg.arrive) == (leg.x1, leg.y1)
            # position halfway is on the segment
            mid = (leg.start + leg.arrive) // 2
            x, y = model.position(mid)
            cross = (x - leg.x0) * (leg.y1 - leg.y0) - (y - leg.y0) * (leg.x1 - leg.x0)
            assert abs(cross) < 1e-6 * (1 + abs(leg.x1) + abs(leg.y1))

    def test_queries_repeatable_out_of_order(self):
        model = make_rwp()
        late = model.position(200 * SEC)
        early = model.position(10 * SEC)
        assert model.position(200 * SEC) == late
        assert model.position(10 * SEC) == early

    def test_speed_floor_resamples_zero_speeds(self):
        model = make_rwp(min_speed=0.0, max_speed=4.0)
        model._extend_to(500 * SEC)
        for leg in model._legs[1:]:
            if leg.arrive > leg.start:
                dist = math.hypot(leg.x1 - leg.x0, leg.y1 - leg.y0)
                speed = dist / ((leg.arrive - leg.start) / SEC)
                assert speed >= 0.009

    def test_compact_preserves_current_position(self):
        model = make_rwp()
        pos = model.position(100 * SEC)
        model.compact(90 * SEC)
        assert model.position(100 * SEC) == pos

    def test_validation(self):
        with pytest.raises(ValueError):
            make_rwp(max_speed=0)
        with pytest.raises(ValueError):
            make_rwp(min_speed=5.0, max_speed=4.0)
        with pytest.raises(ValueError):
            make_rwp(x=1000.0)
        model = make_rwp()
        with pytest.raises(ValueError):
            model.position(-1)


class TestProvider:
    def test_positions_array_shape(self):
        provider = MobilityProvider([StationaryModel(0, 0), StationaryModel(1, 2)])
        arr = provider.positions(0)
        assert arr.shape == (2, 2)
        assert provider.is_static()

    def test_mixed_models_not_static(self):
        provider = MobilityProvider([StationaryModel(0, 0), make_rwp()])
        assert not provider.is_static()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MobilityProvider([])
