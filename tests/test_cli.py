"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_protocols_lists_registry(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out.split()
    for name in ("rmac", "bmmm", "bmw", "lbp", "mx", "dot11"):
        assert name in out


def test_run_prints_summary(capsys):
    code = main(["run", "--nodes", "12", "--width", "200", "--height", "140",
                 "--packets", "10", "--rate", "5", "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "delivery ratio" in out
    assert "rmac" in out


def test_run_mobile_flag(capsys):
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "5", "--speed", "8", "--pause", "2",
                 "--seed", "3"])
    assert code == 0


def test_fig4_prints_trace(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "MRTS" in out and "rbt-on" in out and "abt-on" in out


def test_topology_reports_means(capsys):
    assert main(["topology", "--nodes", "40", "--placements", "2"]) == 0
    out = capsys.readouterr().out
    assert "avg_hops" in out and "paper 3.87" in out


def test_figure_small_scale(capsys, tmp_path, monkeypatch):
    import repro.cli as cli

    monkeypatch.setitem(cli.FIGURE_SCALES, "small", (12, 8, (10,), (1,)))
    csv_path = tmp_path / "fig12.csv"
    code = main(["figure", "fig12", "--scale", "small", "--csv", str(csv_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Length of MRTS" in out
    assert csv_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert "scenario" in header


def test_run_telemetry_flag_writes_json(capsys, tmp_path):
    import json

    out = tmp_path / "telemetry.json"
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "5", "--rate", "5", "--seed", "2",
                 "--telemetry", str(out)])
    assert code == 0
    assert "events/s" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["events"] > 0
    assert payload["events_per_sec"] > 0
    assert payload["label_counts"]


def test_run_trace_jsonl_flag_streams_trace(capsys, tmp_path):
    import json

    out = tmp_path / "trace.jsonl"
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "5", "--rate", "5", "--seed", "2",
                 "--trace-jsonl", str(out)])
    assert code == 0
    lines = out.read_text().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"time", "node", "kind"} <= set(record)


def test_figure_reports_failed_points_without_failing(capsys, monkeypatch,
                                                      tmp_path):
    import repro.cli as cli
    import repro.experiments.scenarios as scenarios

    monkeypatch.setitem(cli.FIGURE_SCALES, "small", (10, 4, (10,), (1, 2)))
    real = scenarios.scaled_scenario

    def sabotaged(protocol, scenario, rate, seed, **kw):
        config = real(protocol, scenario, rate, seed, **kw)
        return config.variant(protocol="boom") if seed == 2 else config

    monkeypatch.setattr(cli, "scaled_scenario", sabotaged)
    code = main(["figure", "fig12", "--scale", "small", "--progress"])
    captured = capsys.readouterr()
    assert code == 0  # partial results, exit zero unless asked
    assert "sweep failure" in captured.err
    assert "FAILED" in captured.out  # the --progress line

    code = main(["figure", "fig12", "--scale", "small", "--fail-on-error"])
    assert code == 1


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_campaign_run_status_and_figure_from(capsys, tmp_path, monkeypatch):
    import repro.cli as cli
    import repro.experiments.runner as runner_module

    monkeypatch.setitem(cli.FIGURE_SCALES, "small", (10, 4, (10,), (1,)))
    store = tmp_path / "campaign"
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "campaign store" in out
    assert (store / "results.jsonl").exists()

    # status: the manifest records the matrix, so totals are known.
    code = main(["campaign", "status", "--out", str(store)])
    assert code == 0
    out = capsys.readouterr().out
    assert "3/3 points done (100%)" in out
    assert "stationary" in out and "speed2" in out

    # Resume: same figures, zero re-simulation.
    def exploding_run_point(config):
        raise AssertionError("resume must not simulate completed points")

    monkeypatch.setattr(runner_module, "run_point", exploding_run_point)
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac"])
    assert code == 0
    assert "(cached)" in capsys.readouterr().out

    # figure --from regenerates a figure from the store, no simulation.
    code = main(["figure", "fig7", "--from", str(store)])
    assert code == 0
    assert "Packet Delivery Ratio" in capsys.readouterr().out

    # validate --from reads the same store (rmac-only: paired claims n/a).
    code = main(["validate", "--from", str(store)])
    assert code in (0, 1)
    assert "Paper-claim validation" in capsys.readouterr().out


def test_campaign_status_requires_existing_store(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["campaign", "status", "--out", str(tmp_path / "nope")])


def test_campaign_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign"])


def test_run_oracle_flag_clean_run(capsys):
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5", "--oracle"])
    assert code == 0
    out = capsys.readouterr().out
    assert "oracle: 0 violation(s)" in out


def test_run_oracle_report_writes_json(capsys, tmp_path):
    import json

    report_path = tmp_path / "oracle.json"
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5",
                 "--oracle-report", str(report_path)])
    assert code == 0
    assert "oracle report ->" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["total"] == 0
    assert report["violations"] == []


def test_run_faults_plan(capsys, tmp_path):
    import json

    from repro.faults import FaultPlan, NodeCrash

    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(
        FaultPlan(crashes=(NodeCrash(node=2, at_s=0.6),)).to_dict()))
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5",
                 "--faults", str(plan_path), "--oracle"])
    # The crash may or may not produce an invariant violation depending
    # on what node 2 was doing; both exits are legal, but the oracle
    # line must be printed either way.
    assert code in (0, 1)
    assert "oracle:" in capsys.readouterr().out


def test_campaign_run_with_faults_and_oracle(capsys, tmp_path, monkeypatch):
    import json

    import repro.cli as cli
    import repro.experiments.runner as runner_module
    from repro.experiments.store import ResultStore
    from repro.faults import FaultPlan, NodeCrash

    monkeypatch.setitem(cli.FIGURE_SCALES, "small", (10, 4, (10,), (1,)))
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(
        FaultPlan(crashes=(NodeCrash(node=3, at_s=0.6),)).to_dict()))
    store = tmp_path / "campaign"
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac",
                 "--faults", str(plan_path), "--oracle"])
    assert code == 0
    capsys.readouterr()

    # The plan and oracle flag land in the manifest, and every persisted
    # point carries its oracle report.
    manifest = ResultStore(str(store), create=False).manifest()
    assert manifest["oracle"] is True
    assert manifest["faults"]["crashes"] == [
        {"node": 3, "at_s": 0.6, "recover_s": None}]
    for _key, summary in ResultStore(str(store)).completed().items():
        assert summary.oracle_violations is not None

    # status reconstructs the faulted matrix: nothing missing or stale.
    code = main(["campaign", "status", "--out", str(store)])
    assert code == 0
    assert "3/3 points done (100%)" in capsys.readouterr().out

    # Resume with the same flags: fully cached.
    def exploding_run_point(config):
        raise AssertionError("resume must not simulate completed points")

    monkeypatch.setattr(runner_module, "run_point", exploding_run_point)
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac",
                 "--faults", str(plan_path), "--oracle"])
    assert code == 0
    assert "(cached)" in capsys.readouterr().out


def test_run_sinr_flag_prints_interference_stats(capsys):
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5", "--sinr", "shadowing"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sinr:" in out and "interference drop(s)" in out


def test_run_sinr_overrides_forwarded(capsys):
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5", "--sinr", "shadowing",
                 "--sinr-threshold", "6", "--sinr-sigma", "4",
                 "--sinr-fading", "rician", "--tx-jitter", "2"])
    assert code == 0
    assert "sinr:" in capsys.readouterr().out


def test_sinr_flags_without_profile_are_ignored(capsys):
    # --sinr-threshold alone (no --sinr) keeps the threshold path.
    code = main(["run", "--nodes", "10", "--width", "180", "--height", "130",
                 "--packets", "4", "--rate", "5", "--sinr-threshold", "6"])
    assert code == 0
    assert "sinr:" not in capsys.readouterr().out


def test_campaign_run_sinr_manifest_and_resume(capsys, tmp_path, monkeypatch):
    import repro.cli as cli
    import repro.experiments.runner as runner_module
    from repro.experiments.store import ResultStore

    monkeypatch.setitem(cli.FIGURE_SCALES, "small", (10, 4, (10,), (1,)))
    store = tmp_path / "campaign"
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac", "--sinr", "shadowing"])
    assert code == 0
    capsys.readouterr()

    # The SinrConfig lands in the manifest, and status reconstructs the
    # shadowed matrix: nothing missing or stale.
    manifest = ResultStore(str(store), create=False).manifest()
    assert manifest["sinr"]["propagation"] == "shadowing"
    code = main(["campaign", "status", "--out", str(store)])
    assert code == 0
    assert "3/3 points done (100%)" in capsys.readouterr().out

    # Resume with the same flag: fully cached.
    def exploding_run_point(config):
        raise AssertionError("resume must not simulate completed points")

    monkeypatch.setattr(runner_module, "run_point", exploding_run_point)
    code = main(["campaign", "run", "--out", str(store), "--scale", "small",
                 "--protocols", "rmac", "--sinr", "shadowing"])
    assert code == 0
    assert "(cached)" in capsys.readouterr().out
