"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.mac.bmmm import BmmmProtocol
from repro.mac.bmw import BmwProtocol
from repro.mac.dot11 import Dot11Config, Dot11Dcf
from repro.mac.lamm import LammProtocol
from repro.mac.lbp import LbpProtocol
from repro.mac.mx import MxProtocol
from repro.sim.units import MS
from repro.world.testbed import MacTestbed


def make_rmac_testbed(coords, seed=1, trace=False, config=None, **tb_kwargs):
    """A testbed with one RmacProtocol per node."""
    tb = MacTestbed(coords=coords, seed=seed, trace=trace, **tb_kwargs)
    cfg = config or RmacConfig(phy=tb.phy)
    tb.build_macs(
        lambda i, t: RmacProtocol(i, t.sim, t.radios[i], t.node_rng(i), cfg, tracer=t.tracer)
    )
    return tb


_DOT11_CLASSES = {
    "dot11": Dot11Dcf,
    "bmmm": BmmmProtocol,
    "bmw": BmwProtocol,
    "lamm": LammProtocol,
    "lbp": LbpProtocol,
    "mx": MxProtocol,
}


def make_dot11_testbed(coords, protocol="dot11", seed=1, trace=False, config=None, **tb_kwargs):
    """A testbed with one 802.11-family MAC per node."""
    tb = MacTestbed(coords=coords, seed=seed, trace=trace, **tb_kwargs)
    cfg = config or Dot11Config(phy=tb.phy)
    cls = _DOT11_CLASSES[protocol]
    tb.build_macs(
        lambda i, t: cls(i, t.sim, t.radios[i], t.node_rng(i), cfg, tracer=t.tracer)
    )
    return tb


def collect_upper(mac):
    """Attach a recording upper layer; returns the list being filled."""
    received = []
    mac.upper_rx = lambda payload, src: received.append((payload, src))
    return received


#: A 3-node "Fig. 4" layout: sender 0 with receivers 1 and 2 in range.
TRIANGLE = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)]

#: A 4-node chain with 60 m spacing (range 75 m): classic hidden terminals
#: (0 and 2 cannot hear each other but both reach 1).
CHAIN = [(0.0, 0.0), (60.0, 0.0), (120.0, 0.0), (180.0, 0.0)]


@pytest.fixture
def triangle_rmac():
    return make_rmac_testbed(TRIANGLE, seed=11)


def run_ms(tb, ms: int) -> int:
    return tb.run(ms * MS)
