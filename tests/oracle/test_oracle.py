"""The invariant oracle: rule-by-rule unit checks on synthetic events,
clean-run checks through the full stack, and the crafted-fault test
proving an injected violation is detected and attributed."""

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.experiments.runner import run_point
from repro.faults import FaultInjector, FaultPlan, NodeCrash
from repro.oracle import InvariantOracle, Violation
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.units import SEC
from repro.world.network import ScenarioConfig
from repro.world.testbed import MacTestbed


def ev(time, node, kind, **detail) -> TraceEvent:
    return TraceEvent(time, node, kind, detail)


def feed(oracle: InvariantOracle, *events: TraceEvent) -> InvariantOracle:
    for event in events:
        oracle.on_event(event)
    return oracle


# ---------------------------------------------------------------------------
# Rule units (synthetic event streams)
# ---------------------------------------------------------------------------
def test_rbt_unsolicited_flagged():
    oracle = feed(InvariantOracle(), ev(1000, 4, "rbt-on-rx", index=0))
    assert oracle.counts["rbt-unsolicited"] == 1
    violation = oracle.violations[0]
    assert violation.rule == "rbt-unsolicited"
    assert violation.node == 4 and violation.time == 1000


def test_rbt_answering_mrts_is_clean():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 4, "mrts-rx", src=0, index=0),
        ev(1000, 4, "rbt-on-rx", index=0),
    )
    assert oracle.total == 0


def test_stale_mrts_does_not_justify_rbt():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 4, "mrts-rx", src=0, index=0),
        ev(2000, 4, "rbt-on-rx", index=0),  # later instant: unsolicited
    )
    assert oracle.counts["rbt-unsolicited"] == 1


def test_abt_slot_conflict_flagged():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 1, "abt-scheduled", index=0, src=0, slot_end=2000),
        ev(1000, 2, "abt-scheduled", index=0, src=0, slot_end=2000),
    )
    assert oracle.counts["abt-slot-conflict"] == 1
    assert oracle.violations[0].detail["other"] == 1


def test_new_mrts_resets_slot_claims():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 1, "abt-scheduled", index=0, src=0, slot_end=2000),
        ev(5000, 0, "mrts-tx", receivers=(2,), seq=2, attempt=1),
        ev(6000, 2, "abt-scheduled", index=0, src=0, slot_end=7000),
    )
    assert oracle.counts["abt-slot-conflict"] == 0


def test_rdata_without_rbt_flagged():
    oracle = feed(InvariantOracle(), ev(3000, 0, "rdata-tx", seq=1))
    assert oracle.counts["rdata-without-rbt"] == 1
    clean = feed(
        InvariantOracle(),
        ev(3000, 0, "rbt-detected", window_start=1000),
        ev(3000, 0, "rdata-tx", seq=1),
    )
    assert clean.total == 0


def test_reliable_outcome_partition_checked():
    bad = feed(InvariantOracle(), ev(9000, 0, "reliable-done",
                                     requested=(1, 2), acked=(1,),
                                     failed=(), dropped=False))
    assert bad.counts["reliable-outcome"] == 1

    undropped = feed(InvariantOracle(), ev(9000, 0, "reliable-done",
                                           requested=(1, 2), acked=(1,),
                                           failed=(2,), dropped=False))
    assert undropped.counts["reliable-outcome"] == 1

    clean = feed(InvariantOracle(), ev(9000, 0, "reliable-done",
                                       requested=(1, 2), acked=(1,),
                                       failed=(2,), dropped=True))
    assert clean.total == 0


def test_abt_skipped_flagged_after_deadline():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 2, "abt-scheduled", index=1, src=0, slot_end=3000),
        ev(9000, 0, "no-rbt"),  # any later event triggers the check
    )
    assert oracle.counts["abt-skipped"] == 1
    violation = oracle.violations[0]
    assert violation.node == 2
    assert violation.detail == {"index": 1, "src": 0, "slot_end": 3000}


def test_abt_in_slot_is_clean():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 2, "abt-scheduled", index=1, src=0, slot_end=3000),
        ev(2000, 2, "abt-on"),
        ev(3000, 2, "abt-off"),
        ev(9000, 0, "no-rbt"),
    )
    assert oracle.total == 0


def test_overlapping_previous_pulse_satisfies_slot():
    """The paper's pathological overlap: the previous ABT pulse is still
    on when the next slot starts, so the new pulse is skipped -- but the
    tone does cover the slot, and the oracle must not flag it."""
    oracle = feed(
        InvariantOracle(),
        ev(500, 2, "abt-on"),  # earlier transaction's pulse, still on
        ev(1000, 2, "abt-scheduled", index=0, src=0, slot_end=1800),
        ev(1700, 2, "abt-off"),
        ev(9000, 0, "no-rbt"),
    )
    assert oracle.total == 0


def test_finish_resolves_only_elapsed_slots():
    oracle = feed(
        InvariantOracle(),
        ev(1000, 2, "abt-scheduled", index=0, src=0, slot_end=3000),
        ev(1000, 3, "abt-scheduled", index=1, src=0, slot_end=9000),
        ev(5000, 0, "no-rbt"),  # last event: slot_end=9000 not elapsed
    )
    oracle.finish()
    assert oracle.counts["abt-skipped"] == 1  # only node 2's slot
    assert oracle.violations[0].node == 2


def test_attach_chains_existing_sink():
    tracer = Tracer(enabled=True)
    seen = []
    tracer.sink = seen.append
    oracle = InvariantOracle().attach(tracer)
    tracer.emit(1000, 4, "rbt-on-rx", index=0)
    assert len(seen) == 1  # the prior sink still fires
    assert oracle.counts["rbt-unsolicited"] == 1


def test_report_shape_and_truncation():
    oracle = InvariantOracle(max_recorded=2)
    for t in (1000, 2000, 3000):
        oracle.on_event(ev(t, 4, "rbt-on-rx", index=0))
    report = oracle.report()
    assert report["total"] == 3
    assert report["rules"] == {"rbt-unsolicited": 3}
    assert len(report["violations"]) == 2
    assert report["truncated"] is True
    assert report["events_seen"] == 3
    assert Violation(**{k: report["violations"][0][k]
                        for k in ("rule", "time", "node", "message", "detail")})


# ---------------------------------------------------------------------------
# Full stack: clean paper scenarios report zero violations
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["rmac", "bmmm"])
def test_fault_free_run_is_clean(protocol):
    summary = run_point(ScenarioConfig(
        protocol=protocol, n_nodes=12, width=180.0, height=120.0,
        rate_pps=8.0, n_packets=8, warmup_s=0.5, drain_s=0.5, seed=5,
        oracle=True,
    ))
    assert summary.oracle_violations == 0
    assert summary.oracle_report["rules"] == {}
    assert summary.oracle_report["events_seen"] > 0


def test_oracle_with_telemetry_lands_in_telemetry_dict():
    summary = run_point(ScenarioConfig(
        n_nodes=10, width=150.0, height=100.0, rate_pps=5.0, n_packets=4,
        warmup_s=0.5, drain_s=0.5, seed=3, oracle=True,
        collect_telemetry=True,
    ))
    assert summary.telemetry["oracle_violations"] == 0


# ---------------------------------------------------------------------------
# The crafted fault: a receiver is made to skip its ABT slot, and the
# oracle attributes the violation to that node, time, and rule.
# ---------------------------------------------------------------------------
def _reliable_send_testbed(faults=None) -> MacTestbed:
    tb = MacTestbed(coords=[(0, 0), (50, 0), (0, 50)], seed=7, trace=True,
                    faults=faults)
    config = RmacConfig(phy=tb.phy)
    tb.build_macs(lambda i, t: RmacProtocol(i, t.sim, t.radios[i],
                                            t.node_rng(i), config,
                                            tracer=t.tracer))
    tb.macs[0].send_reliable((1, 2), payload="x", payload_bytes=500)
    return tb


def test_crafted_fault_reports_exactly_the_injected_violation():
    # Discovery run: when does node 2 commit to its ABT slot?
    probe = _reliable_send_testbed()
    probe.run(100_000_000)
    scheduled = [e for e in probe.tracer.of_kind("abt-scheduled")
                 if e.node == 2]
    assert scheduled, "reference run must complete the handshake"
    sched = scheduled[0]
    assert sched.detail["index"] == 1  # second receiver, delayed pulse

    # Replay with node 2's radio crashed between its commitment and its
    # pulse: it promised an ABT it can no longer put on the air.
    crash_at = (sched.time + 1000) / SEC
    plan = FaultPlan(crashes=(NodeCrash(node=2, at_s=crash_at),))
    tb = _reliable_send_testbed(faults=FaultInjector(plan))
    oracle = InvariantOracle().attach(tb.tracer)
    tb.run(100_000_000)
    oracle.finish()

    skipped = [v for v in oracle.violations if v.rule == "abt-skipped"]
    assert len(skipped) == 1
    violation = skipped[0]
    assert violation.node == 2
    assert violation.time == sched.time
    assert violation.detail["index"] == 1 and violation.detail["src"] == 0
    # The injected silence is also traced as such, distinguishing an
    # injected fault from a protocol bug in post-mortems.
    assert tb.tracer.of_kind("fault-tone-suppressed")
    # No other rule fires: the sender retries and records the failure
    # legally, so reliable-outcome stays clean.
    assert oracle.counts["reliable-outcome"] == 0
    assert oracle.counts["rdata-without-rbt"] == 0
