"""The docs-vs-CLI drift check (tools/check_docs.py).

The checker itself is exercised against injected stale content, and the
repository's actual docs are asserted clean — so a PR that renames a
flag without updating the docs fails tier-1, not just the CI step.
"""

import importlib.util
import pathlib

import pytest

from repro.cli import build_parser

ROOT = pathlib.Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


@pytest.fixture(scope="module")
def parser():
    return build_parser()


def _check(markdown, parser):
    return check_docs.check_text(markdown, parser, "doc.md")


def test_repo_docs_have_no_stale_commands(parser):
    problems, total = check_docs.check_files(
        check_docs.default_files(str(ROOT)), parser)
    assert problems == []
    assert total >= 6  # the extractor must actually be finding commands


def test_valid_commands_pass(parser):
    text = """
```bash
python -m repro figure fig7 --scale medium --workers 8 --csv out.csv
python -m repro campaign run --out store/ --scale paper --protocols rmac,bmmm
python -m repro campaign status --out store/
python -m repro figure fig9 --from store/
```
"""
    problems, total = _check(text, parser)
    assert problems == [] and total == 4


def test_injected_stale_flag_fails(parser):
    text = """
```bash
python -m repro figure fig7 --no-such-flag
```
"""
    problems, _ = _check(text, parser)
    assert len(problems) == 1
    assert "--no-such-flag" in problems[0] and "doc.md:3" in problems[0]


def test_unknown_subcommand_fails(parser):
    problems, _ = _check("```bash\npython -m repro frobnicate --fast\n```",
                         parser)
    assert problems and "frobnicate" in problems[0]


def test_unknown_nested_subcommand_fails(parser):
    problems, _ = _check(
        "```bash\npython -m repro campaign resume --out d\n```", parser)
    assert problems and "resume" in problems[0]


def test_invalid_positional_choice_fails(parser):
    problems, _ = _check("```bash\npython -m repro figure fig99\n```", parser)
    assert problems and "fig99" in problems[0]


def test_backslash_continuations_and_comments(parser):
    text = """
```bash
python -m repro figure fig9 --scale medium --workers 8 \\
    --progress          # live per-run lines
```
"""
    problems, total = _check(text, parser)
    assert problems == [] and total == 1


def test_text_outside_fences_is_ignored(parser):
    text = "Run `python -m repro bogus --whatever` for details.\n"
    problems, total = _check(text, parser)
    assert problems == [] and total == 0


def test_flag_values_are_not_mistaken_for_subcommands(parser):
    # "run" here is a value of --csv, not the run subcommand.
    problems, total = _check(
        "```bash\npython -m repro figure fig7 --csv run\n```", parser)
    assert problems == [] and total == 1


# ---------------------------------------------------------------------------
# Python-reference resolution (the importlib half of the checker)
# ---------------------------------------------------------------------------

def _check_refs(markdown):
    return check_docs.check_python_refs(markdown, "doc.md")


def test_valid_python_refs_resolve():
    text = """
A module: `repro.experiments.farm`. An attribute walked from it:
`repro.experiments.store.merge_stores`, and a nested one:
`repro.analysis.validation`.

```python
from repro.experiments import CampaignFarm
status = repro.experiments.farm.farm_status("store")
```
"""
    problems, total = _check_refs(text)
    assert problems == []
    assert total == 5   # the import line's `repro.experiments` counts too


def test_renamed_attribute_is_flagged():
    problems, total = _check_refs(
        "See `repro.experiments.store.merge_store` for details.\n")
    assert total == 1 and len(problems) == 1
    assert "merge_store" in problems[0] and "doc.md:1" in problems[0]


def test_missing_module_is_flagged():
    problems, _ = _check_refs("`repro.no_such_module.thing`\n")
    assert problems and "repro.no_such_module.thing" in problems[0]


def test_call_parens_and_trailing_dot_are_stripped():
    text = ("```python\n"
            "repro.experiments.store.merge_stores(target, sources)\n"
            "```\n"
            "The package is `repro.experiments.` here.\n")
    problems, total = _check_refs(text)
    assert problems == [] and total == 2


def test_prose_outside_backticks_is_not_scanned():
    # A changelog may legitimately discuss names that no longer exist.
    problems, total = _check_refs(
        "We removed repro.experiments.old_runner in PR 4.\n")
    assert problems == [] and total == 0


def test_repo_docs_have_no_stale_python_refs():
    for path in check_docs.default_files(str(ROOT)):
        with open(path) as fh:
            problems, _ = check_docs.check_python_refs(fh.read(), str(path))
        assert problems == []
