"""FaultPlan: validation, serialization, file loading."""

import json

import pytest

from repro.faults import CorruptionWindow, FaultPlan, LinkFade, NodeCrash
from repro.phy.error import GilbertElliott, UniformBitErrors


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert FaultPlan(crashes=(NodeCrash(node=1, at_s=2.0),))
    assert FaultPlan(error_model=UniformBitErrors(1e-4))


def test_crash_validation():
    with pytest.raises(ValueError):
        NodeCrash(node=-1, at_s=1.0)
    with pytest.raises(ValueError):
        NodeCrash(node=0, at_s=-0.5)
    with pytest.raises(ValueError):
        NodeCrash(node=0, at_s=2.0, recover_s=1.0)
    NodeCrash(node=0, at_s=2.0, recover_s=3.0)  # ok


def test_fade_validation():
    with pytest.raises(ValueError):
        LinkFade(src=1, dst=1, start_s=0.0)
    with pytest.raises(ValueError):
        LinkFade(src=0, dst=1, start_s=3.0, end_s=2.0)
    LinkFade(src=0, dst=1, start_s=3.0)  # open-ended ok


def test_corruption_window_validation():
    with pytest.raises(ValueError):
        CorruptionWindow(start_s=1.0, end_s=1.0)
    with pytest.raises(ValueError):
        CorruptionWindow(start_s=0.0, end_s=1.0, probability=0.0)
    with pytest.raises(ValueError):
        CorruptionWindow(start_s=0.0, end_s=1.0, probability=1.5)
    window = CorruptionWindow(start_s=0.0, end_s=1.0, nodes=[3, 5])
    assert window.nodes == (3, 5)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        crashes=(NodeCrash(node=4, at_s=1.0, recover_s=2.0),
                 NodeCrash(node=7, at_s=3.0)),
        fades=(LinkFade(src=1, dst=2, start_s=0.5, end_s=1.5),
               LinkFade(src=3, dst=4, start_s=2.0, bidirectional=False)),
        corruption=(CorruptionWindow(start_s=0.0, end_s=0.2,
                                     nodes=(1,), probability=0.5),),
        error_model=GilbertElliott(p_gb=0.1, p_bg=0.3, ber_bad=0.05),
    )


def test_to_dict_round_trip():
    plan = _full_plan()
    rebuilt = FaultPlan.from_dict(plan.to_dict())
    assert rebuilt == plan
    assert rebuilt.to_dict() == plan.to_dict()
    # And the dict itself is JSON-serializable as-is.
    assert json.loads(json.dumps(plan.to_dict())) == plan.to_dict()


def test_from_dict_sections_optional():
    plan = FaultPlan.from_dict({"crashes": [{"node": 2, "at_s": 1.0}]})
    assert plan.crashes == (NodeCrash(node=2, at_s=1.0),)
    assert plan.fades == () and plan.corruption == ()
    assert plan.error_model is None
    assert FaultPlan.from_dict({}) == FaultPlan()


def test_load_from_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(_full_plan().to_dict()))
    assert FaultPlan.load(str(path)) == _full_plan()


def test_lists_coerced_to_tuples():
    plan = FaultPlan(crashes=[NodeCrash(node=1, at_s=1.0)])
    assert isinstance(plan.crashes, tuple)
