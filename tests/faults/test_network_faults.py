"""Fault plans through the full network stack, the config hash, and
store-backed resume."""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.campaign import Campaign
from repro.experiments.runner import run_point
from repro.experiments.scenarios import scaled_scenario
from repro.experiments.store import canonical_config_json, config_hash
from repro.faults import FaultPlan, LinkFade, NodeCrash
from repro.phy.error import GilbertElliott
from repro.world.network import ScenarioConfig


def _base_config(**changes) -> ScenarioConfig:
    return ScenarioConfig(
        n_nodes=10, width=150.0, height=100.0, rate_pps=5.0, n_packets=5,
        warmup_s=0.5, drain_s=0.5, seed=3,
    ).variant(**changes)


def _crash_plan() -> FaultPlan:
    # Crash a node mid-traffic, permanently.
    return FaultPlan(crashes=(NodeCrash(node=2, at_s=0.6),))


# ---------------------------------------------------------------------------
# Behavior
# ---------------------------------------------------------------------------
def test_crash_changes_the_run():
    clean = run_point(_base_config())
    faulted = run_point(_base_config(faults=_crash_plan()))
    assert faulted != clean
    assert faulted.total_deliveries < clean.total_deliveries


def test_fades_corrupt_frames():
    plan = FaultPlan(fades=(LinkFade(src=0, dst=1, start_s=0.0),))
    clean = run_point(_base_config())
    faulted = run_point(_base_config(faults=plan))
    assert faulted != clean


def test_faulted_run_is_deterministic():
    config = _base_config(faults=_crash_plan())
    assert run_point(config) == run_point(config)


def test_gilbert_elliott_state_does_not_leak_across_runs():
    """One FaultPlan instance reused for several runs must behave as if
    each run got a pristine model (build_network reconstructs it)."""
    plan = FaultPlan(error_model=GilbertElliott(
        p_gb=0.2, p_bg=0.2, ber_good=0.0, ber_bad=0.01))
    config = _base_config(faults=plan)
    first = run_point(config)
    assert plan.error_model.bad is False  # the plan's copy is never used
    assert run_point(config) == first


# ---------------------------------------------------------------------------
# Config hash
# ---------------------------------------------------------------------------
def test_default_fields_drop_out_of_canonical_json():
    """faults=None / oracle=False serialize exactly like configs that
    predate the fields, keeping every stored config_hash valid."""
    canonical = canonical_config_json(_base_config())
    payload = json.loads(canonical)
    assert "faults" not in payload
    assert "oracle" not in payload
    assert config_hash(_base_config()) == config_hash(
        _base_config(faults=None, oracle=False))


def test_plan_and_oracle_change_the_hash():
    base = config_hash(_base_config())
    assert config_hash(_base_config(faults=_crash_plan())) != base
    assert config_hash(_base_config(oracle=True)) != base


def test_hash_with_error_model_is_deterministic():
    """The embedded BitErrorModel hashes by parameters, not identity."""
    def make():
        return _base_config(faults=FaultPlan(
            error_model=GilbertElliott(p_gb=0.1, p_bg=0.3, ber_bad=0.05)))
    assert config_hash(make()) == config_hash(make())
    # And survives a serialization round trip of the plan.
    plan = make().faults
    assert config_hash(_base_config(
        faults=FaultPlan.from_dict(plan.to_dict()))) == config_hash(make())


# ---------------------------------------------------------------------------
# Store resume with an active FaultPlan (seeded-replay bit-identity)
# ---------------------------------------------------------------------------
MATRIX = (["rmac"], ["stationary"], [10], [1, 2, 3])


def _faulted_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10).variant(
        faults=FaultPlan(
            crashes=(NodeCrash(node=3, at_s=0.6),),
            error_model=GilbertElliott(p_gb=0.3, p_bg=0.3, ber_bad=0.005),
        ),
        oracle=True,
    )


def test_killed_faulted_campaign_resumes_bit_identical(tmp_path, monkeypatch):
    reference = Campaign(str(tmp_path / "reference")).run(
        *MATRIX, _faulted_config)

    original = runner_module.run_point
    calls = []

    def crashing_run_point(config):
        if len(calls) == 1:
            raise KeyboardInterrupt("simulated kill")
        calls.append(config.seed)
        return original(config)

    path = str(tmp_path / "interrupted")
    monkeypatch.setattr(runner_module, "run_point", crashing_run_point)
    with pytest.raises(KeyboardInterrupt):
        Campaign(path).run(*MATRIX, _faulted_config)
    monkeypatch.setattr(runner_module, "run_point", original)

    assert len(Campaign(path)) == 1

    executed = []

    def spying_run_point(config):
        executed.append(config.seed)
        return original(config)

    monkeypatch.setattr(runner_module, "run_point", spying_run_point)
    resumed = Campaign(path).run(*MATRIX, _faulted_config)
    # The completed point came from disk; only the rest simulated.
    assert len(executed) == 2

    # Bit-identical aggregation, including the persisted oracle report.
    assert resumed == reference
    for result in resumed:
        for summary in result.per_seed:
            assert summary.oracle_violations == 0
