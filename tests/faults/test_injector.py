"""FaultInjector: window compilation and the PHY hook predicates."""

import random

from repro.faults import CorruptionWindow, FaultInjector, FaultPlan, LinkFade, NodeCrash
from repro.sim.units import MS, SEC


def test_crash_windows():
    plan = FaultPlan(crashes=(
        NodeCrash(node=3, at_s=1.0, recover_s=2.0),
        NodeCrash(node=3, at_s=4.0),          # second, permanent crash
        NodeCrash(node=5, at_s=0.5),
    ))
    inj = FaultInjector(plan)
    assert not inj.node_down(3, 999 * MS)
    assert inj.node_down(3, 1 * SEC)          # inclusive start
    assert inj.node_down(3, 1500 * MS)
    assert not inj.node_down(3, 2 * SEC)      # exclusive end (recovered)
    assert inj.node_down(3, 5 * SEC)          # permanent window
    assert inj.node_down(5, 10 * SEC)
    assert not inj.node_down(4, 1 * SEC)      # unlisted node never down


def test_fade_directionality():
    bidi = FaultInjector(FaultPlan(fades=(
        LinkFade(src=1, dst=2, start_s=1.0, end_s=2.0),)))
    assert bidi.link_faded(1, 2, 1500 * MS)
    assert bidi.link_faded(2, 1, 1500 * MS)
    assert not bidi.link_faded(1, 2, 2500 * MS)

    one_way = FaultInjector(FaultPlan(fades=(
        LinkFade(src=1, dst=2, start_s=1.0, end_s=2.0, bidirectional=False),)))
    assert one_way.link_faded(1, 2, 1500 * MS)
    assert not one_way.link_faded(2, 1, 1500 * MS)


def test_suppresses_delivery_if_either_end_down():
    inj = FaultInjector(FaultPlan(crashes=(NodeCrash(node=1, at_s=1.0),)))
    t = 2 * SEC
    assert inj.suppresses_delivery(sender=1, node=2, t=t)  # dead sender
    assert inj.suppresses_delivery(sender=2, node=1, t=t)  # dead receiver
    assert not inj.suppresses_delivery(sender=2, node=3, t=t)
    assert not inj.suppresses_delivery(sender=1, node=2, t=999 * MS)


def test_corruption_window_targets_and_probability():
    inj = FaultInjector(FaultPlan(corruption=(
        CorruptionWindow(start_s=1.0, end_s=2.0, nodes=(4,)),
        CorruptionWindow(start_s=3.0, end_s=4.0, probability=0.5),
    )))
    rng = random.Random(0)
    t = 1500 * MS
    assert inj.corrupts_arrival(0, 4, t, rng)          # targeted, p=1
    assert not inj.corrupts_arrival(0, 5, t, rng)      # untargeted node
    assert not inj.corrupts_arrival(0, 4, 2500 * MS, rng)  # outside window
    # Probabilistic window: roughly half of many draws corrupt.
    hits = sum(inj.corrupts_arrival(0, 4, 3500 * MS, rng) for _ in range(1000))
    assert 400 < hits < 600


def test_fade_corrupts_arrivals():
    inj = FaultInjector(FaultPlan(fades=(
        LinkFade(src=0, dst=1, start_s=1.0, end_s=2.0),)))
    rng = random.Random(0)
    assert inj.corrupts_arrival(0, 1, 1500 * MS, rng)
    assert not inj.corrupts_arrival(0, 2, 1500 * MS, rng)


def test_affects_flags():
    assert not FaultInjector(FaultPlan()).affects_data
    assert not FaultInjector(FaultPlan()).affects_tones
    crash = FaultInjector(FaultPlan(crashes=(NodeCrash(node=1, at_s=1.0),)))
    assert crash.affects_data and crash.affects_tones
    fade = FaultInjector(FaultPlan(fades=(
        LinkFade(src=0, dst=1, start_s=1.0),)))
    assert fade.affects_data and not fade.affects_tones
