"""Full-stack integration: tree multicast over every protocol."""

import pytest

from repro.world.network import ScenarioConfig, build_network

SMALL = dict(n_nodes=16, width=220, height=160, rate_pps=8, n_packets=25,
             warmup_s=4.0, drain_s=3.0, seed=11)


@pytest.fixture(scope="module")
def rmac_run():
    net = build_network(ScenarioConfig(protocol="rmac", **SMALL))
    summary = net.run()
    return net, summary


def test_rmac_static_delivery_near_one(rmac_run):
    _, summary = rmac_run
    assert summary.delivery_ratio > 0.97


def test_tree_formed_every_node_joined(rmac_run):
    net, _ = rmac_run
    assert all(layer.bless.joined for layer in net.layers)
    parents = [layer.bless.parent for layer in net.layers]
    assert parents[0] == -1
    assert all(p >= 0 for p in parents[1:])


def test_delivery_accounting_conserved(rmac_run):
    """Deliveries can never exceed packets x receivers, and per-node
    counts never exceed the generated count."""
    net, summary = rmac_run
    n = net.config.n_nodes
    assert summary.total_deliveries <= summary.n_generated * (n - 1)
    for node, count in net.metrics.deliveries_per_node.items():
        assert count <= summary.n_generated
        assert node != 0  # the source never records a delivery


def test_mac_counters_consistent(rmac_run):
    net, _ = rmac_run
    for mac in net.macs:
        stats = mac.stats
        assert stats.packets_delivered + stats.packets_dropped <= stats.packets_offered
        assert stats.mrts_aborted <= stats.mrts_transmissions
        assert sum(stats.mrts_lengths.values()) == stats.mrts_transmissions
        assert stats.control_tx_time >= 0 and stats.data_tx_time >= 0


def test_queues_drain_after_traffic(rmac_run):
    net, _ = rmac_run
    assert all(len(mac.queue) == 0 for mac in net.macs)


def test_all_tones_released(rmac_run):
    net, _ = rmac_run
    from repro.phy.busytone import ToneType
    for radio in net.testbed.radios:
        assert not radio.tone_emitting(ToneType.RBT)
        assert not radio.tone_emitting(ToneType.ABT)


@pytest.mark.parametrize("protocol", ["bmmm", "bmw", "lbp"])
def test_baselines_reach_high_static_delivery(protocol):
    summary = build_network(ScenarioConfig(protocol=protocol, **SMALL)).run()
    assert summary.delivery_ratio > 0.9, protocol


def test_mx_shows_reliability_gap():
    """The receiver-initiated extension loses packets silently (Sec. 2)."""
    summary = build_network(ScenarioConfig(protocol="mx", **SMALL)).run()
    assert summary.delivery_ratio is not None
    # It still delivers most packets but cannot certify them.
    assert 0.3 < summary.delivery_ratio <= 1.0


def test_mobility_reduces_delivery():
    static = build_network(ScenarioConfig(protocol="rmac", **SMALL)).run()
    mobile_cfg = ScenarioConfig(protocol="rmac", mobile=True, max_speed=20.0,
                                pause_s=0.5, **SMALL)
    mobile = build_network(mobile_cfg).run()
    assert mobile.delivery_ratio < static.delivery_ratio
