"""Queueing behaviour at and beyond saturation."""

import pytest

from repro.world.network import ScenarioConfig, build_network

BASE = dict(protocol="rmac", n_nodes=12, width=190, height=140,
            rate_pps=300, n_packets=400, warmup_s=4.0, drain_s=0.5, seed=8)


def test_overload_grows_delay_not_loss_with_unbounded_queues():
    """The paper's loss model: queues are unbounded, so overload shows up
    as delay, not drops (beyond retry exhaustion)."""
    net = build_network(ScenarioConfig(**BASE))
    summary = net.run()
    # The drain is deliberately short: the backlog is still visible.
    queued = sum(len(mac.queue) for mac in net.macs)
    assert queued > 0
    assert all(mac.stats.queue_drops == 0 for mac in net.macs)
    # Delay at overload dwarfs the light-load delay.
    light = build_network(ScenarioConfig(**{**BASE, "rate_pps": 5,
                                            "n_packets": 20,
                                            "drain_s": 5.0})).run()
    assert summary.avg_delay_s > 5 * light.avg_delay_s


def test_capped_queues_shed_load_instead():
    config = ScenarioConfig(**{**BASE, "mac_overrides": {"queue_capacity": 3}})
    net = build_network(config)
    net.run()
    total_overflow = sum(mac.stats.queue_drops for mac in net.macs)
    assert total_overflow > 0
    # The queues themselves never exceed the cap.
    assert all(len(mac.queue) <= 3 for mac in net.macs)


def test_saturation_point_respects_capacity_model():
    """Below the analytic per-neighborhood floor rate, delay stays small."""
    from repro.analysis.capacity import saturation_rate

    safe_rate = 0.25 * saturation_rate(3, 500, forwarders_sharing_channel=4)
    config = ScenarioConfig(**{**BASE, "rate_pps": safe_rate, "n_packets": 60,
                               "drain_s": 5.0})
    summary = build_network(config).run()
    assert summary.avg_delay_s < 0.5
    assert summary.delivery_ratio > 0.95
