"""Bit-for-bit reproducibility from a seed."""

from dataclasses import asdict

from repro.world.network import ScenarioConfig, build_network

SMALL = dict(n_nodes=14, width=220, height=150, rate_pps=10, n_packets=15,
             warmup_s=3.0, drain_s=2.0)


def fingerprint(summary):
    return tuple(sorted(asdict(summary).items()))


def test_same_seed_identical_summary():
    a = build_network(ScenarioConfig(protocol="rmac", seed=5, **SMALL)).run()
    b = build_network(ScenarioConfig(protocol="rmac", seed=5, **SMALL)).run()
    assert fingerprint(a) == fingerprint(b)


def test_same_seed_identical_event_counts():
    net_a = build_network(ScenarioConfig(protocol="rmac", seed=5, **SMALL))
    net_a.run()
    net_b = build_network(ScenarioConfig(protocol="rmac", seed=5, **SMALL))
    net_b.run()
    assert net_a.sim.events_processed == net_b.sim.events_processed


def test_different_seed_different_placement():
    net_a = build_network(ScenarioConfig(protocol="rmac", seed=5, **SMALL))
    net_b = build_network(ScenarioConfig(protocol="rmac", seed=6, **SMALL))
    assert net_a.coords != net_b.coords


def test_mobile_runs_reproducible():
    config = ScenarioConfig(protocol="bmmm", seed=9, mobile=True,
                            max_speed=8.0, pause_s=5.0, **SMALL)
    a = build_network(config).run()
    b = build_network(config).run()
    assert fingerprint(a) == fingerprint(b)


def test_trace_identical_for_same_seed():
    config = ScenarioConfig(protocol="rmac", seed=7, trace=True, **SMALL)
    net_a = build_network(config)
    net_a.run()
    net_b = build_network(config)
    net_b.run()
    trace_a = [(e.time, e.node, e.kind) for e in net_a.testbed.tracer.events]
    trace_b = [(e.time, e.node, e.kind) for e in net_b.testbed.tracer.events]
    assert trace_a == trace_b
