"""Behaviour on lossy channels (bit errors), per Section 3.4's remark."""

import pytest

from repro.world.network import ScenarioConfig, build_network

BASE = dict(protocol="rmac", n_nodes=14, width=210, height=150,
            rate_pps=8, n_packets=20, warmup_s=4.0, drain_s=3.0, seed=6)


def test_moderate_ber_recovered_by_retransmission():
    clean = build_network(ScenarioConfig(**BASE)).run()
    lossy = build_network(ScenarioConfig(ber=2e-5, **BASE)).run()
    # ARQ recovers: delivery stays high, at the cost of retransmissions.
    assert lossy.delivery_ratio > 0.9
    assert lossy.avg_retx_ratio > clean.avg_retx_ratio


def test_high_ber_causes_drops():
    lossy = build_network(ScenarioConfig(ber=4e-4, **BASE)).run()
    assert lossy.avg_retx_ratio > 0.5
    assert lossy.delivery_ratio < 1.0


def test_ber_shifts_mrts_survival():
    """Longer MRTSs die more often on a lossy channel: the mean observed
    MRTS length under BER stays within the cap and the retry machinery
    keeps shrinking frames (paper: the 20-receiver cap 'can be further
    reduced in case of high error bit rate')."""
    lossy = build_network(ScenarioConfig(ber=2e-4, **BASE)).run()
    assert lossy.mrts_len_avg is not None
    assert lossy.mrts_len_avg <= 132
