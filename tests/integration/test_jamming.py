"""Failure injection: a periodic jammer on the data channel.

The jammer transmits raw (undecodable-intent) frames straight through the
channel at a fixed duty cycle, corrupting anything that overlaps at its
neighbors. RMAC must degrade gracefully -- retransmissions absorb
moderate jamming, the retry limit bounds the damage at heavy jamming --
and fully recover once the jammer stops.
"""

from dataclasses import dataclass

import pytest

from repro.core import RmacConfig
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_rmac_testbed


@dataclass(frozen=True)
class JamFrame:
    size_bytes: int

    def __str__(self):
        return f"JAM({self.size_bytes}B)"


class Jammer:
    """Transmits a jam burst every ``period`` ns, ignoring all protocol."""

    def __init__(self, testbed, node_id, period, burst_bytes):
        self.testbed = testbed
        self.node_id = node_id
        self.period = period
        self.frame = JamFrame(burst_bytes)
        self.active = False

    def start(self):
        self.active = True
        self._tick()

    def stop(self):
        self.active = False

    def _tick(self):
        if not self.active:
            return
        channel = self.testbed.data_channel
        if not channel.is_transmitting(self.node_id):
            channel.transmit(self.node_id, self.frame)
        self.testbed.sim.after(self.period, self._tick, label="jammer")


def test_moderate_jamming_recovered_by_arq():
    # Node 3 jams near receiver 2; sender 0 still gets everything through.
    coords = TRIANGLE + [(30.0, 60.0)]
    tb = make_rmac_testbed(coords, seed=5)
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    jammer = Jammer(tb, 3, period=9 * MS, burst_bytes=60)
    jammer.start()
    outcomes = []
    for i in range(8):
        tb.sim.at(i * 10 * MS, lambda i=i: tb.macs[0].send_reliable(
            (1, 2), f"p{i}", 500, on_complete=outcomes.append))
    tb.run(1500 * MS)
    jammer.stop()
    assert len(outcomes) == 8
    assert all(not o.dropped for o in outcomes)
    assert len(rx1) == 8 and len(rx2) == 8
    # The jamming forced real retransmissions.
    assert tb.macs[0].stats.retransmissions >= 1


def test_heavy_jamming_bounded_by_retry_limit():
    coords = TRIANGLE + [(30.0, 60.0)]
    tb = make_rmac_testbed(coords, seed=5, config=RmacConfig(retry_limit=2))
    # Near-continuous jamming: 2 ms bursts every 2.5 ms.
    jammer = Jammer(tb, 3, period=2500 * US, burst_bytes=470)
    jammer.start()
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "doomed", 500, on_complete=outcomes.append)
    tb.run(2000 * MS)
    jammer.stop()
    assert len(outcomes) == 1
    # With retry_limit=2, at most 3 MRTS attempts were spent.
    assert tb.macs[0].stats.mrts_transmissions <= 3 * 1 + 3  # + chunk slack
    assert outcomes[0].dropped or outcomes[0].acked  # completed either way


def test_recovery_after_jammer_stops():
    coords = TRIANGLE + [(30.0, 60.0)]
    tb = make_rmac_testbed(coords, seed=5)
    jammer = Jammer(tb, 3, period=2500 * US, burst_bytes=470)
    jammer.start()
    tb.sim.at(100 * MS, jammer.stop)
    outcomes = []
    tb.sim.at(150 * MS, lambda: tb.macs[0].send_reliable(
        (1, 2), "after", 500, on_complete=outcomes.append))
    tb.run(500 * MS)
    assert outcomes and outcomes[0].acked == (1, 2)
    assert not outcomes[0].dropped
