"""The paper's headline comparisons, at integration-test scale.

These assert the *shape* of Section 4's results: who wins and in which
direction, not absolute values (see EXPERIMENTS.md for the calibrated
numbers at bench scale).
"""

import pytest

from repro.world.network import ScenarioConfig, build_network

SMALL = dict(n_nodes=18, width=240, height=160, rate_pps=10, n_packets=40,
             warmup_s=4.0, drain_s=3.0)


@pytest.fixture(scope="module")
def paired_runs():
    out = {}
    for protocol in ("rmac", "bmmm"):
        summaries = []
        for seed in (3, 7):
            config = ScenarioConfig(protocol=protocol, seed=seed, **SMALL)
            summaries.append(build_network(config).run())
        out[protocol] = summaries
    return out


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values)


def test_fig7_shape_static_delivery_high_for_both(paired_runs):
    rmac = _mean([s.delivery_ratio for s in paired_runs["rmac"]])
    bmmm = _mean([s.delivery_ratio for s in paired_runs["bmmm"]])
    assert rmac > 0.97
    assert bmmm > 0.9
    assert rmac >= bmmm - 0.02  # RMAC at least on par when static


def test_fig9_shape_rmac_faster(paired_runs):
    rmac = _mean([s.avg_delay_s for s in paired_runs["rmac"]])
    bmmm = _mean([s.avg_delay_s for s in paired_runs["bmmm"]])
    assert rmac < bmmm


def test_fig11_shape_rmac_overhead_fraction_of_bmmm(paired_runs):
    rmac = _mean([s.avg_txoh_ratio for s in paired_runs["rmac"]])
    bmmm = _mean([s.avg_txoh_ratio for s in paired_runs["bmmm"]])
    # The paper: ~0.2 vs ~1.0-1.1 when static (a ~5x gap); allow slack.
    assert rmac < 0.7
    assert bmmm > 2 * rmac


def test_fig8_shape_static_drops_negligible(paired_runs):
    for protocol in ("rmac", "bmmm"):
        drop = _mean([s.avg_drop_ratio for s in paired_runs[protocol]])
        assert drop < 0.02, protocol


def test_fig12_shape_mrts_short(paired_runs):
    for summary in paired_runs["rmac"]:
        assert summary.mrts_len_avg < 74  # "99% ... less than 74 bytes"
        assert summary.mrts_len_max <= 132  # <= the 20-receiver cap


def test_fig13_shape_abortion_rare(paired_runs):
    for summary in paired_runs["rmac"]:
        assert summary.abort_avg is not None
        assert summary.abort_avg < 0.05


def test_mobile_rmac_beats_bmmm_on_delivery():
    results = {}
    for protocol in ("rmac", "bmmm"):
        summaries = []
        for seed in (3, 7):
            config = ScenarioConfig(protocol=protocol, seed=seed, mobile=True,
                                    max_speed=8.0, pause_s=5.0, **SMALL)
            summaries.append(build_network(config).run())
        results[protocol] = _mean([s.delivery_ratio for s in summaries])
    # Fig. 7(b,c): when moving, RMAC "remains much higher than BMMM".
    assert results["rmac"] >= results["bmmm"] - 0.03
