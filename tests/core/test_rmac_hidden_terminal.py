"""RBT solves the hidden-terminal problem (Section 3.2).

Chain 0 -- 1 -- 2 (60 m spacing, 75 m range): 0 and 2 cannot hear each
other; both reach 1. Without RBT, 2 would transmit over 0's data frame
and collide at 1. With RBT, 1's tone suppresses 2 for the whole data
reception.
"""

from repro.core.states import RmacState
from repro.phy.busytone import ToneType
from repro.sim.units import MS, US

from tests.conftest import CHAIN, collect_upper, make_rmac_testbed


def test_hidden_node_defers_while_rbt_on():
    tb = make_rmac_testbed(CHAIN[:3], seed=8, trace=True)
    rx1 = collect_upper(tb.macs[1])
    # 0 starts a long reliable send to 1 at 1 ms (immediate access).
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "protected", 1400))
    # 2 queues its own unreliable broadcast while 1's RBT is up (the data
    # frame runs ~5.8 ms, so 2 ms is mid-reception).
    tb.sim.at(2 * MS, lambda: tb.macs[2].send_unreliable(-1, "intruder", 1400))
    tb.run(100 * MS)
    # 1 received 0's frame despite 2's pending traffic...
    assert ("protected", 0) in rx1
    # ...because 2's transmission started only after 1 released RBT.
    tx2 = [e for e in tb.tracer.events if e.kind == "tx-start" and e.node == 2]
    rbt_off = [e for e in tb.tracer.events if e.kind == "rbt-off" and e.node == 1]
    assert tx2 and rbt_off
    assert tx2[0].time > rbt_off[0].time
    # No retransmissions were needed: the reception was collision-free.
    assert tb.macs[0].stats.retransmissions == 0


def test_without_suppression_hidden_node_collides():
    """Sanity inversion: if node 2 ignored the RBT channel the data frame
    would collide at node 1 -- demonstrating RBT is load-bearing."""
    tb = make_rmac_testbed(CHAIN[:3], seed=8)
    # Cripple node 2's RBT sensing (pretend it never senses the tone):
    # swap its RBT presence map for an empty one, so both the inlined
    # pump sensing and _channels_idle() see a permanently silent tone.
    tb.macs[2]._rbt_map = {}
    rx1 = collect_upper(tb.macs[1])
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "protected", 1400))
    tb.sim.at(2 * MS, lambda: tb.macs[2].send_unreliable(-1, "intruder", 1400))
    tb.run(20 * MS)
    # The first data attempt was corrupted: a retransmission was needed
    # (or the packet is still in flight) -- reception count at 2 ms+5.8 ms
    # cannot be clean on the first try.
    assert tb.macs[0].stats.retransmissions >= 1


def test_two_parallel_transactions_out_of_range_coexist():
    """0->1 and 3->2... wait: 4-node chain, 0->1 and 3->2 share no radio
    space only if spaced; use 6 nodes: two distant triangles."""
    coords = [(0, 0), (50, 0), (1000, 0), (1050, 0)]
    tb = make_rmac_testbed(coords, seed=2)
    rx1 = collect_upper(tb.macs[1])
    rx3 = collect_upper(tb.macs[3])
    tb.macs[0].send_reliable((1,), "left", 500)
    tb.macs[2].send_reliable((3,), "right", 500)
    tb.run(50 * MS)
    assert rx1 == [("left", 0)] and rx3 == [("right", 2)]
    assert tb.macs[0].stats.retransmissions == 0
    assert tb.macs[2].stats.retransmissions == 0


def test_exposed_sender_blocked_by_rbt_not_by_peer_tx():
    """In RMAC a node near a *receiver* defers (RBT); the protocol has no
    NAV, so deferral tracks tones and carrier only."""
    # 2 hears 1 (receiver) but not 0 (sender): classic exposed/hidden mix.
    tb = make_rmac_testbed(CHAIN[:3], seed=8)
    states = {}
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "pkt", 1400))
    def probe():
        states["rbt_at_2"] = tb.radios[2].tone_present(ToneType.RBT)
        states["data_at_2"] = tb.radios[2].data_busy()
    tb.sim.at(3 * MS, probe)  # mid data frame
    tb.run(50 * MS)
    assert states["rbt_at_2"] is True
    assert states["data_at_2"] is False  # 0's frame does not reach node 2
