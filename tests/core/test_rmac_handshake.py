"""The Reliable Send handshake of Section 3.3.2 on small topologies."""

import pytest

from repro.core import RmacConfig
from repro.core.states import RmacState
from repro.phy.busytone import ToneType
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_rmac_testbed


def test_multicast_two_receivers_delivers_and_acks(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(50 * MS)
    assert rx1 == [("pkt", 0)] and rx2 == [("pkt", 0)]
    assert outcomes[0].acked == (1, 2)
    assert outcomes[0].failed == () and not outcomes[0].dropped
    stats = tb.macs[0].stats
    assert stats.packets_offered == 1
    assert stats.packets_delivered == 1
    assert stats.retransmissions == 0
    assert stats.mrts_transmissions == 1


def test_reliable_unicast_is_single_receiver_multicast(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    outcomes = []
    tb.macs[0].send_reliable((1,), "uni", 100, on_complete=outcomes.append)
    tb.run(50 * MS)
    assert rx1 == [("uni", 0)]
    assert outcomes[0].acked == (1,)
    # MRTS for one receiver: 18 bytes.
    assert tb.macs[0].stats.mrts_lengths == {18: 1}


def test_reliable_broadcast_uses_all_neighbors(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_reliable((1, 2), "bcast", 200)
    tb.run(50 * MS)
    assert rx1 and rx2


def test_handshake_timing_matches_fig4():
    """MRTS airtime, Twf_rbt = 17 us, data, then n ABT windows."""
    tb = make_rmac_testbed(TRIANGLE, seed=5, trace=True)
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(50 * MS)
    trace = {e.kind: e.time for e in tb.tracer.for_node(0) if e.kind == "tx-start"}
    starts = [e for e in tb.tracer.events if e.kind == "tx-start" and e.node == 0]
    mrts_start = starts[0].time
    data_start = starts[1].time
    # MRTS(24 B) airtime = 96 + 96 = 192 us; data follows Twf_rbt later.
    assert data_start - mrts_start == 192 * US + 17 * US
    # Completion: data(522 B -> 2184 us) + 2 ABT windows of 17 us.
    assert outcomes[0].completed_at == data_start + 2184 * US + 2 * 17 * US


def test_receivers_hold_rbt_during_data():
    tb = make_rmac_testbed(TRIANGLE, seed=5)
    tb.macs[0].send_reliable((1, 2), "pkt", 500)
    seen = {}
    # During the data frame (which starts at ~209 us), receivers emit RBT.
    tb.sim.at(1 * MS, lambda: seen.update(
        rbt1=tb.radios[1].tone_emitting(ToneType.RBT),
        rbt2=tb.radios[2].tone_emitting(ToneType.RBT),
        sender_state=tb.macs[0].state,
    ))
    tb.run(50 * MS)
    assert seen["rbt1"] and seen["rbt2"]
    assert seen["sender_state"] is RmacState.TX_RDATA
    # All tones released at the end.
    assert not tb.radios[1].tone_emitting(ToneType.RBT)
    assert not tb.radios[2].tone_emitting(ToneType.RBT)


def test_abt_order_follows_mrts_sequence():
    tb = make_rmac_testbed(TRIANGLE, seed=5, trace=True)
    tb.macs[0].send_reliable((2, 1), "pkt", 500)  # note: 2 first
    tb.run(50 * MS)
    abt_ons = [e for e in tb.tracer.events if e.kind == "abt-on"]
    assert [e.node for e in abt_ons] == [2, 1]
    assert abt_ons[1].time - abt_ons[0].time == 17 * US


def test_unreliable_broadcast_one_shot(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_unreliable(-1, "hello", 13)
    tb.run(10 * MS)
    assert rx1 == [("hello", 0)] and rx2 == [("hello", 0)]
    assert tb.macs[0].stats.unreliable_sent == 1
    assert tb.macs[0].stats.mrts_transmissions == 0


def test_unreliable_unicast_filtered_by_address(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_unreliable(1, "just-for-1", 13)
    tb.run(10 * MS)
    assert rx1 == [("just-for-1", 0)]
    assert rx2 == []


class _GroupPayload:
    def __init__(self, group):
        self.group = group


def test_unreliable_multicast_group_membership(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    rx2 = collect_upper(tb.macs[2])
    tb.macs[1].multicast_groups.add(42)
    payload = _GroupPayload(42)
    tb.macs[0].send_unreliable(-2, payload, 13)  # MULTICAST_FLAG
    tb.run(10 * MS)
    assert rx1 == [(payload, 0)]
    assert rx2 == []


def test_fifo_across_mixed_traffic(triangle_rmac):
    tb = triangle_rmac
    rx1 = collect_upper(tb.macs[1])
    tb.macs[0].send_reliable((1,), "first", 100)
    tb.macs[0].send_unreliable(1, "second", 13)
    tb.macs[0].send_reliable((1,), "third", 100)
    tb.run(100 * MS)
    assert [p for p, _ in rx1] == ["first", "second", "third"]


def test_sequential_packets_each_complete(triangle_rmac):
    tb = triangle_rmac
    rx2 = collect_upper(tb.macs[2])
    outcomes = []
    for i in range(5):
        tb.macs[0].send_reliable((1, 2), f"p{i}", 500, on_complete=outcomes.append)
    tb.run(200 * MS)
    assert [p for p, _ in rx2] == [f"p{i}" for i in range(5)]
    assert len(outcomes) == 5
    assert all(o.acked == (1, 2) for o in outcomes)
    assert tb.macs[0].stats.packets_delivered == 5
