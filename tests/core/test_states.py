"""The appendix state machine: Fig. 14 edges and Table 1 conditions."""

import pytest

from repro.core.states import RmacState, TRANSITIONS, by_condition, valid_transition


def test_eight_states():
    assert len(RmacState) == 8
    assert {s.value for s in RmacState} == {
        "IDLE", "BACKOFF", "WF_RBT", "WF_RDATA", "WF_ABT",
        "TX_MRTS", "TX_RDATA", "TX_UNRDATA",
    }


def test_nineteen_conditions():
    assert len(TRANSITIONS) == 19
    assert {t.condition for t in TRANSITIONS} == {f"C{i}" for i in range(1, 20)}


@pytest.mark.parametrize("t", TRANSITIONS, ids=lambda t: t.condition)
def test_every_table1_edge_is_valid(t):
    assert valid_transition(t.source, t.target)


def test_table1_edges_match_figure14():
    """Spot-check the figure's edges against Table 1 verbatim."""
    assert by_condition("C1").source is RmacState.IDLE
    assert by_condition("C1").target is RmacState.TX_UNRDATA
    assert by_condition("C17") == by_condition("C17")
    assert (by_condition("C17").source, by_condition("C17").target) == (
        RmacState.TX_MRTS, RmacState.WF_RBT)
    assert (by_condition("C18").source, by_condition("C18").target) == (
        RmacState.WF_RBT, RmacState.TX_RDATA)
    assert (by_condition("C19").source, by_condition("C19").target) == (
        RmacState.TX_RDATA, RmacState.WF_ABT)
    assert (by_condition("C3").source, by_condition("C3").target) == (
        RmacState.IDLE, RmacState.WF_RDATA)


def test_documented_implicit_edges():
    assert valid_transition(RmacState.TX_MRTS, RmacState.BACKOFF)
    assert valid_transition(RmacState.BACKOFF, RmacState.WF_RDATA)


@pytest.mark.parametrize(
    "source,target",
    [
        (RmacState.WF_RDATA, RmacState.TX_MRTS),   # a receiver cannot start sending
        (RmacState.TX_RDATA, RmacState.IDLE),      # data tx always ends in WF_ABT
        (RmacState.WF_ABT, RmacState.TX_RDATA),    # no data without a new MRTS
        (RmacState.IDLE, RmacState.TX_RDATA),      # data only after WF_RBT
        (RmacState.IDLE, RmacState.WF_ABT),
        (RmacState.TX_UNRDATA, RmacState.WF_RBT),  # unreliable has no handshake
    ],
)
def test_forbidden_edges(source, target):
    assert not valid_transition(source, target)


def test_conditions_have_descriptions():
    assert all(t.description for t in TRANSITIONS)


def test_by_condition_unknown_raises():
    with pytest.raises(KeyError):
        by_condition("C99")
