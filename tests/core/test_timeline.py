"""The Fig. 4 timeline as an executable integration test.

Node A (0) runs a Reliable Send to nodes B (1) and C (2): the trace must
contain exactly the paper's sequence -- MRTS, both RBTs, the data frame,
then B's ABT followed by C's ABT in MRTS order -- with the paper's
timer spacings.
"""

from repro.sim.units import US

from tests.conftest import TRIANGLE, make_rmac_testbed


def run_fig4():
    tb = make_rmac_testbed(TRIANGLE, seed=5, trace=True)
    tb.macs[0].send_reliable((1, 2), "fig4", 500)
    tb.run(50_000_000)
    return tb


def test_fig4_event_sequence():
    tb = run_fig4()
    interesting = [
        (e.node, e.kind)
        for e in tb.tracer.events
        if e.kind in ("tx-start", "rbt-on", "rbt-off", "abt-on", "abt-off")
    ]
    assert interesting == [
        (0, "tx-start"),   # MRTS
        (1, "rbt-on"),
        (2, "rbt-on"),
        (0, "tx-start"),   # reliable data
        (1, "abt-on"),     # B answers first (index 0) and drops RBT
        (1, "rbt-off"),
        (2, "rbt-off"),
        (1, "abt-off"),
        (2, "abt-on"),     # C answers in the second window
        (2, "abt-off"),
    ]


def test_fig4_spacings():
    tb = run_fig4()
    by = {}
    for e in tb.tracer.events:
        by.setdefault((e.node, e.kind), []).append(e.time)
    mrts_start = by[(0, "tx-start")][0]
    data_start = by[(0, "tx-start")][1]
    # MRTS airtime (24 B at 2 Mb/s + 96 us PHY = 192 us) then Twf_rbt.
    assert data_start - mrts_start == (192 + 17) * US
    # RBT rises at the receivers one propagation delay after the MRTS ends.
    assert by[(1, "rbt-on")][0] - (mrts_start + 192 * US) < 1 * US
    # ABTs last exactly l_abt = 17 us and B's precedes C's by one window.
    b_on, b_off = by[(1, "abt-on")][0], by[(1, "abt-off")][0]
    c_on, c_off = by[(2, "abt-on")][0], by[(2, "abt-off")][0]
    assert b_off - b_on == 17 * US
    assert c_off - c_on == 17 * US
    assert c_on - b_on == 17 * US


def test_fig4_sender_checks_windows_after_data():
    tb = run_fig4()
    heard = [e for e in tb.tracer.events if e.kind == "abt-heard"]
    assert [e.detail["receiver"] for e in heard] == [1, 2]
    data_end = [e for e in tb.tracer.events if e.kind == "tx-end"][1].time
    # Both windows are evaluated at the end of the n * l_abt checking span.
    assert all(e.time == data_end + 2 * 17 * US for e in heard)
