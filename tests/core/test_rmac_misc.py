"""Odds and ends of the RMAC engine: wraparound, tracing, edge guards."""

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.core.states import RmacState
from repro.phy.busytone import ToneType
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_rmac_testbed


def test_sequence_numbers_wrap_at_16_bits():
    tb = make_rmac_testbed(TRIANGLE, seed=1)
    mac = tb.macs[0]
    mac._seq = 0xFFFE
    assert mac._next_seq() == 0xFFFF
    assert mac._next_seq() == 0
    assert mac._next_seq() == 1


def test_state_trace_emitted_when_enabled():
    tb = make_rmac_testbed(TRIANGLE, seed=1, trace=True)
    tb.macs[0].send_reliable((1,), "pkt", 100)
    tb.run(20 * MS)
    states = [e for e in tb.tracer.events if e.kind == "state" and e.node == 0]
    transitions = [(e.detail["frm"], e.detail["to"]) for e in states]
    assert ("IDLE", "TX_MRTS") in transitions or ("BACKOFF", "TX_MRTS") in transitions
    assert ("TX_MRTS", "WF_RBT") in transitions
    assert ("TX_RDATA", "WF_ABT") in transitions


def test_mrts_for_unknown_node_ignored_silently():
    tb = make_rmac_testbed(TRIANGLE, seed=1)
    from repro.mac.frames import MrtsFrame

    # An MRTS naming only node 9 (not present): nodes 1/2 must not react.
    tb.macs[1].on_frame_received(MrtsFrame(0, (9,)), 0)
    assert tb.macs[1].state is RmacState.IDLE
    assert not tb.radios[1].tone_emitting(ToneType.RBT)


def test_overheard_reliable_data_not_delivered():
    """Only ABT-ing receivers consume reliable data; bystanders ignore it."""
    tb = make_rmac_testbed(TRIANGLE, seed=1)
    rx2 = collect_upper(tb.macs[2])
    tb.macs[0].send_reliable((1,), "only-for-1", 200)
    tb.run(50 * MS)
    assert rx2 == []  # node 2 heard the frame but was not addressed


def test_backoff_draw_happens_when_kicked_on_busy_channel():
    """Backoff condition (1): a packet queued while the channel is busy
    draws a fresh BI instead of transmitting at the idle transition."""
    tb = make_rmac_testbed(TRIANGLE, seed=3)
    mac2 = tb.macs[2]
    mac2.backoff.bi = 0
    draws_before = mac2.backoff.draws
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable((1,), "long", 1400))
    # Queue node 2's packet mid-way through node 0's data frame.
    tb.sim.at(3 * MS, lambda: mac2.send_unreliable(-1, "queued-busy", 50))
    tb.run(100 * MS)
    assert mac2.backoff.draws > draws_before


def test_reliable_send_to_many_receivers_records_airtime():
    coords = [(0.0, 0.0)] + [(30 + i, 0.0) for i in range(5)]
    tb = make_rmac_testbed(coords, seed=2)
    tb.macs[0].send_reliable(tuple(range(1, 6)), "pkt", 500)
    tb.run(100 * MS)
    stats = tb.macs[0].stats
    # MRTS 42 B -> 264 us; data 522 B -> 2184 us; 5 ABT windows = 85 us.
    assert stats.control_tx_time == 264 * US
    assert stats.data_tx_time == 2184 * US
    assert stats.abt_check_time == 5 * 17 * US


def test_zero_payload_reliable_send():
    tb = make_rmac_testbed(TRIANGLE, seed=1)
    rx1 = collect_upper(tb.macs[1])
    outcomes = []
    tb.macs[0].send_reliable((1,), None, 0, on_complete=outcomes.append)
    tb.run(20 * MS)
    assert outcomes[0].acked == (1,)
    assert rx1 == [(None, 0)]


def test_retry_limit_zero_single_shot():
    tb = make_rmac_testbed([(0, 0), (500, 0)], seed=1,
                           config=RmacConfig(retry_limit=0))
    outcomes = []
    tb.macs[0].send_reliable((1,), "x", 100, on_complete=outcomes.append)
    tb.run(100 * MS)
    assert outcomes[0].dropped
    assert tb.macs[0].stats.mrts_transmissions == 1
    assert tb.macs[0].stats.retransmissions == 0
