"""The Section 3.4 "mixed-up ABT" phenomenon (Fig. 5).

A sender checking a long run of ABT windows can mistake a *foreign* ABT
(from a nearby transaction's receiver) for one of its own receivers'
acknowledgments -- a false positive. The 20-receiver MRTS cap exists
precisely because the shortest neighboring exchange (352 us) outlasts 20
windows (17 us each). These tests construct the phenomenon directly by
injecting a foreign ABT pulse into a silent window.
"""

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.phy.busytone import ToneType
from repro.sim.units import MS, US

from tests.conftest import collect_upper, make_rmac_testbed


def _line(n_receivers):
    """Sender 0 with n receivers clustered in range."""
    return [(0.0, 0.0)] + [(30.0 + 1.2 * i, 0.0) for i in range(n_receivers)]


def test_foreign_abt_in_window_causes_false_ack(monkeypatch):
    """Receiver 2 never gets the data (injected deafness), but a foreign
    ABT pulse in its window makes the sender count it as acknowledged."""
    tb = make_rmac_testbed(_line(3), seed=1, trace=True)
    rx_lost = collect_upper(tb.macs[2])

    original = RmacProtocol._handle_reliable_data

    def deaf(self, frame):
        if self.node_id == 2:
            # Receiver 2 misses the data (it sent RBT but the frame is
            # gone); it stays silent -- its window *should* be empty.
            self._receiver_finish(success=False)
            return
        original(self, frame)

    monkeypatch.setattr(RmacProtocol, "_handle_reliable_data", deaf)

    outcomes = []
    tb.sim.at(1 * MS, lambda: tb.macs[0].send_reliable(
        (1, 2, 3), "pkt", 500, on_complete=outcomes.append))
    # The data frame spans [1209us, 3393us]; receiver 2's window is
    # (data_end + 17us, data_end + 34us]. Pulse a foreign ABT into it
    # from node 3's radio position -- wait, node 3 is a real receiver;
    # use a dedicated bystander instead.
    data_end = 1 * MS + (216 + 17 + 2184) * US  # MRTS(30B)=216us airtime
    tb.sim.at(data_end + 18 * US, lambda: _foreign_pulse(tb))
    tb.run(200 * MS)

    outcome = outcomes[0]
    assert 2 in outcome.acked          # the false acknowledgment
    assert rx_lost == []               # ...despite no delivery
    assert tb.macs[0].stats.retransmissions == 0


def _foreign_pulse(tb):
    # A bystander radio (node 1 has finished its ABT by now is receiver
    # index 0 -- its pulse ended; reuse is safe only if not emitting).
    radio = tb.radios[1]
    if not radio.tone_emitting(ToneType.ABT):
        radio.tone_pulse(ToneType.ABT, 17 * US)


def test_receiver_cap_limits_window_span():
    """With the default cap, a Reliable Send to 25 receivers splits so no
    ABT-collection span exceeds 20 windows = 340 us < 352 us (the
    shortest neighboring exchange)."""
    config = RmacConfig()
    assert config.max_receivers * config.l_abt < 352 * US


def test_raised_cap_would_violate_the_bound():
    config = RmacConfig(max_receivers=25)
    assert config.max_receivers * config.l_abt > 352 * US
