"""RMAC failure paths: retries, drops, aborts, timer expiries, splitting."""

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.core.states import RmacState
from repro.phy.busytone import ToneType
from repro.sim.units import MS, US

from tests.conftest import TRIANGLE, collect_upper, make_rmac_testbed


def test_unreachable_receiver_drops_after_retry_limit():
    # Node 2 is far out of range: no RBT ever arrives.
    tb = make_rmac_testbed([(0, 0), (500, 0)], seed=3,
                           config=RmacConfig(retry_limit=3))
    outcomes = []
    tb.macs[0].send_reliable((1,), "lost", 100, on_complete=outcomes.append)
    tb.run(200 * MS)
    stats = tb.macs[0].stats
    assert outcomes[0].dropped and outcomes[0].failed == (1,)
    assert stats.packets_dropped == 1
    # initial + retry_limit attempts
    assert stats.mrts_transmissions == 4
    assert stats.retransmissions == 3


def test_cw_doubles_then_resets_after_drop():
    tb = make_rmac_testbed([(0, 0), (500, 0)], seed=3,
                           config=RmacConfig(retry_limit=2))
    tb.macs[0].send_reliable((1,), "lost", 100)
    tb.run(200 * MS)
    # After the drop the CW must be back at cw_min (backoff condition 3).
    assert tb.macs[0].backoff.cw == tb.phy.cw_min


def test_partial_abt_triggers_selective_retransmission(monkeypatch):
    """Receiver 2 misses the first MRTS; the retry names only node 2."""
    tb = make_rmac_testbed(TRIANGLE, seed=9, trace=True)
    rx2 = collect_upper(tb.macs[2])
    original = RmacProtocol._handle_mrts
    dropped = []

    def drop_first(self, mrts):
        if self.node_id == 2 and not dropped:
            dropped.append(mrts)
            return
        original(self, mrts)

    monkeypatch.setattr(RmacProtocol, "_handle_mrts", drop_first)
    outcomes = []
    tb.macs[0].send_reliable((1, 2), "pkt", 500, on_complete=outcomes.append)
    tb.run(200 * MS)
    assert outcomes[0].acked and set(outcomes[0].acked) == {1, 2}
    assert not outcomes[0].dropped
    assert rx2 == [("pkt", 0)]
    stats = tb.macs[0].stats
    assert stats.retransmissions == 1
    # First MRTS: 2 receivers (24 B); retry: only node 2 (18 B).
    assert stats.mrts_lengths == {24: 1, 18: 1}


def test_mrts_abort_on_rbt():
    """A node mid-MRTS aborts tau + lambda after a foreign RBT rises."""
    # Long MRTS (10 receivers -> 72 B -> 384 us) leaves room to abort.
    tb = make_rmac_testbed([(0, 0)] + [(30 + i, 0) for i in range(10)], seed=1,
                           trace=True)
    mac = tb.macs[0]
    # Send at 1 ms: the medium has been idle, so the MRTS starts instantly
    # (C10) and the tone timing below is deterministic.
    tb.sim.at(1 * MS, lambda: mac.send_reliable(tuple(range(1, 11)), "pkt", 500))
    tb.sim.at(1 * MS + 20 * US, lambda: tb.radios[5].tone_on(ToneType.RBT))
    tb.sim.at(1 * MS + 600 * US, lambda: tb.radios[5].tone_off(ToneType.RBT))
    tb.run(2 * MS)
    stats = mac.stats
    assert stats.mrts_aborted == 1
    # Abort happened at RBT-on + propagation + lambda (the paper's "tiny
    # interval").
    aborts = [e for e in tb.tracer.events if e.kind == "tx-abort"]
    assert len(aborts) == 1
    assert aborts[0].time == pytest.approx(1 * MS + 20 * US + 15 * US, abs=2 * US)
    # The abortion causes a retransmission attempt that then succeeds.
    tb.run(200 * MS)
    assert stats.mrts_transmissions >= 2
    assert stats.packets_delivered == 1


def test_unreliable_tx_aborts_on_rbt():
    tb = make_rmac_testbed([(0, 0), (50, 0)], seed=1)
    mac = tb.macs[0]
    tb.sim.at(1 * MS, lambda: mac.send_unreliable(-1, "long", 1000))
    tb.sim.at(1 * MS + 100 * US, lambda: tb.radios[1].tone_on(ToneType.RBT))
    tb.run(10 * MS)
    assert mac.stats.unreliable_aborted == 1
    assert mac.stats.unreliable_sent == 0


def test_receiver_releases_rbt_when_data_never_comes():
    """Twf_rdata expiry: RBT off 2 tau + lambda (+guard) after MRTS."""
    tb = make_rmac_testbed(TRIANGLE, seed=1, trace=True)
    # Sender never follows up with data (stub the Twf_rbt action; the
    # timer holds a bound callback, so patch the instance's timer).
    tb.macs[0]._twf_rbt._callback = lambda: None
    tb.macs[0].send_reliable((1, 2), "pkt", 500)
    tb.run(5 * MS)
    ons = [e for e in tb.tracer.events if e.kind == "rbt-on" and e.node == 1]
    offs = [e for e in tb.tracer.events if e.kind == "rbt-off" and e.node == 1]
    assert len(ons) == 1 and len(offs) == 1
    cfg = RmacConfig()
    assert offs[0].time - ons[0].time == cfg.twf_rdata
    assert tb.macs[1].state in (RmacState.IDLE, RmacState.BACKOFF)
    assert not tb.radios[1].tone_emitting(ToneType.RBT)


def test_receiver_split_beyond_twenty():
    """Section 3.4: 25 receivers -> two invocations (20 + 5)."""
    coords = [(0.0, 0.0)] + [(30 + 1.5 * i, 0.0) for i in range(25)]
    tb = make_rmac_testbed(coords, seed=4)
    receivers = tuple(range(1, 26))
    collected = [collect_upper(tb.macs[i]) for i in receivers]
    outcomes = []
    tb.macs[0].send_reliable(receivers, "big", 500, on_complete=outcomes.append)
    tb.run(500 * MS)
    assert outcomes and set(outcomes[0].acked) == set(receivers)
    stats = tb.macs[0].stats
    assert stats.mrts_lengths.get(12 + 6 * 20) == 1
    assert stats.mrts_lengths.get(12 + 6 * 5) == 1
    assert all(len(rx) == 1 for rx in collected)
    # One packet offered, delivered once (not per chunk).
    assert stats.packets_offered == 1 and stats.packets_delivered == 1


def test_receiver_busy_as_sender_ignores_mrts():
    """A node in its own transaction stays silent; the sender retries it."""
    tb = make_rmac_testbed([(0, 0), (50, 0), (100, 0)], seed=6)
    rx1 = collect_upper(tb.macs[1])
    # Node 1 starts its own long reliable send to node 2 first.
    tb.macs[1].send_reliable((2,), "own", 1400)
    # Node 0 tries to reach node 1 while 1 is the busy sender.
    tb.sim.at(300 * US, lambda: tb.macs[0].send_reliable((1,), "late", 300))
    tb.run(200 * MS)
    assert ("late", 0) in rx1  # eventually delivered via retransmission
    assert tb.macs[0].stats.packets_delivered == 1


def test_retry_preserves_payload_and_seq(monkeypatch):
    tb = make_rmac_testbed(TRIANGLE, seed=2)
    seqs = []
    original = RmacProtocol._handle_reliable_data

    def record(self, frame):
        seqs.append(frame.seq)
        original(self, frame)

    monkeypatch.setattr(RmacProtocol, "_handle_reliable_data", record)
    drop = []
    orig_mrts = RmacProtocol._handle_mrts

    def drop_first(self, mrts):
        if self.node_id == 1 and not drop:
            drop.append(1)
            return
        orig_mrts(self, mrts)

    monkeypatch.setattr(RmacProtocol, "_handle_mrts", drop_first)
    tb.macs[0].send_reliable((1, 2), "pkt", 500)
    tb.run(200 * MS)
    # Two data transmissions (initial + retry) carried the same sequence.
    assert len(set(seqs)) == 1
