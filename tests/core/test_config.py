"""RMAC configuration and the Section 3.3.2 timer arithmetic."""

import pytest

from repro.core.config import RmacConfig
from repro.sim.units import US


def test_paper_timer_values():
    cfg = RmacConfig()
    assert cfg.tau == 1 * US
    assert cfg.detect_time == 15 * US
    assert cfg.l_abt == 17 * US           # 2 tau + lambda
    assert cfg.twf_rbt == 17 * US
    assert cfg.twf_abt == 17 * US
    assert cfg.twf_rdata == 17 * US + cfg.rdata_guard


def test_defaults_match_paper():
    cfg = RmacConfig()
    assert cfg.max_receivers == 20
    assert cfg.retry_limit == 7
    assert cfg.queue_capacity is None


def test_custom_tau_scales_timers():
    cfg = RmacConfig(tau=2 * US)
    assert cfg.l_abt == 19 * US
    assert cfg.twf_rbt == 19 * US


def test_validation():
    with pytest.raises(ValueError):
        RmacConfig(tau=0)
    with pytest.raises(ValueError):
        RmacConfig(detect_time=0)
    with pytest.raises(ValueError):
        RmacConfig(retry_limit=-1)
    with pytest.raises(ValueError):
        RmacConfig(max_receivers=0)
    with pytest.raises(ValueError):
        RmacConfig(max_receivers=256)
    with pytest.raises(ValueError):
        RmacConfig(rdata_guard=-1)
