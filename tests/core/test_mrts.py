"""MRTS construction and the Section 3.4 splitting refinement."""

import pytest

from repro.core.mrts import build_mrts, split_receivers


def test_no_split_below_limit():
    assert split_receivers(range(1, 21), 20) == [tuple(range(1, 21))]


def test_split_preserves_order_and_covers_all():
    chunks = split_receivers(range(1, 46), 20)
    assert [len(c) for c in chunks] == [20, 20, 5]
    flat = [r for chunk in chunks for r in chunk]
    assert flat == list(range(1, 46))


def test_exact_multiple():
    chunks = split_receivers(range(40), 20)
    assert [len(c) for c in chunks] == [20, 20]


def test_single_receiver():
    assert split_receivers([7], 20) == [(7,)]


def test_invalid_inputs():
    with pytest.raises(ValueError):
        split_receivers([], 20)
    with pytest.raises(ValueError):
        split_receivers([1], 0)


def test_build_mrts_shrinks_on_retransmission():
    first = build_mrts(0, [1, 2, 3])
    retry = build_mrts(0, [3])
    assert first.size_bytes == 12 + 18
    assert retry.size_bytes == 12 + 6
    assert retry.receivers == (3,)
    assert retry.transmitter == 0
