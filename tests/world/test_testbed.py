"""The protocol-level testbed assembly."""

import pytest

from repro.core import RmacConfig, RmacProtocol
from repro.mobility.base import MobilityProvider
from repro.mobility.stationary import StationaryModel
from repro.phy.busytone import ToneType
from repro.phy.propagation import LogDistanceModel
from repro.world.testbed import MacTestbed


def test_requires_coords_or_provider():
    with pytest.raises(ValueError):
        MacTestbed()
    provider = MobilityProvider([StationaryModel(0, 0)])
    with pytest.raises(ValueError):
        MacTestbed(provider=provider)  # n_nodes missing
    tb = MacTestbed(provider=provider, n_nodes=1)
    assert tb.n_nodes == 1


def test_radios_and_tone_channels_wired():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    assert len(tb.radios) == 2
    assert set(tb.tones) == {ToneType.RBT, ToneType.ABT}
    assert tb.radios[0].node_id == 0


def test_node_rngs_are_stable_and_distinct():
    tb = MacTestbed(coords=[(0, 0), (50, 0)], seed=4)
    assert tb.node_rng(0) is tb.node_rng(0)
    tb2 = MacTestbed(coords=[(0, 0), (50, 0)], seed=4)
    assert tb.node_rng(0).random() == tb2.node_rng(0).random()
    assert tb.node_rng(0) is not tb.node_rng(1)


def test_build_macs_starts_protocols():
    started = []

    class SpyMac:
        def __init__(self, i):
            self.i = i

        def start(self):
            started.append(self.i)

    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    tb.build_macs(lambda i, t: SpyMac(i))
    assert started == [0, 1]


def test_custom_propagation_model():
    model = LogDistanceModel()
    tb = MacTestbed(coords=[(0, 0), (10, 0)], propagation=model)
    assert tb.neighbors.model is model


def test_run_advances_clock():
    tb = MacTestbed(coords=[(0, 0)])
    assert tb.run(1_000_000) == 1_000_000
    assert tb.sim.now == 1_000_000


def test_rmac_protocol_over_log_distance_model():
    """The stack works over a non-unit-disk propagation model too."""
    # Default LogDistanceModel decodes out to ~27 m; keep nodes inside.
    tb = MacTestbed(coords=[(0, 0), (20, 0), (0, 20)],
                    propagation=LogDistanceModel())
    cfg = RmacConfig(phy=tb.phy)
    tb.build_macs(lambda i, t: RmacProtocol(i, t.sim, t.radios[i],
                                            t.node_rng(i), cfg))
    got = []
    tb.macs[1].upper_rx = lambda p, s: got.append(p)
    tb.macs[0].send_reliable((1, 2), "pkt", 200)
    tb.run(50_000_000)
    assert got == ["pkt"]
