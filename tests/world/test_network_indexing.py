"""Full-stack grid-vs-brute equivalence: same seeds, same RunSummary.

The spatial-grid link path must be invisible to protocol behavior: a
complete run (placement, mobility, PHY, MAC, BLESS, multicast, metrics)
forced onto the grid path produces a bit-identical summary to the same
run forced onto the brute-force path. ``force_indexing`` flips the path
on the built network, so ``ScenarioConfig`` -- and every ``config_hash``
derived from it -- is identical on both sides.
"""

from repro.world.network import ScenarioConfig, build_network


def run_with_indexing(config, mode):
    network = build_network(config)
    network.testbed.neighbors.force_indexing(mode)
    return network.run(), network.testbed.neighbors.counters


STATIC = ScenarioConfig(n_nodes=40, width=360.0, height=220.0, rate_pps=5.0,
                        n_packets=15, warmup_s=2.0, drain_s=2.0, seed=3)
MOBILE = STATIC.variant(mobile=True, n_nodes=30, width=300.0, height=200.0,
                        seed=4)


def test_static_run_bit_identical_across_indexing():
    grid, grid_counters = run_with_indexing(STATIC, "grid")
    brute, brute_counters = run_with_indexing(STATIC, "brute")
    assert grid.to_dict() == brute.to_dict()
    assert grid_counters.table_rebuilds == 1
    assert brute_counters.table_rebuilds == 0


def test_mobile_run_bit_identical_across_indexing():
    grid, grid_counters = run_with_indexing(MOBILE, "grid")
    brute, _ = run_with_indexing(MOBILE, "brute")
    assert grid.to_dict() == brute.to_dict()
    # Tables were computed across several bucket epochs -- eagerly
    # (rebuilds) or lazily (misses) depending on per-bucket density.
    assert grid_counters.table_rebuilds + grid_counters.table_misses > 1
    assert grid_counters.links_built > 0


def test_neighbor_counters_surface_in_telemetry():
    config = STATIC.variant(collect_telemetry=True, n_packets=5)
    summary = build_network(config).run()
    neighbors = summary.telemetry["neighbors"]
    assert neighbors["table_hits"] > 0
    assert neighbors["links_built"] > 0
    # Static run: every table frozen once, then pure cache hits.
    assert neighbors["table_misses"] == 0
