"""Random placement and connectivity."""

import random

import pytest

from repro.world.placement import connected_components, random_placement


def test_components_of_chain():
    coords = [(0, 0), (60, 0), (120, 0), (400, 0)]
    comps = connected_components(coords, radio_range=75.0)
    assert comps == [[0, 1, 2], [3]]


def test_single_component_when_dense():
    rng = random.Random(3)
    coords = random_placement(30, 300, 200, rng, radio_range=75.0)
    assert len(connected_components(coords, 75.0)) == 1


def test_placement_in_bounds_and_count():
    rng = random.Random(5)
    coords = random_placement(75, 500, 300, rng, require_connected=True)
    assert len(coords) == 75
    assert all(0 <= x <= 500 and 0 <= y <= 300 for x, y in coords)


def test_unconnectable_density_raises():
    rng = random.Random(1)
    with pytest.raises(RuntimeError):
        random_placement(3, 10_000, 10_000, rng, radio_range=10.0, max_tries=5)


def test_no_connectivity_requirement_always_succeeds():
    rng = random.Random(1)
    coords = random_placement(3, 10_000, 10_000, rng, radio_range=10.0,
                              require_connected=False)
    assert len(coords) == 3


def test_validation():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        random_placement(0, 100, 100, rng)
    with pytest.raises(ValueError):
        random_placement(5, 0, 100, rng)


def test_deterministic_given_rng():
    a = random_placement(20, 300, 200, random.Random(9))
    b = random_placement(20, 300, 200, random.Random(9))
    assert a == b


def test_components_match_dense_reference():
    """The grid-pruned adjacency must reproduce the O(n^2) definition."""
    import numpy as np

    rng = random.Random(21)
    for trial in range(5):
        coords = [(rng.uniform(0, 400), rng.uniform(0, 250))
                  for _ in range(60)]
        arr = np.asarray(coords)
        deltas = arr[:, None, :] - arr[None, :, :]
        dists = np.hypot(deltas[..., 0], deltas[..., 1])
        adjacency = [
            [j for j in range(len(arr)) if j != i and dists[i, j] <= 75.0]
            for i in range(len(arr))
        ]
        seen = [False] * len(arr)
        expected = []
        for start in range(len(arr)):
            if seen[start]:
                continue
            stack, component = [start], []
            seen[start] = True
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor in adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            expected.append(sorted(component))
        assert connected_components(coords, 75.0) == expected
