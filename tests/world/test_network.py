"""Full-stack assembly from ScenarioConfig."""

import pytest

from repro.world.network import PROTOCOLS, ScenarioConfig, build_network, register_protocol


SMALL = dict(n_nodes=12, width=200, height=150, rate_pps=5, n_packets=10,
             warmup_s=3.0, drain_s=2.0, seed=2)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        build_network(ScenarioConfig(protocol="nope"))


def test_all_registered_protocols_run_the_workload():
    for protocol in ("rmac", "bmmm", "bmw", "lbp", "mx"):
        summary = build_network(ScenarioConfig(protocol=protocol, **SMALL)).run()
        assert summary.n_generated == 10
        assert summary.delivery_ratio is not None
        assert summary.delivery_ratio > 0.3, protocol


def test_variant_replaces_fields():
    config = ScenarioConfig(**SMALL)
    v = config.variant(rate_pps=40, seed=9)
    assert v.rate_pps == 40 and v.seed == 9
    assert v.n_nodes == config.n_nodes
    assert config.rate_pps == 5  # original untouched


def test_static_network_rmac_near_perfect_delivery():
    summary = build_network(ScenarioConfig(protocol="rmac", **SMALL)).run()
    assert summary.delivery_ratio > 0.95
    assert summary.avg_drop_ratio == 0.0


def test_mobile_scenario_builds_and_degrades():
    config = ScenarioConfig(protocol="rmac", mobile=True, min_speed=0.0,
                            max_speed=8.0, pause_s=5.0, **SMALL)
    summary = build_network(config).run()
    assert summary.delivery_ratio is not None
    assert 0 < summary.delivery_ratio <= 1.0


def test_mac_overrides_forwarded():
    config = ScenarioConfig(protocol="rmac", mac_overrides={"retry_limit": 1}, **SMALL)
    net = build_network(config)
    assert net.macs[0].config.retry_limit == 1


def test_custom_protocol_registration():
    from repro.core.rmac import RmacProtocol
    from repro.core.config import RmacConfig

    def factory(node_id, tb, rng, overrides):
        return RmacProtocol(node_id, tb.sim, tb.radios[node_id], rng,
                            RmacConfig(phy=tb.phy))

    register_protocol("custom-rmac", factory)
    try:
        summary = build_network(ScenarioConfig(protocol="custom-rmac", **SMALL)).run()
        assert summary.delivery_ratio > 0.5
    finally:
        PROTOCOLS.pop("custom-rmac", None)


def test_same_seed_same_placement_across_protocols():
    """The paper pairs protocols on identical placements per seed."""
    net_a = build_network(ScenarioConfig(protocol="rmac", **SMALL))
    net_b = build_network(ScenarioConfig(protocol="bmmm", **SMALL))
    assert net_a.coords == net_b.coords
