"""The SINR subsystem through the full stack: config hashing, telemetry,
store round trips, oracle-clean protocol sweeps, campaign resume."""

import json
from dataclasses import asdict

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.campaign import Campaign
from repro.experiments.scenarios import scaled_scenario, sinr_preset
from repro.experiments.store import ResultStore, canonical_config_json, config_hash
from repro.metrics.summary import RunSummary
from repro.phy.sinr import SinrConfig
from repro.world.network import ScenarioConfig, build_network

SMALL = dict(n_nodes=12, width=200.0, height=140.0, rate_pps=20,
             n_packets=10, warmup_s=2.0, drain_s=2.0,
             require_connected=False)

SHADOWING = sinr_preset("shadowing")


# ----------------------------------------------------------------------
# Config hashing
# ----------------------------------------------------------------------
def test_none_sinr_hashes_like_pre_field_configs():
    """``sinr=None`` must not appear in the canonical JSON, so every
    campaign hash from before the field existed still resolves."""
    payload = json.loads(canonical_config_json(ScenarioConfig()))
    assert "sinr" not in payload
    assert config_hash(ScenarioConfig()) == config_hash(
        ScenarioConfig(sinr=None))


def test_sinr_config_is_part_of_the_hash():
    base = ScenarioConfig(**SMALL)
    shadowed = base.variant(sinr=SHADOWING)
    assert config_hash(shadowed) != config_hash(base)
    assert config_hash(shadowed) != config_hash(
        base.variant(sinr=sinr_preset("shadowing", shadowing_sigma_db=8.0)))
    # Equal configs (int/float spellings included) hash equally.
    assert config_hash(shadowed) == config_hash(
        base.variant(sinr=SinrConfig(propagation="shadowing",
                                     sinr_threshold_db=10)))


# ----------------------------------------------------------------------
# Full-stack runs: stats, telemetry, determinism
# ----------------------------------------------------------------------
def test_shadowing_run_collects_stats_and_telemetry():
    config = ScenarioConfig(protocol="rmac", seed=3, sinr=SHADOWING,
                            collect_telemetry=True, **SMALL)
    summary = build_network(config).run()
    stats = summary.sinr
    assert stats is not None
    assert stats["delivered"] > 0
    assert stats["concurrent_high_water"] >= 1
    assert stats["mean_sinr_db"] is not None
    assert stats["min_sinr_db"] <= stats["mean_sinr_db"]
    # The same stats ride along as a telemetry section.
    assert summary.telemetry["sinr"] == stats


def test_threshold_run_has_no_sinr_stats():
    summary = build_network(
        ScenarioConfig(protocol="rmac", seed=3, **SMALL)).run()
    assert summary.sinr is None


def test_shadowing_run_deterministic_in_seed():
    config = ScenarioConfig(protocol="rmac", seed=11,
                            sinr=sinr_preset("fading"), **SMALL)
    a = build_network(config).run()
    b = build_network(config).run()
    assert asdict(a) == asdict(b)
    c = build_network(config.variant(seed=12)).run()
    assert asdict(c) != asdict(a)


def test_heterogeneous_radios_run_end_to_end():
    config = ScenarioConfig(
        protocol="rmac", seed=5,
        sinr=sinr_preset("shadowing", tx_power_jitter_db=3.0,
                         antenna_gain_jitter_db=1.0),
        **SMALL)
    summary = build_network(config).run()
    assert summary.sinr["delivered"] > 0


# ----------------------------------------------------------------------
# Oracle-clean protocol sweep under shadowing (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["rmac", "bmmm"])
@pytest.mark.parametrize("mobile", [False, True])
def test_protocols_run_oracle_clean_under_shadowing(protocol, mobile):
    config = ScenarioConfig(protocol=protocol, seed=2, mobile=mobile,
                            sinr=SHADOWING, oracle=True, **SMALL)
    summary = build_network(config).run()
    assert summary.oracle_violations == 0
    assert summary.n_generated > 0


# ----------------------------------------------------------------------
# Result store round trip
# ----------------------------------------------------------------------
def test_sinr_summary_round_trips_through_store(tmp_path):
    config = ScenarioConfig(protocol="rmac", seed=7, sinr=SHADOWING, **SMALL)
    summary = build_network(config).run()
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 20, 7,
                         config_hash(config), summary)
    got = ResultStore(str(tmp_path / "s")).get(
        "rmac", "stationary", 20, 7, config_hash(config))
    assert got == summary
    assert got.sinr == summary.sinr


def test_run_summary_sinr_field_survives_dict_round_trip():
    payload = {"sinr_dropped": 4, "delivered": 120, "mean_sinr_db": 21.5,
               "min_sinr_db": 10.2, "concurrent_high_water": 3}
    config = ScenarioConfig(protocol="rmac", seed=1, n_packets=2, n_nodes=6,
                            width=100.0, height=80.0, warmup_s=1.0,
                            drain_s=1.0, require_connected=False)
    summary = build_network(config).run()
    clone = RunSummary.from_dict({**summary.to_dict(), "sinr": payload})
    assert clone.sinr == payload


# ----------------------------------------------------------------------
# Campaign kill-and-resume (acceptance criterion)
# ----------------------------------------------------------------------
def shadowed_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10).variant(sinr=SHADOWING)


MATRIX = (["rmac", "bmmm"], ["stationary"], [10], [1, 2])


def test_killed_sinr_campaign_resumes_bit_identical(tmp_path, monkeypatch):
    reference = Campaign(str(tmp_path / "reference")).run(
        *MATRIX, shadowed_config)

    original = runner_module.run_point
    calls = []

    def crashing_run_point(config):
        if len(calls) == 2:
            raise KeyboardInterrupt("simulated kill")
        calls.append(config.seed)
        return original(config)

    path = str(tmp_path / "interrupted")
    monkeypatch.setattr(runner_module, "run_point", crashing_run_point)
    with pytest.raises(KeyboardInterrupt):
        Campaign(path).run(*MATRIX, shadowed_config)
    monkeypatch.setattr(runner_module, "run_point", original)
    resumed = Campaign(path).run(*MATRIX, shadowed_config)

    assert [asdict(r) for r in resumed] == [asdict(r) for r in reference]
