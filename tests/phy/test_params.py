"""802.11b timing constants -- the numbers Section 2 relies on."""

import pytest

from repro.phy.params import DEFAULT_PHY, PhyParams, _bits_airtime
from repro.sim.units import US


def test_phy_overhead_is_96_us():
    assert DEFAULT_PHY.phy_overhead == 96 * US
    assert DEFAULT_PHY.preamble_airtime == 72 * US
    assert DEFAULT_PHY.plcp_header_airtime == 24 * US


def test_ack_airtime_matches_paper():
    # "The transmission of an ACK frame (14 bytes) only takes 56 us if
    # transmitted at 2 Mbps."
    assert DEFAULT_PHY.payload_airtime(14) == 56 * US
    assert DEFAULT_PHY.frame_airtime(14) == 152 * US


def test_difs_is_50_us():
    assert DEFAULT_PHY.difs == 50 * US
    assert DEFAULT_PHY.sifs == 10 * US
    assert DEFAULT_PHY.slot_time == 20 * US
    assert DEFAULT_PHY.cca_time == 15 * US


def test_payload_airtime_scales_linearly():
    assert DEFAULT_PHY.payload_airtime(500) == 2000 * US
    assert DEFAULT_PHY.payload_airtime(0) == 0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DEFAULT_PHY.payload_airtime(-1)


def test_bits_airtime_requires_integral_ns():
    assert _bits_airtime(8, 2_000_000) == 4 * US
    with pytest.raises(ValueError):
        _bits_airtime(1, 3_000_000)  # 333.33 ns


def test_custom_bitrate():
    phy = PhyParams(bitrate=1_000_000)
    assert phy.payload_airtime(14) == 112 * US


def test_frame_airtime_composition():
    phy = DEFAULT_PHY
    for n in (14, 20, 48, 512):
        assert phy.frame_airtime(n) == phy.phy_overhead + phy.payload_airtime(n)
