"""The busy->idle notification paths behind the MAC pump optimization."""

from dataclasses import dataclass

from repro.phy.busytone import ToneType
from repro.sim.units import US
from repro.world.testbed import MacTestbed


@dataclass(frozen=True)
class Frame:
    size_bytes: int


def test_notify_idle_fires_immediately_when_already_idle():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    fired = []
    tb.data_channel.notify_idle(1, lambda: fired.append(tb.sim.now))
    assert fired == [0]


def test_notify_idle_fires_at_transition():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    tb.data_channel.transmit(0, Frame(100))  # 496 us airtime
    fired = []
    tb.sim.at(10 * US, lambda: tb.data_channel.notify_idle(1, lambda: fired.append(tb.sim.now)))
    tb.run(5_000_000)
    assert fired == [496 * US + 167]


def test_notify_idle_is_one_shot():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    tb.data_channel.transmit(0, Frame(50))
    fired = []
    tb.sim.at(10 * US, lambda: tb.data_channel.notify_idle(1, lambda: fired.append(1)))
    tb.run(2_000_000)
    tb.data_channel.transmit(0, Frame(50))
    tb.run(5_000_000)
    assert fired == [1]  # the second busy period does not re-fire it


def test_notify_idle_sender_side_at_tx_end():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    tb.data_channel.transmit(0, Frame(50))  # sender busy with own tx
    fired = []
    tb.sim.at(10 * US, lambda: tb.data_channel.notify_idle(0, lambda: fired.append(tb.sim.now)))
    tb.run(5_000_000)
    # 50 B + 28... Frame(50) raw: airtime = 96 + 200 us = 296 us.
    assert fired == [296 * US]


def test_notify_idle_fires_at_abort():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    tx = tb.data_channel.transmit(0, Frame(500))
    fired = []
    tb.sim.at(10 * US, lambda: tb.data_channel.notify_idle(0, lambda: fired.append(tb.sim.now)))
    tb.sim.at(40 * US, lambda: tb.data_channel.abort(tx))
    tb.run(5_000_000)
    assert fired == [40 * US]


def test_tone_notify_clear_immediate_and_at_transition():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    channel = tb.tones[ToneType.RBT]
    fired = []
    channel.notify_clear(1, lambda: fired.append(("immediate", tb.sim.now)))
    assert fired == [("immediate", 0)]
    channel.turn_on(0)
    tb.run(1 * US)
    tb.sim.at(100 * US, lambda: channel.notify_clear(1, lambda: fired.append(("cleared", tb.sim.now))))
    tb.sim.at(200 * US, lambda: channel.turn_off(0))
    tb.run(1_000_000)
    assert fired[-1] == ("cleared", 200 * US + 167)


def test_tone_notify_clear_waits_for_all_emitters():
    tb = MacTestbed(coords=[(0, 0), (50, 0), (0, 50)])
    channel = tb.tones[ToneType.RBT]
    channel.turn_on(0)
    channel.turn_on(2)
    tb.run(1 * US)
    fired = []
    tb.sim.at(10 * US, lambda: channel.notify_clear(1, lambda: fired.append(tb.sim.now)))
    tb.sim.at(100 * US, lambda: channel.turn_off(0))
    tb.sim.at(300 * US, lambda: channel.turn_off(2))
    tb.run(1_000_000)
    assert len(fired) == 1
    assert fired[0] > 300 * US  # only when the LAST emitter's tone fades
