"""The data channel: delivery, carrier sense, collisions, aborts."""

from dataclasses import dataclass

import pytest

from repro.phy.channel import DataChannel
from repro.phy.error import UniformBitErrors
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.params import DEFAULT_PHY
from repro.phy.propagation import UnitDiskModel
from repro.sim.engine import Simulator
from repro.sim.units import US


@dataclass(frozen=True)
class Frame:
    size_bytes: int
    tag: str = ""


class Recorder:
    def __init__(self):
        self.received = []
        self.errors = []
        self.tx_done = []
        self.rx_starts = []

    def on_frame_received(self, frame, sender):
        self.received.append((frame, sender))

    def on_frame_error(self, sender):
        self.errors.append(sender)

    def on_tx_complete(self, frame, aborted):
        self.tx_done.append((frame, aborted))

    def on_rx_start(self, sender):
        self.rx_starts.append(sender)


def make_channel(coords, error_model=None):
    sim = Simulator()
    svc = NeighborService(StaticPositions(coords), UnitDiskModel(75.0))
    channel = DataChannel(sim, svc, DEFAULT_PHY, error_model=error_model)
    recorders = []
    for node in range(len(coords)):
        rec = Recorder()
        channel.attach(node, rec)
        recorders.append(rec)
    return sim, channel, recorders


def test_clean_delivery_to_all_in_range():
    sim, ch, recs = make_channel([(0, 0), (50, 0), (200, 0)])
    frame = Frame(100)
    ch.transmit(0, frame)
    sim.run()
    assert recs[1].received == [(frame, 0)]
    assert recs[1].rx_starts == [0]
    assert recs[2].received == [] and recs[2].rx_starts == []
    assert recs[0].tx_done == [(frame, False)]


def test_airtime_and_propagation_timing():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    frame = Frame(14)  # 152 us airtime
    ch.transmit(0, frame)
    done_at = {}
    sim.run()
    # delivery occurs at tx end + propagation (~167 ns for 50 m)
    assert sim.now == 152 * US + 167


def test_carrier_sense_during_transmission():
    sim, ch, recs = make_channel([(0, 0), (50, 0), (200, 0)])
    ch.transmit(0, Frame(100))
    states = {}
    sim.at(50 * US, lambda: states.update(
        tx=ch.busy(0), near=ch.busy(1), far=ch.busy(2)))
    sim.run()
    assert states == {"tx": True, "near": True, "far": False}
    assert not ch.busy(0) and not ch.busy(1)


def test_idle_duration_tracks_last_busy():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    ch.transmit(0, Frame(14))  # 152 us
    sim.run()
    end_at_receiver = 152 * US + 167
    sim_now = sim.now
    assert ch.idle_duration(1) == sim_now - end_at_receiver
    assert ch.idle_duration(0) == sim_now - 152 * US


def test_overlapping_transmissions_collide_at_common_receiver():
    # 0 and 2 are hidden from each other; 1 hears both.
    sim, ch, recs = make_channel([(0, 0), (60, 0), (120, 0)])
    ch.transmit(0, Frame(100, "a"))
    sim.at(10 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []
    assert len(recs[1].errors) == 2


def test_second_frame_corrupts_even_if_first_nearly_done():
    sim, ch, recs = make_channel([(0, 0), (60, 0), (120, 0)])
    ch.transmit(0, Frame(100, "a"))  # ends at 496 us
    sim.at(495 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []


def test_non_overlapping_frames_both_delivered():
    sim, ch, recs = make_channel([(0, 0), (60, 0), (120, 0)])
    ch.transmit(0, Frame(100, "a"))
    sim.at(600 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    tags = [f.tag for f, _ in recs[1].received]
    assert tags == ["a", "b"]


def test_receiver_transmitting_cannot_receive():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    ch.transmit(0, Frame(100, "a"))
    sim.at(10 * US, lambda: ch.transmit(1, Frame(14, "b")))
    sim.run()
    # node 1 was transmitting during part of frame a's arrival
    assert recs[1].received == []
    assert recs[1].errors == [0]
    # node 0 was transmitting while b arrived: also corrupted
    assert recs[0].received == []


def test_abort_truncates_and_never_delivers():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    tx = ch.transmit(0, Frame(100, "a"))
    sim.at(30 * US, lambda: ch.abort(tx))
    sim.run()
    assert recs[0].tx_done == [(tx.frame, True)]
    assert recs[1].received == []
    assert recs[1].errors == [0]
    assert tx.aborted and tx.end == 30 * US
    # channel is idle again right after the truncated frame propagates
    assert not ch.busy(1)


def test_abort_shortens_busy_interval():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    tx = ch.transmit(0, Frame(500))
    sim.at(20 * US, lambda: ch.abort(tx))
    busy_mid = {}
    sim.at(100 * US, lambda: busy_mid.update(b=ch.busy(1)))
    sim.run()
    assert busy_mid == {"b": False}


def test_cannot_transmit_twice_concurrently():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    ch.transmit(0, Frame(100))
    with pytest.raises(RuntimeError):
        ch.transmit(0, Frame(100))


def test_abort_after_completion_rejected():
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    tx = ch.transmit(0, Frame(14))
    sim.run()
    with pytest.raises(RuntimeError):
        ch.abort(tx)
    assert recs[1].received  # the clean delivery already happened


def test_bit_errors_drop_frames():
    sim, ch, recs = make_channel([(0, 0), (50, 0)], error_model=UniformBitErrors(0.99))
    ch.transmit(0, Frame(100))
    sim.run()
    assert recs[1].received == []
    assert recs[1].errors == [0]


def test_arrival_end_without_start_raises_underflow():
    """Regression: a lost/duplicated arrival event used to be silently
    absorbed (`busy.get(node, 1) - 1` invented a count); it must fail
    loudly and leave a ``channel-underflow`` trace event behind."""
    from repro.sim.engine import SimulationError
    from repro.sim.trace import Tracer

    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (50, 0)]), UnitDiskModel(75.0))
    tracer = Tracer(enabled=True)
    ch = DataChannel(sim, svc, DEFAULT_PHY, tracer=tracer)
    rec = Recorder()
    ch.attach(1, rec)
    tx = ch.transmit(0, Frame(100))
    link = tx.links[0]
    sim.run()  # the real start/end pair fires and balances out
    assert rec.errors == [] and len(rec.received) == 1
    with pytest.raises(SimulationError):
        ch._arrival_end(tx, link)  # a second end with no matching start
    assert [e.node for e in tracer.events if e.kind == "channel-underflow"] == [1]
    # The failed end changed nothing: the channel still reads idle.
    assert not ch.busy(1)


def _mixed_power_setup(powered_sender):
    """Capture-enabled channel where only ``powered_sender``'s links
    report received power (the other sender's links are power-less)."""
    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (60, 0), (120, 0)]),
                          UnitDiskModel(75.0))
    ch = DataChannel(sim, svc, DEFAULT_PHY, capture_threshold_db=10.0)
    recs = []
    for node in range(3):
        rec = Recorder()
        ch.attach(node, rec)
        recs.append(rec)
    from repro.phy.neighbors import Link

    compute = svc.links_from

    def mixed(sender, time_ns):
        links = compute(sender, time_ns)
        if sender == powered_sender:
            links = tuple(
                Link(l.node, l.delay_ns, l.in_rx_range, -40.0) for l in links
            )
        return links

    svc.links_from = mixed
    return sim, ch, recs


@pytest.mark.parametrize("powered_sender", [0, 2])
def test_capture_tolerates_mixed_power_and_no_power_links(powered_sender):
    """With capture on, an overlap between a powered link and a
    power-less (unit-disk) link must collide cleanly in either arrival
    order -- dominance cannot be proven against an unknown power."""
    sim, ch, recs = _mixed_power_setup(powered_sender)
    ch.transmit(0, Frame(100, "a"))
    sim.at(10 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []
    assert sorted(recs[1].errors) == [0, 2]
    assert not ch.busy(1)


def test_abort_before_arrival_start_still_pairs_events():
    """Abort at t=100 ns, before the start has propagated (167 ns): the
    receiver must still see a well-formed start/end pair, one rx-error,
    and a busy counter that returns to zero."""
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    tx = ch.transmit(0, Frame(100))
    sim.at(100, lambda: ch.abort(tx))
    sim.run()
    assert recs[0].tx_done == [(tx.frame, True)]
    assert recs[1].rx_starts == [0]       # the start still fired
    assert recs[1].errors == [0]          # exactly one error at the end
    assert recs[1].received == []
    assert not ch.busy(1)
    assert ch._busy == {}                 # counter fully drained


def test_notify_idle_reregister_during_fire_waits_for_next_idle():
    """A callback that makes the node busy again and re-registers must
    land in the *next* waiter list, not re-fire in the same pass."""
    sim, ch, recs = make_channel([(0, 0), (50, 0)])
    airtime = 152 * US  # Frame(14)
    calls = []

    def second():
        calls.append(("second", sim.now))

    def first():
        calls.append(("first", sim.now))
        ch.transmit(0, Frame(14, "again"))
        ch.notify_idle(0, second)

    ch.transmit(0, Frame(14, "first"))
    ch.notify_idle(0, first)
    sim.run()
    assert calls == [("first", airtime), ("second", 2 * airtime)]
