"""The per-node radio facade."""

from dataclasses import dataclass

from repro.phy.busytone import ToneType
from repro.phy.radio import RadioListener
from repro.sim.units import US
from repro.world.testbed import MacTestbed


@dataclass(frozen=True)
class Frame:
    size_bytes: int


class Recorder(RadioListener):
    def __init__(self):
        self.received = []
        self.errors = []
        self.tx_done = []
        self.rx_starts = []

    def on_frame_received(self, frame, sender):
        self.received.append((frame, sender))

    def on_frame_error(self, sender):
        self.errors.append(sender)

    def on_tx_complete(self, frame, aborted):
        self.tx_done.append((frame, aborted))

    def on_rx_start(self, sender):
        self.rx_starts.append(sender)


def make_pair():
    tb = MacTestbed(coords=[(0, 0), (50, 0)])
    recs = [Recorder(), Recorder()]
    for radio, rec in zip(tb.radios, recs):
        radio.attach(rec)
    return tb, recs


def test_transmit_and_receive_via_facade():
    tb, recs = make_pair()
    frame = Frame(100)
    tx = tb.radios[0].transmit(frame)
    assert tb.radios[0].is_transmitting
    tb.run(10_000_000)
    assert recs[1].received == [(frame, 0)]
    assert recs[0].tx_done == [(frame, False)]
    assert not tb.radios[0].is_transmitting


def test_abort_via_facade():
    tb, recs = make_pair()
    tx = tb.radios[0].transmit(Frame(500))
    tb.sim.at(5 * US, lambda: tb.radios[0].abort(tx))
    tb.run(10_000_000)
    assert recs[0].tx_done[0][1] is True
    assert recs[1].errors == [0]


def test_frame_airtime_helper():
    tb, _ = make_pair()
    assert tb.radios[0].frame_airtime(Frame(14)) == 152 * US


def test_tone_roundtrip_via_facade():
    tb, _ = make_pair()
    r0, r1 = tb.radios
    r0.tone_on(ToneType.RBT)
    assert r0.tone_emitting(ToneType.RBT)
    states = {}
    tb.sim.at(1000, lambda: states.update(r1_sees=r1.tone_present(ToneType.RBT),
                                          r0_self=r0.tone_present(ToneType.RBT)))
    tb.run(2000)
    assert states == {"r1_sees": True, "r0_self": False}
    r0.tone_off(ToneType.RBT)
    assert not r0.tone_emitting(ToneType.RBT)


def test_tone_watch_via_facade():
    tb, _ = make_pair()
    hits = []
    tb.radios[1].watch_tone(ToneType.ABT, lambda tone: hits.append(tone))
    tb.radios[0].tone_pulse(ToneType.ABT, 17 * US)
    tb.run(1_000_000)
    assert hits == [ToneType.ABT]


def test_data_busy_and_idle_duration():
    tb, recs = make_pair()
    tb.radios[0].transmit(Frame(14))
    states = {}
    tb.sim.at(50 * US, lambda: states.update(busy=tb.radios[1].data_busy()))
    tb.run(1_000_000)
    assert states["busy"] is True
    assert not tb.radios[1].data_busy()
    assert tb.radios[1].data_idle_duration() > 0
