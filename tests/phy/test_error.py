"""Bit-error models."""

import random

import pytest

from repro.phy.error import (
    GilbertElliott,
    NoErrors,
    UniformBitErrors,
    error_model_from_dict,
)


def test_no_errors_never_corrupts():
    model = NoErrors()
    rng = random.Random(0)
    assert not any(model.corrupts(10_000, rng) for _ in range(100))


def test_zero_ber_never_corrupts():
    model = UniformBitErrors(0.0)
    rng = random.Random(0)
    assert not any(model.corrupts(10_000, rng) for _ in range(100))


def test_success_probability_formula():
    model = UniformBitErrors(1e-4)
    assert model.frame_success_probability(100) == pytest.approx(
        (1 - 1e-4) ** 800
    )
    assert model.frame_success_probability(0) == 1.0


def test_longer_frames_more_fragile():
    model = UniformBitErrors(1e-4)
    assert model.frame_success_probability(1000) < model.frame_success_probability(10)


def test_corruption_rate_statistically_close():
    model = UniformBitErrors(1e-3)
    rng = random.Random(42)
    n = 4000
    corrupted = sum(model.corrupts(100, rng) for _ in range(n))
    expected = 1 - model.frame_success_probability(100)
    assert corrupted / n == pytest.approx(expected, abs=0.03)


def test_ber_bounds():
    with pytest.raises(ValueError):
        UniformBitErrors(-0.1)
    with pytest.raises(ValueError):
        UniformBitErrors(1.0)
    with pytest.raises(ValueError):
        UniformBitErrors(0.5).frame_success_probability(-1)


# ---------------------------------------------------------------------------
# Gilbert-Elliott
# ---------------------------------------------------------------------------
def test_gilbert_elliott_parameter_bounds():
    with pytest.raises(ValueError):
        GilbertElliott(p_gb=1.5, p_bg=0.1)
    with pytest.raises(ValueError):
        GilbertElliott(p_gb=0.1, p_bg=-0.2)
    with pytest.raises(ValueError):
        GilbertElliott(p_gb=0.1, p_bg=0.1, ber_bad=1.0)


def test_gilbert_elliott_all_good_never_corrupts():
    model = GilbertElliott(p_gb=0.0, p_bg=1.0, ber_good=0.0, ber_bad=0.5)
    rng = random.Random(1)
    assert not any(model.corrupts(1000, rng) for _ in range(200))
    assert not model.bad


def test_gilbert_elliott_bursts_cluster():
    """ber_bad >> ber_good with sticky states produces runs of losses."""
    model = GilbertElliott(p_gb=0.05, p_bg=0.2, ber_good=0.0, ber_bad=0.05)
    rng = random.Random(7)
    outcomes = [model.corrupts(500, rng) for _ in range(5000)]
    losses = sum(outcomes)
    assert losses > 0
    # Count adjacent loss pairs; independent losses at the same overall
    # rate would produce far fewer (p_pair = p^2 * n).
    pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
    p = losses / len(outcomes)
    independent_pairs = p * p * len(outcomes)
    assert pairs > 3 * independent_pairs


def test_gilbert_elliott_equal_bers_matches_uniform():
    """With ber_good == ber_bad the state machine is irrelevant: loss
    frequency must match UniformBitErrors at that BER statistically."""
    ber = 2e-4
    ge = GilbertElliott(p_gb=0.3, p_bg=0.3, ber_good=ber, ber_bad=ber)
    uniform = UniformBitErrors(ber)
    n, size = 6000, 500
    rng_ge, rng_u = random.Random(11), random.Random(12)
    ge_rate = sum(ge.corrupts(size, rng_ge) for _ in range(n)) / n
    u_rate = sum(uniform.corrupts(size, rng_u) for _ in range(n)) / n
    expected = 1 - (1 - ber) ** (8 * size)
    assert ge_rate == pytest.approx(expected, abs=0.03)
    assert u_rate == pytest.approx(expected, abs=0.03)
    assert ge_rate == pytest.approx(u_rate, abs=0.04)


# ---------------------------------------------------------------------------
# Serialization and equality
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model", [
    NoErrors(),
    UniformBitErrors(1e-4),
    GilbertElliott(p_gb=0.1, p_bg=0.4, ber_good=1e-5, ber_bad=0.02),
])
def test_to_dict_round_trip(model):
    rebuilt = error_model_from_dict(model.to_dict())
    assert rebuilt == model
    assert rebuilt is not model
    assert rebuilt.to_dict() == model.to_dict()
    assert hash(rebuilt) == hash(model)


def test_round_trip_resets_dynamic_state():
    """to_dict carries parameters only: a rebuilt GilbertElliott starts
    fresh in the good state even if the source was mid-burst."""
    model = GilbertElliott(p_gb=1.0, p_bg=0.0, ber_good=0.0, ber_bad=0.5)
    model.corrupts(100, random.Random(0))  # forces the bad state
    assert model.bad
    rebuilt = error_model_from_dict(model.to_dict())
    assert not rebuilt.bad
    assert rebuilt == model  # state is not part of value equality


def test_equality_is_by_value():
    assert UniformBitErrors(1e-4) == UniformBitErrors(1e-4)
    assert UniformBitErrors(1e-4) != UniformBitErrors(2e-4)
    assert NoErrors() == NoErrors()
    assert NoErrors() != UniformBitErrors(0.0)
    assert (GilbertElliott(0.1, 0.2) ==
            GilbertElliott(0.1, 0.2, ber_good=0.0, ber_bad=0.1))


def test_unknown_model_rejected():
    with pytest.raises(ValueError, match="unknown bit-error model"):
        error_model_from_dict({"model": "rayleigh"})
