"""Bit-error models."""

import random

import pytest

from repro.phy.error import NoErrors, UniformBitErrors


def test_no_errors_never_corrupts():
    model = NoErrors()
    rng = random.Random(0)
    assert not any(model.corrupts(10_000, rng) for _ in range(100))


def test_zero_ber_never_corrupts():
    model = UniformBitErrors(0.0)
    rng = random.Random(0)
    assert not any(model.corrupts(10_000, rng) for _ in range(100))


def test_success_probability_formula():
    model = UniformBitErrors(1e-4)
    assert model.frame_success_probability(100) == pytest.approx(
        (1 - 1e-4) ** 800
    )
    assert model.frame_success_probability(0) == 1.0


def test_longer_frames_more_fragile():
    model = UniformBitErrors(1e-4)
    assert model.frame_success_probability(1000) < model.frame_success_probability(10)


def test_corruption_rate_statistically_close():
    model = UniformBitErrors(1e-3)
    rng = random.Random(42)
    n = 4000
    corrupted = sum(model.corrupts(100, rng) for _ in range(n))
    expected = 1 - model.frame_success_probability(100)
    assert corrupted / n == pytest.approx(expected, abs=0.03)


def test_ber_bounds():
    with pytest.raises(ValueError):
        UniformBitErrors(-0.1)
    with pytest.raises(ValueError):
        UniformBitErrors(1.0)
    with pytest.raises(ValueError):
        UniformBitErrors(0.5).frame_success_probability(-1)
