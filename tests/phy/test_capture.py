"""The optional capture effect (extension over the paper's model)."""

from dataclasses import dataclass

import pytest

from repro.phy.channel import DataChannel
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.params import DEFAULT_PHY
from repro.phy.propagation import LogDistanceModel, UnitDiskModel
from repro.sim.engine import Simulator
from repro.sim.units import US


@dataclass(frozen=True)
class Frame:
    size_bytes: int
    tag: str = ""


class Recorder:
    def __init__(self):
        self.received = []
        self.errors = []

    def on_frame_received(self, frame, sender):
        self.received.append((frame.tag, sender))

    def on_frame_error(self, sender):
        self.errors.append(sender)

    def on_tx_complete(self, frame, aborted):
        pass

    def on_rx_start(self, sender):
        pass


def make(coords, capture_db=None, model=None):
    sim = Simulator()
    svc = NeighborService(StaticPositions(coords),
                          model or LogDistanceModel(path_loss_exponent=3.0))
    channel = DataChannel(sim, svc, DEFAULT_PHY, capture_threshold_db=capture_db)
    recorders = []
    for node in range(len(coords)):
        rec = Recorder()
        channel.attach(node, rec)
        recorders.append(rec)
    return sim, channel, recorders


# Node 1 sits 5 m from node 0 and 12 m from node 2: with exponent 3 both
# signals are decodable at node 1 but the near one is ~11 dB stronger.
NEAR_FAR = [(0.0, 0.0), (5.0, 0.0), (17.0, 0.0)]


def test_strong_frame_survives_weak_interferer():
    sim, ch, recs = make(NEAR_FAR, capture_db=10.0)
    ch.transmit(0, Frame(100, "strong"))
    sim.at(20 * US, lambda: ch.transmit(2, Frame(100, "weak")))
    sim.run()
    assert ("strong", 0) in recs[1].received
    # The weak frame still dies at node 1.
    assert 2 in recs[1].errors


def test_late_strong_frame_captures_the_receiver():
    sim, ch, recs = make(NEAR_FAR, capture_db=10.0)
    ch.transmit(2, Frame(100, "weak"))
    sim.at(20 * US, lambda: ch.transmit(0, Frame(100, "strong")))
    sim.run()
    assert ("strong", 0) in recs[1].received
    assert 2 in recs[1].errors


def test_comparable_powers_still_collide():
    # Two transmitters equidistant from the middle: neither clears 10 dB.
    coords = [(0.0, 0.0), (12.0, 0.0), (24.0, 0.0)]
    sim, ch, recs = make(coords, capture_db=10.0)
    ch.transmit(0, Frame(100, "a"))
    sim.at(20 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []
    assert sorted(recs[1].errors) == [0, 2]


def test_capture_disabled_everything_collides():
    sim, ch, recs = make(NEAR_FAR, capture_db=None)
    ch.transmit(0, Frame(100, "strong"))
    sim.at(20 * US, lambda: ch.transmit(2, Frame(100, "weak")))
    sim.run()
    assert recs[1].received == []


def test_capture_with_unit_disk_falls_back_to_collision():
    # Unit-disk links carry no power: capture silently degrades to the
    # paper's model rather than misbehaving.
    sim, ch, recs = make([(0.0, 0.0), (30.0, 0.0), (60.0, 0.0)],
                         capture_db=10.0, model=UnitDiskModel(75.0))
    ch.transmit(0, Frame(100, "a"))
    sim.at(20 * US, lambda: ch.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []


def test_signal_power_bookkeeping_drains():
    sim, ch, recs = make(NEAR_FAR, capture_db=10.0)
    ch.transmit(0, Frame(50, "x"))
    sim.run()
    sim.run(until=sim.now + 10 * US)
    assert all(not signals for signals in ch._signal_powers.values())
