"""The SINR interference subsystem: tracker, reception, wiring, channel.

The headline behavioral test is the hidden-interference scenario: an
interferer *below* the receiver's carrier-sense threshold (so the
threshold model does not even build a link to it) still injects enough
energy to push a decodable frame under the SINR threshold. The classic
overlap model delivers; SINR drops -- the loss busy tones exist to
prevent, and one the paper's fixed-range model cannot express.
"""

import math
import random
from dataclasses import dataclass

import pytest

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.channel import DataChannel
from repro.phy.neighbors import LinkPowerSpec, NeighborService, StaticPositions
from repro.phy.params import DEFAULT_PHY
from repro.phy.propagation import (
    IN_RANGE_POWER_DBM,
    LogDistanceModel,
    LogDistanceShadowing,
    UnitDiskModel,
)
from repro.phy.sinr import (
    InterferenceTracker,
    RayleighFading,
    RicianFading,
    SinrConfig,
    SinrReceptionModel,
    dbm_to_mw,
    mw_to_dbm,
    node_radio_offsets,
    wire_sinr,
)
from repro.sim.engine import SimulationError, Simulator
from repro.sim.units import US
from repro.world.testbed import MacTestbed


@dataclass(frozen=True)
class Frame:
    size_bytes: int
    tag: str = ""


class Recorder:
    def __init__(self):
        self.received = []
        self.errors = []
        self.rx_starts = []

    def on_frame_received(self, frame, sender):
        self.received.append((frame, sender))

    def on_frame_error(self, sender):
        self.errors.append(sender)

    def on_tx_complete(self, frame, aborted):
        pass

    def on_rx_start(self, sender):
        self.rx_starts.append(sender)


# ----------------------------------------------------------------------
# Unit conversions and the reception model
# ----------------------------------------------------------------------
def test_dbm_mw_round_trip():
    assert dbm_to_mw(0.0) == 1.0
    assert dbm_to_mw(-30.0) == pytest.approx(1e-3)
    assert mw_to_dbm(dbm_to_mw(-67.3)) == pytest.approx(-67.3)
    assert mw_to_dbm(0.0) == -math.inf


def test_reception_model_sinr_math():
    model = SinrReceptionModel(10.0, -90.0)
    # No interference: signal over the noise floor alone.
    assert model.sinr_db(dbm_to_mw(-60.0), 0.0) == pytest.approx(30.0)
    # Equal-power interferer drowns the noise term.
    assert model.sinr_db(1.0, 1.0) == pytest.approx(0.0, abs=1e-6)
    assert model.sinr_db(0.0, 0.0) == -math.inf
    assert model.decodes(10.0) and not model.decodes(9.999)


def test_reception_model_none_threshold_always_decodes():
    model = SinrReceptionModel(None, -90.0)
    assert model.decodes(-math.inf)


# ----------------------------------------------------------------------
# InterferenceTracker
# ----------------------------------------------------------------------
def test_tracker_accumulates_and_removes():
    tracker = InterferenceTracker()
    assert tracker.total_mw(5) == 0.0
    assert tracker.add(5, "a", 1.0) == 1.0
    assert tracker.add(5, "b", 0.25) == 1.25
    assert tracker.concurrent(5) == 2
    assert tracker.high_water == 2
    tracker.remove(5, "a")
    # Removal re-sums the remaining signals: the total is exactly the
    # survivor's power, not 1.25 - 1.0 in floating point.
    assert tracker.total_mw(5) == 0.25
    tracker.remove(5, "b")
    assert tracker.total_mw(5) == 0.0
    assert tracker.concurrent(5) == 0
    assert tracker.high_water == 2  # high-water mark survives drain


def test_tracker_remove_unknown_is_noop():
    tracker = InterferenceTracker()
    tracker.remove(3, "ghost")
    tracker.add(3, "a", 1.0)
    tracker.remove(3, "ghost")
    assert tracker.total_mw(3) == 1.0


def test_tracker_nodes_are_independent():
    tracker = InterferenceTracker()
    tracker.add(1, "a", 1.0)
    tracker.add(2, "a", 2.0)
    assert tracker.total_mw(1) == 1.0
    assert tracker.total_mw(2) == 2.0
    assert tracker.high_water == 1  # per-node concurrency, not global


# ----------------------------------------------------------------------
# SinrConfig validation and serialization
# ----------------------------------------------------------------------
def test_config_round_trip():
    config = SinrConfig(propagation="logdistance", sinr_threshold_db=12,
                        tx_power_jitter_db=2.0, fading="rician")
    clone = SinrConfig.from_dict(config.to_dict())
    assert clone == config


def test_config_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown"):
        SinrConfig.from_dict({"propagation": "shadowing", "bogus": 1})


def test_config_int_floats_hash_identically():
    assert SinrConfig(noise_floor_dbm=-90) == SinrConfig(noise_floor_dbm=-90.0)
    assert SinrConfig(sinr_threshold_db=10) == SinrConfig(sinr_threshold_db=10.0)


def test_config_validation_errors():
    with pytest.raises(ValueError, match="propagation"):
        SinrConfig(propagation="freespace")
    with pytest.raises(ValueError, match="fading"):
        SinrConfig(fading="nakagami")
    with pytest.raises(ValueError, match="jitter"):
        SinrConfig(tx_power_jitter_db=-1.0)
    with pytest.raises(ValueError, match="cutoff"):
        SinrConfig(interference_cutoff_dbm=-70.0)  # above cs threshold
    with pytest.raises(ValueError, match="unitdisk"):
        SinrConfig(propagation="unitdisk", tx_power_jitter_db=3.0)


def test_config_effective_cutoff_defaults_to_noise_floor():
    assert SinrConfig().effective_cutoff_dbm() == -90.0
    assert SinrConfig(
        interference_cutoff_dbm=-85.0).effective_cutoff_dbm() == -85.0


# ----------------------------------------------------------------------
# Fading samplers
# ----------------------------------------------------------------------
def test_fading_deterministic_in_seed():
    a = [RayleighFading().gain(random.Random(7)) for _ in range(3)]
    b = [RayleighFading().gain(random.Random(7)) for _ in range(3)]
    assert a == b
    rng_a, rng_b = random.Random(9), random.Random(9)
    rician = RicianFading(6.0)
    assert [rician.gain(rng_a) for _ in range(5)] == [
        rician.gain(rng_b) for _ in range(5)]


def test_fading_gains_average_to_unity():
    rng = random.Random(123)
    rayleigh = RayleighFading()
    mean = sum(rayleigh.gain(rng) for _ in range(20_000)) / 20_000
    assert mean == pytest.approx(1.0, rel=0.05)
    rician = RicianFading(6.0)
    mean = sum(rician.gain(rng) for _ in range(20_000)) / 20_000
    assert mean == pytest.approx(1.0, rel=0.05)


# ----------------------------------------------------------------------
# Heterogeneous radios and wiring
# ----------------------------------------------------------------------
def test_homogeneous_radios_skip_offset_arrays():
    assert node_radio_offsets(SinrConfig(), 10, 1) == (None, None)


def test_radio_offsets_deterministic_and_bounded():
    config = SinrConfig(tx_power_jitter_db=3.0, antenna_gain_db=2.0,
                        antenna_gain_jitter_db=1.0)
    tx_a, rx_a = node_radio_offsets(config, 20, seed=5)
    tx_b, rx_b = node_radio_offsets(config, 20, seed=5)
    assert tx_a.tolist() == tx_b.tolist()
    assert rx_a.tolist() == rx_b.tolist()
    tx_c, _ = node_radio_offsets(config, 20, seed=6)
    assert tx_a.tolist() != tx_c.tolist()
    assert all(abs(g - 2.0) <= 1.0 for g in rx_a)
    assert all(abs(t) <= 3.0 + 3.0 for t in tx_a)


def test_wire_sinr_unitdisk_keeps_classic_links():
    wiring = wire_sinr(SinrConfig(propagation="unitdisk"), DEFAULT_PHY, 5, 1)
    assert isinstance(wiring.model, UnitDiskModel)
    assert wiring.power_spec is None
    assert wiring.tone_threshold_dbm is None


def test_wire_sinr_shadowing_builds_power_spec():
    config = SinrConfig()
    wiring = wire_sinr(config, DEFAULT_PHY, 5, 1)
    assert isinstance(wiring.model, LogDistanceShadowing)
    spec = wiring.power_spec
    assert spec.keep_threshold_dbm == config.noise_floor_dbm
    assert wiring.tone_threshold_dbm == config.cs_threshold_dbm
    # The spatial prune radius covers the interference cutoff with full
    # shadow headroom, so it exceeds the model's own sense radius.
    assert spec.prune_range > wiring.model.max_range()


def test_wire_sinr_heterogeneous_offsets_extend_prune_range():
    base = wire_sinr(SinrConfig(propagation="logdistance"), DEFAULT_PHY, 8, 1)
    hetero = wire_sinr(
        SinrConfig(propagation="logdistance", antenna_gain_db=3.0),
        DEFAULT_PHY, 8, 1)
    assert hetero.power_spec.tx_offset_dbm is not None
    assert hetero.power_spec.prune_range > base.power_spec.prune_range


def test_wire_sinr_shadow_seed_differs_per_run_seed():
    a = wire_sinr(SinrConfig(), DEFAULT_PHY, 5, seed=1)
    b = wire_sinr(SinrConfig(), DEFAULT_PHY, 5, seed=2)
    assert a.model.seed != b.model.seed
    assert a.model.seed == wire_sinr(SinrConfig(), DEFAULT_PHY, 5, 1).model.seed


def test_build_state_constructs_fading_sampler():
    config = SinrConfig(fading="rician", rician_k_db=9.0)
    state = wire_sinr(config, DEFAULT_PHY, 5, 1).build_state(random.Random(3))
    assert isinstance(state.fading, RicianFading)
    assert state.fading.k_db == 9.0
    state = wire_sinr(SinrConfig(), DEFAULT_PHY, 5, 1).build_state()
    assert state.fading is None


# ----------------------------------------------------------------------
# Mutual exclusion and testbed wiring errors
# ----------------------------------------------------------------------
def test_capture_and_sinr_mutually_exclusive():
    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (50, 0)]), UnitDiskModel(75.0))
    state = wire_sinr(SinrConfig(propagation="unitdisk"), DEFAULT_PHY, 2,
                      1).build_state()
    with pytest.raises(SimulationError, match="mutually"):
        DataChannel(sim, svc, DEFAULT_PHY, capture_threshold_db=10.0,
                    sinr=state)


def test_testbed_rejects_propagation_plus_sinr():
    with pytest.raises(ValueError, match="propagation model or a SinrConfig"):
        MacTestbed([(0, 0), (50, 0)], propagation=UnitDiskModel(75.0),
                   sinr=SinrConfig())


# ----------------------------------------------------------------------
# Power-mode link tables feeding the channel
# ----------------------------------------------------------------------
def _power_world(coords, config, seed=1):
    """Channel + recorders over power-mode link tables for ``config``."""
    sim = Simulator()
    wiring = wire_sinr(config, DEFAULT_PHY, len(coords), seed)
    svc = NeighborService(StaticPositions(coords), wiring.model,
                          power_spec=wiring.power_spec)
    state = wiring.build_state(random.Random(seed))
    channel = DataChannel(sim, svc, DEFAULT_PHY, sinr=state)
    recorders = []
    for node in range(len(coords)):
        rec = Recorder()
        channel.attach(node, rec)
        recorders.append(rec)
    return sim, channel, recorders, state


# LogDistanceModel defaults: P(d) = 15 - 40 - 28*log10(d) dBm, so the
# rx edge (-65 dBm) sits at ~26.8 m and the cs edge (-75 dBm) at ~61 m.
HIDDEN = dict(
    receiver=(0.0, 0.0),
    sender=(20.0, 0.0),       # -61.4 dBm at the receiver: decodable
    interferer=(-62.0, 0.0),  # -75.2 dBm: below carrier sense, hidden
)


def test_hidden_interferer_drops_frame_threshold_model_delivers():
    """The acceptance scenario: an interferer the threshold model cannot
    even see (below cs at the receiver => no link at all) lands the SINR
    decision below threshold. Classic delivers; SINR drops."""
    coords = [HIDDEN["receiver"], HIDDEN["sender"], HIDDEN["interferer"]]
    config = SinrConfig(propagation="logdistance", sinr_threshold_db=15.0)

    # Threshold model: the interferer has no link to the receiver, so
    # the overlap rule sees a clean solo reception.
    sim = Simulator()
    svc = NeighborService(StaticPositions(coords), LogDistanceModel())
    channel = DataChannel(sim, svc, DEFAULT_PHY)
    recs = [Recorder() for _ in coords]
    for node, rec in enumerate(recs):
        channel.attach(node, rec)
    frame = Frame(100, "data")
    channel.transmit(1, frame)
    sim.at(10 * US, lambda: channel.transmit(2, Frame(100, "noise")))
    sim.run()
    assert recs[0].received == [(frame, 1)]

    # SINR: signal -61.4 dBm against interference -75.2 dBm + noise
    # -90 dBm is ~13.7 dB, under the 15 dB threshold.
    sim, channel, recs, state = _power_world(coords, config)
    frame = Frame(100, "data")
    channel.transmit(1, frame)
    sim.at(10 * US, lambda: channel.transmit(2, Frame(100, "noise")))
    sim.run()
    assert recs[0].received == []
    assert recs[0].errors == [1]
    assert state.counters.dropped == 1
    stats = state.stats()
    assert stats["sinr_dropped"] == 1
    assert stats["concurrent_high_water"] == 2


def test_interference_only_link_never_raises_carrier_sense():
    coords = [HIDDEN["receiver"], HIDDEN["sender"], HIDDEN["interferer"]]
    config = SinrConfig(propagation="logdistance", sinr_threshold_db=15.0)
    sim, channel, recs, state = _power_world(coords, config)
    # Only the hidden interferer transmits: its energy reaches the
    # receiver's tracker but must never flip carrier sense.
    channel.transmit(2, Frame(100))
    seen = {}
    sim.at(50 * US, lambda: seen.update(
        busy=channel.busy(0),
        itf=state.tracker.total_mw(0) > 0.0,
    ))
    sim.run()
    assert seen == {"busy": False, "itf": True}
    assert recs[0].rx_starts == []  # not decodable either
    assert not channel.busy(0)      # and the teardown balanced


def test_solo_delivery_records_sinr_stats():
    coords = [HIDDEN["receiver"], HIDDEN["sender"]]
    config = SinrConfig(propagation="logdistance")
    sim, channel, recs, state = _power_world(coords, config)
    channel.transmit(1, Frame(100))
    sim.run()
    assert len(recs[0].received) == 1
    stats = state.stats()
    assert stats["sinr_dropped"] == 0
    assert stats["delivered"] == 1
    # Signal -61.4 dBm over the -90 dBm noise floor alone: ~28.6 dB.
    assert stats["mean_sinr_db"] == pytest.approx(28.6, abs=0.2)
    assert stats["min_sinr_db"] == stats["mean_sinr_db"]


def test_unitdisk_sinr_reproduces_overlap_collision():
    """Equal constant powers through the real tracker: any overlap is
    ~0 dB SINR, no overlap is ~90 dB -- the paper's rule, derived."""
    config = SinrConfig(propagation="unitdisk")
    wiring = wire_sinr(config, DEFAULT_PHY, 3, 1)
    sim = Simulator()
    svc = NeighborService(StaticPositions([(0, 0), (60, 0), (120, 0)]),
                          wiring.model)
    state = wiring.build_state()
    channel = DataChannel(sim, svc, DEFAULT_PHY, sinr=state)
    recs = [Recorder() for _ in range(3)]
    for node, rec in enumerate(recs):
        channel.attach(node, rec)
    channel.transmit(0, Frame(100, "a"))
    sim.at(10 * US, lambda: channel.transmit(2, Frame(100, "b")))
    sim.run()
    assert recs[1].received == []
    assert len(recs[1].errors) == 2
    assert state.counters.dropped == 2


def test_fading_runs_are_seed_deterministic():
    config = SinrConfig(propagation="logdistance", fading="rayleigh")

    def run(seed):
        sim, channel, recs, state = _power_world(
            [HIDDEN["receiver"], HIDDEN["sender"]], config, seed=seed)
        for start in range(6):
            sim.at(start * 700 * US,
                   lambda: channel.transmit(1, Frame(100)))
        sim.run()
        return len(recs[0].received), state.stats()["mean_sinr_db"]

    assert run(4) == run(4)


# ----------------------------------------------------------------------
# Busy tones in the power domain
# ----------------------------------------------------------------------
def test_tone_reaches_sensed_links_only():
    coords = [HIDDEN["receiver"], HIDDEN["sender"], HIDDEN["interferer"]]
    config = SinrConfig(propagation="logdistance")
    wiring = wire_sinr(config, DEFAULT_PHY, len(coords), 1)
    sim = Simulator()
    svc = NeighborService(StaticPositions(coords), wiring.model,
                          power_spec=wiring.power_spec)
    tone = BusyToneChannel(sim, svc, ToneType.RBT,
                           detect_time=DEFAULT_PHY.cca_time,
                           power_threshold_dbm=wiring.tone_threshold_dbm)
    # Node 0 emits: node 1 (-61.4 dBm) clears the -75 dBm tone
    # threshold, node 2 (-75.2 dBm) is interference-only and must not.
    tone.turn_on(0)
    seen = {}
    sim.at(20 * US, lambda: seen.update(near=tone.present(1),
                                        far=tone.present(2)))
    sim.at(30 * US, lambda: tone.turn_off(0))
    sim.run()
    assert seen == {"near": True, "far": False}


def test_link_table_tone_map_filters_by_threshold():
    coords = [HIDDEN["receiver"], HIDDEN["sender"], HIDDEN["interferer"]]
    wiring = wire_sinr(SinrConfig(propagation="logdistance"), DEFAULT_PHY,
                       len(coords), 1)
    svc = NeighborService(StaticPositions(coords), wiring.model,
                          power_spec=wiring.power_spec)
    table = svc.table_from(0, 0)
    assert set(table.tone_map(-75.0)) == {1}
    assert set(table.tone_map(-80.0)) == {1, 2}
    assert table.delay_map == table.tone_map(-75.0)


def test_unit_disk_base_power_constant_in_range():
    model = UnitDiskModel(75.0)
    assert model.received_power_dbm(50.0) == IN_RANGE_POWER_DBM
    assert model.received_power_dbm(80.0) == -math.inf
    batch = model.received_power_dbm_batch(
        __import__("numpy").array([50.0, 80.0]))
    assert batch.tolist() == [IN_RANGE_POWER_DBM, -math.inf]
