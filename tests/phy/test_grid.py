"""The uniform spatial hash behind grid-indexed neighbor computation."""

import random

import numpy as np
import pytest

from repro.phy.grid import SpatialGrid, expand_ranges


def brute_pairs(pos, cutoff):
    """Reference: all (i, j) pairs within ``cutoff`` (including i == j)."""
    n = len(pos)
    out = set()
    for i in range(n):
        for j in range(n):
            if np.hypot(*(pos[i] - pos[j])) <= cutoff:
                out.add((i, j))
    return out


def test_expand_ranges():
    starts = np.array([0, 5, 9])
    ends = np.array([2, 8, 10])
    assert expand_ranges(starts, ends).tolist() == [0, 1, 5, 6, 7, 9]


def test_pairs_cover_all_in_range_pairs():
    rng = random.Random(11)
    pos = np.array([(rng.uniform(0, 400), rng.uniform(0, 250))
                    for _ in range(80)])
    grid = SpatialGrid(pos, 75.0)
    senders, cands = grid.pairs()
    got = set(zip(senders.tolist(), cands.tolist()))
    # No duplicates: each candidate lives in exactly one cell, and the 9
    # probed keys of a sender are distinct.
    assert len(senders) == len(got)
    # Superset of the true in-range pairs (the caller re-checks distance).
    assert got >= brute_pairs(pos, 75.0)


def test_candidates_of_matches_pairs():
    rng = random.Random(3)
    pos = np.array([(rng.uniform(-100, 300), rng.uniform(-50, 200))
                    for _ in range(40)])
    grid = SpatialGrid(pos, 60.0)
    senders, cands = grid.pairs()
    for node in range(len(pos)):
        expected = np.sort(cands[senders == node])
        assert grid.candidates_of(node).tolist() == expected.tolist()


def test_boundary_straddling_nodes_are_candidates():
    # Nodes just either side of a cell boundary, closer than the cutoff.
    pos = np.array([(74.999, 0.0), (75.001, 0.0), (149.0, 74.9)])
    grid = SpatialGrid(pos, 75.0)
    senders, cands = grid.pairs()
    got = set(zip(senders.tolist(), cands.tolist()))
    assert got >= brute_pairs(pos, 75.0)


def test_negative_coordinates():
    pos = np.array([(-10.0, -20.0), (-80.0, -20.0), (60.0, 40.0)])
    grid = SpatialGrid(pos, 75.0)
    senders, cands = grid.pairs()
    got = set(zip(senders.tolist(), cands.tolist()))
    assert got >= brute_pairs(pos, 75.0)


def test_single_node_and_empty():
    grid = SpatialGrid(np.array([[5.0, 5.0]]), 75.0)
    senders, cands = grid.pairs()
    assert senders.tolist() == [0] and cands.tolist() == [0]
    assert grid.candidates_of(0).tolist() == [0]
    empty = SpatialGrid(np.empty((0, 2)), 75.0)
    senders, cands = empty.pairs()
    assert len(senders) == 0 and len(cands) == 0


def test_occupied_cell_count():
    pos = np.array([(0.0, 0.0), (1.0, 1.0), (200.0, 0.0), (0.0, 200.0)])
    assert SpatialGrid(pos, 75.0).n_cells == 3


def test_validation():
    with pytest.raises(ValueError):
        SpatialGrid(np.zeros((2, 3)), 75.0)
    with pytest.raises(ValueError):
        SpatialGrid(np.zeros((2, 2)), 0.0)
    with pytest.raises(ValueError):
        SpatialGrid(np.zeros((2, 2)), 75.0).candidates_of(5)
