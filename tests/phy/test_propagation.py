"""Propagation models."""

import pytest

from repro.phy.propagation import LogDistanceModel, UnitDiskModel


class TestUnitDisk:
    def test_in_range_boundary_inclusive(self):
        model = UnitDiskModel(75.0)
        assert model.in_range(75.0)
        assert not model.in_range(75.0001)
        assert model.in_range(0.0)

    def test_sense_range_defaults_to_rx(self):
        model = UnitDiskModel(75.0)
        assert model.carrier_sensed(75.0)
        assert not model.carrier_sensed(76.0)
        assert model.max_range() == 75.0

    def test_extended_sense_range(self):
        model = UnitDiskModel(75.0, sense_range=150.0)
        assert model.carrier_sensed(120.0)
        assert not model.in_range(120.0)
        assert model.max_range() == 150.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UnitDiskModel(0)
        with pytest.raises(ValueError):
            UnitDiskModel(75.0, sense_range=50.0)


class TestLogDistance:
    def test_power_decreases_with_distance(self):
        model = LogDistanceModel()
        assert model.received_power_dbm(10) > model.received_power_dbm(100)

    def test_power_clamped_below_reference_distance(self):
        model = LogDistanceModel(reference_distance=1.0)
        assert model.received_power_dbm(0.1) == model.received_power_dbm(1.0)

    def test_rx_and_cs_ranges_ordered(self):
        model = LogDistanceModel()
        rx = model._range_for_threshold(model.rx_threshold_dbm)
        cs = model._range_for_threshold(model.cs_threshold_dbm)
        assert cs > rx > 0
        assert model.in_range(rx * 0.99)
        assert not model.in_range(rx * 1.01)
        assert model.carrier_sensed(rx * 1.01)
        assert not model.carrier_sensed(cs * 1.01)
        assert model.max_range() == pytest.approx(cs)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            LogDistanceModel(rx_threshold_dbm=-80, cs_threshold_dbm=-70)

    def test_positive_exponent_required(self):
        with pytest.raises(ValueError):
            LogDistanceModel(path_loss_exponent=0)
