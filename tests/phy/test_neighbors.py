"""Neighborhood evaluation and propagation delays."""

import numpy as np
import pytest

from repro.phy.neighbors import (
    NeighborService,
    StaticPositions,
    propagation_delay_ns,
)
from repro.phy.propagation import UnitDiskModel


def service(coords, rng=75.0, **kw):
    return NeighborService(StaticPositions(coords), UnitDiskModel(rng), **kw)


def test_propagation_delay_speed_of_light():
    # 75 m / c ~ 250 ns
    assert propagation_delay_ns(75.0) == pytest.approx(250, abs=1)
    assert propagation_delay_ns(300.0) <= 1001  # paper's tau bound
    assert propagation_delay_ns(0.0) == 1  # floor


def test_links_exclude_sender_and_out_of_range():
    svc = service([(0, 0), (50, 0), (200, 0)])
    links = svc.links_from(0, 0)
    assert [l.node for l in links] == [1]
    assert links[0].in_rx_range


def test_links_symmetric_for_unit_disk():
    svc = service([(0, 0), (74, 0), (149, 0)])
    assert [l.node for l in svc.links_from(1, 0)] == [0, 2]
    assert [l.node for l in svc.links_from(0, 0)] == [1]


def test_static_results_cached():
    svc = service([(0, 0), (50, 0)])
    assert svc.links_from(0, 0) is svc.links_from(0, 10**9)


def test_distance_and_in_rx_range():
    svc = service([(0, 0), (30, 40)])
    assert svc.distance(0, 1, 0) == pytest.approx(50.0)
    assert svc.in_rx_range(0, 1, 0)


def test_invalidate_clears_cache():
    svc = service([(0, 0), (50, 0)])
    first = svc.links_from(0, 0)
    svc.invalidate()
    second = svc.links_from(0, 0)
    assert first is not second and [l.node for l in first] == [l.node for l in second]


def test_unknown_sender_rejected():
    svc = service([(0, 0)])
    with pytest.raises(ValueError):
        svc.links_from(5, 0)


class _MovingProvider:
    """Node 1 teleports out of range at t = 1s."""

    def positions(self, time_ns):
        second = np.array([50.0, 0.0]) if time_ns < 10**9 else np.array([500.0, 0.0])
        return np.vstack([[0.0, 0.0], second])

    def is_static(self):
        return False


def test_mobile_cache_window_refreshes():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=1000)
    assert [l.node for l in svc.links_from(0, 0)] == [1]
    assert [l.node for l in svc.links_from(0, 2 * 10**9)] == []


def test_mobile_cache_window_zero_is_exact():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=0)
    assert [l.node for l in svc.links_from(0, 10**9 - 1)] == [1]
    assert [l.node for l in svc.links_from(0, 10**9)] == []


def test_static_positions_validation():
    with pytest.raises(ValueError):
        StaticPositions([[1, 2, 3]])


def test_mobile_cache_follows_position_bucket_epoch():
    """Regression: cached mobile links must match the *current* bucket.

    The cache used to stay valid for a full window from whenever the
    entry was computed, so an entry primed late in bucket k kept serving
    bucket-k links well into bucket k+1 -- while ``positions_at`` had
    already moved on. Links and positions would disagree for the same
    query time. Now the cache is keyed on the position-bucket epoch, so
    a query just past the boundary recomputes.
    """
    import random

    from repro.mobility.base import MobilityProvider
    from repro.mobility.waypoint import RandomWaypointModel

    window = 10_000_000  # 10 ms buckets
    models = [
        RandomWaypointModel(x, y, 200.0, 150.0, 5.0, 30.0, 0.0,
                            random.Random(17 + i))
        for i, (x, y) in enumerate([(0.0, 0.0), (70.0, 10.0),
                                    (140.0, 0.0), (40.0, 100.0)])
    ]
    provider = MobilityProvider(models)
    svc = NeighborService(provider, UnitDiskModel(75.0), cache_window=window)
    exact = NeighborService(provider, UnitDiskModel(75.0), cache_window=0)
    for k in range(40):
        # Prime the cache late in bucket k, then query early in bucket
        # k+1: the second answer must reflect the new bucket's
        # positions, not the cached previous-bucket links.
        for t in (k * window + int(0.95 * window),
                  (k + 1) * window + int(0.05 * window)):
            bucket = t - t % window
            for sender in range(len(models)):
                assert svc.links_from(sender, t) == exact.links_from(sender, bucket)


def test_mobile_cache_hit_within_bucket_returns_same_object():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0),
                          cache_window=1000)
    assert svc.links_from(0, 100) is svc.links_from(0, 900)


class _CountingProvider:
    """Static layout, mobile-flagged: counts positions() materializations."""

    def __init__(self, coords):
        self._coords = np.asarray(coords, dtype=float)
        self.calls = 0

    def positions(self, time_ns):
        self.calls += 1
        return self._coords

    def is_static(self):
        return False


def test_two_slot_position_cache_survives_interleaved_times():
    """Regression: interleaved queries for two buckets must not thrash.

    The position cache used to hold a single snapshot, so an oracle or
    trace lookback alternating between "now" and an earlier time evicted
    the live snapshot on every call -- one provider materialization per
    query. Two slots make the alternating pattern all hits.
    """
    provider = _CountingProvider([(0.0, 0.0), (50.0, 0.0)])
    svc = NeighborService(provider, UnitDiskModel(75.0), cache_window=1000)
    now, lookback = 5_000, 1_500  # distinct buckets
    for _ in range(10):
        svc.positions_at(now)
        svc.positions_at(lookback)
    assert provider.calls == 2
    assert svc.counters.pos_cache_misses == 2
    assert svc.counters.pos_cache_hits == 18
    # A third bucket evicts the least-recently-used slot, not the MRU.
    svc.positions_at(9_500)
    assert provider.calls == 3
    svc.positions_at(9_500)
    svc.positions_at(lookback)
    assert provider.calls == 3


def test_counters_track_table_cache():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0),
                          cache_window=1000)
    svc.links_from(0, 100)
    svc.links_from(0, 900)
    svc.links_from(0, 1100)
    counters = svc.counters.as_dict()
    assert counters["table_misses"] == 2
    assert counters["table_hits"] == 1
    assert counters["links_built"] == 2  # one link per computed table


def test_indexing_mode_validation():
    with pytest.raises(ValueError):
        service([(0, 0)], indexing="octree")
    svc = service([(0, 0)])
    with pytest.raises(ValueError):
        svc.force_indexing("octree")


def test_grid_and_brute_static_tables_identical():
    import random

    rng = random.Random(5)
    coords = [(rng.uniform(0, 500), rng.uniform(0, 300)) for _ in range(70)]
    grid = service(coords, indexing="grid")
    brute = service(coords, indexing="brute")
    for sender in range(len(coords)):
        assert grid.links_from(sender, 0) == brute.links_from(sender, 0)
    assert grid.counters.table_rebuilds == 1
    assert grid.counters.grid_cells > 0
    assert grid.counters.grid_pairs > 0


def test_force_indexing_switches_path_same_results():
    import random

    rng = random.Random(9)
    coords = [(rng.uniform(0, 300), rng.uniform(0, 200)) for _ in range(30)]
    svc = service(coords, indexing="auto")  # below threshold: brute
    before = [svc.links_from(s, 0) for s in range(len(coords))]
    assert svc.counters.table_rebuilds == 0
    svc.force_indexing("grid")
    after = [svc.links_from(s, 0) for s in range(len(coords))]
    assert svc.counters.table_rebuilds == 1
    assert before == after


def test_auto_threshold_picks_grid_at_scale():
    coords = [(float(i % 10) * 30.0, float(i // 10) * 30.0) for i in range(64)]
    svc = service(coords)  # auto, n == GRID_THRESHOLD
    svc.links_from(0, 0)
    assert svc.counters.table_rebuilds == 1


def test_table_from_shares_delay_map():
    svc = service([(0, 0), (50, 0), (70, 0)])
    table = svc.table_from(0, 0)
    assert table.delay_map is svc.table_from(0, 0).delay_map
    assert table.delay_map == {l.node: l.delay_ns for l in table.links}


def test_link_is_tuple_compatible():
    from repro.phy.neighbors import Link

    positional = Link(3, 250, True, -40.0)
    keyword = Link(node=3, delay_ns=250, in_rx_range=True, power_dbm=-40.0)
    assert positional == keyword
    assert Link(3, 250, True).power_dbm is None


class _DriftProvider:
    """n nodes on a line, rigidly drifting 1 m per 1 us position bucket."""

    def __init__(self, n):
        self.n = n

    def positions(self, time_ns):
        xs = np.arange(self.n, dtype=np.float64) * 10.0 + float(time_ns // 1000)
        return np.column_stack([xs, np.zeros(self.n)])

    def is_static(self):
        return False


def test_grid_mobile_density_adaptive():
    n = 80
    svc = NeighborService(_DriftProvider(n), UnitDiskModel(75.0),
                          cache_window=1000, indexing="grid")
    # Sparse traffic: one sender per bucket never triggers a batched
    # rebuild; tables are served lazily against the bucket's grid.
    for bucket in range(3):
        svc.links_from(0, bucket * 1000)
    assert svc.counters.table_rebuilds == 0
    assert svc.counters.table_misses == 3
    # Dense traffic: sweeping every sender upgrades mid-bucket (at 25%
    # distinct senders) to one batched rebuild...
    for s in range(n):
        svc.links_from(s, 3000)
    assert svc.counters.table_rebuilds == 1
    # ...and the next bucket, predicted dense, rebuilds eagerly up front.
    for s in range(n):
        svc.links_from(s, 4000)
    assert svc.counters.table_rebuilds == 2
    # Both flavors (lazy pruned scalar, batched) agree with brute.
    brute = NeighborService(_DriftProvider(n), UnitDiskModel(75.0),
                            cache_window=1000, indexing="brute")
    for t in (0, 3000, 4000):
        for s in range(n):
            assert svc.links_from(s, t) == brute.links_from(s, t)
