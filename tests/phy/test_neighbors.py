"""Neighborhood evaluation and propagation delays."""

import numpy as np
import pytest

from repro.phy.neighbors import (
    NeighborService,
    StaticPositions,
    propagation_delay_ns,
)
from repro.phy.propagation import UnitDiskModel


def service(coords, rng=75.0, **kw):
    return NeighborService(StaticPositions(coords), UnitDiskModel(rng), **kw)


def test_propagation_delay_speed_of_light():
    # 75 m / c ~ 250 ns
    assert propagation_delay_ns(75.0) == pytest.approx(250, abs=1)
    assert propagation_delay_ns(300.0) <= 1001  # paper's tau bound
    assert propagation_delay_ns(0.0) == 1  # floor


def test_links_exclude_sender_and_out_of_range():
    svc = service([(0, 0), (50, 0), (200, 0)])
    links = svc.links_from(0, 0)
    assert [l.node for l in links] == [1]
    assert links[0].in_rx_range


def test_links_symmetric_for_unit_disk():
    svc = service([(0, 0), (74, 0), (149, 0)])
    assert [l.node for l in svc.links_from(1, 0)] == [0, 2]
    assert [l.node for l in svc.links_from(0, 0)] == [1]


def test_static_results_cached():
    svc = service([(0, 0), (50, 0)])
    assert svc.links_from(0, 0) is svc.links_from(0, 10**9)


def test_distance_and_in_rx_range():
    svc = service([(0, 0), (30, 40)])
    assert svc.distance(0, 1, 0) == pytest.approx(50.0)
    assert svc.in_rx_range(0, 1, 0)


def test_invalidate_clears_cache():
    svc = service([(0, 0), (50, 0)])
    first = svc.links_from(0, 0)
    svc.invalidate()
    second = svc.links_from(0, 0)
    assert first is not second and [l.node for l in first] == [l.node for l in second]


def test_unknown_sender_rejected():
    svc = service([(0, 0)])
    with pytest.raises(ValueError):
        svc.links_from(5, 0)


class _MovingProvider:
    """Node 1 teleports out of range at t = 1s."""

    def positions(self, time_ns):
        second = np.array([50.0, 0.0]) if time_ns < 10**9 else np.array([500.0, 0.0])
        return np.vstack([[0.0, 0.0], second])

    def is_static(self):
        return False


def test_mobile_cache_window_refreshes():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=1000)
    assert [l.node for l in svc.links_from(0, 0)] == [1]
    assert [l.node for l in svc.links_from(0, 2 * 10**9)] == []


def test_mobile_cache_window_zero_is_exact():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=0)
    assert [l.node for l in svc.links_from(0, 10**9 - 1)] == [1]
    assert [l.node for l in svc.links_from(0, 10**9)] == []


def test_static_positions_validation():
    with pytest.raises(ValueError):
        StaticPositions([[1, 2, 3]])


def test_mobile_cache_follows_position_bucket_epoch():
    """Regression: cached mobile links must match the *current* bucket.

    The cache used to stay valid for a full window from whenever the
    entry was computed, so an entry primed late in bucket k kept serving
    bucket-k links well into bucket k+1 -- while ``positions_at`` had
    already moved on. Links and positions would disagree for the same
    query time. Now the cache is keyed on the position-bucket epoch, so
    a query just past the boundary recomputes.
    """
    import random

    from repro.mobility.base import MobilityProvider
    from repro.mobility.waypoint import RandomWaypointModel

    window = 10_000_000  # 10 ms buckets
    models = [
        RandomWaypointModel(x, y, 200.0, 150.0, 5.0, 30.0, 0.0,
                            random.Random(17 + i))
        for i, (x, y) in enumerate([(0.0, 0.0), (70.0, 10.0),
                                    (140.0, 0.0), (40.0, 100.0)])
    ]
    provider = MobilityProvider(models)
    svc = NeighborService(provider, UnitDiskModel(75.0), cache_window=window)
    exact = NeighborService(provider, UnitDiskModel(75.0), cache_window=0)
    for k in range(40):
        # Prime the cache late in bucket k, then query early in bucket
        # k+1: the second answer must reflect the new bucket's
        # positions, not the cached previous-bucket links.
        for t in (k * window + int(0.95 * window),
                  (k + 1) * window + int(0.05 * window)):
            bucket = t - t % window
            for sender in range(len(models)):
                assert svc.links_from(sender, t) == exact.links_from(sender, bucket)


def test_mobile_cache_hit_within_bucket_returns_same_object():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0),
                          cache_window=1000)
    assert svc.links_from(0, 100) is svc.links_from(0, 900)
