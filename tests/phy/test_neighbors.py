"""Neighborhood evaluation and propagation delays."""

import numpy as np
import pytest

from repro.phy.neighbors import (
    NeighborService,
    StaticPositions,
    propagation_delay_ns,
)
from repro.phy.propagation import UnitDiskModel


def service(coords, rng=75.0, **kw):
    return NeighborService(StaticPositions(coords), UnitDiskModel(rng), **kw)


def test_propagation_delay_speed_of_light():
    # 75 m / c ~ 250 ns
    assert propagation_delay_ns(75.0) == pytest.approx(250, abs=1)
    assert propagation_delay_ns(300.0) <= 1001  # paper's tau bound
    assert propagation_delay_ns(0.0) == 1  # floor


def test_links_exclude_sender_and_out_of_range():
    svc = service([(0, 0), (50, 0), (200, 0)])
    links = svc.links_from(0, 0)
    assert [l.node for l in links] == [1]
    assert links[0].in_rx_range


def test_links_symmetric_for_unit_disk():
    svc = service([(0, 0), (74, 0), (149, 0)])
    assert [l.node for l in svc.links_from(1, 0)] == [0, 2]
    assert [l.node for l in svc.links_from(0, 0)] == [1]


def test_static_results_cached():
    svc = service([(0, 0), (50, 0)])
    assert svc.links_from(0, 0) is svc.links_from(0, 10**9)


def test_distance_and_in_rx_range():
    svc = service([(0, 0), (30, 40)])
    assert svc.distance(0, 1, 0) == pytest.approx(50.0)
    assert svc.in_rx_range(0, 1, 0)


def test_invalidate_clears_cache():
    svc = service([(0, 0), (50, 0)])
    first = svc.links_from(0, 0)
    svc.invalidate()
    second = svc.links_from(0, 0)
    assert first is not second and [l.node for l in first] == [l.node for l in second]


def test_unknown_sender_rejected():
    svc = service([(0, 0)])
    with pytest.raises(ValueError):
        svc.links_from(5, 0)


class _MovingProvider:
    """Node 1 teleports out of range at t = 1s."""

    def positions(self, time_ns):
        second = np.array([50.0, 0.0]) if time_ns < 10**9 else np.array([500.0, 0.0])
        return np.vstack([[0.0, 0.0], second])

    def is_static(self):
        return False


def test_mobile_cache_window_refreshes():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=1000)
    assert [l.node for l in svc.links_from(0, 0)] == [1]
    assert [l.node for l in svc.links_from(0, 2 * 10**9)] == []


def test_mobile_cache_window_zero_is_exact():
    svc = NeighborService(_MovingProvider(), UnitDiskModel(75.0), cache_window=0)
    assert [l.node for l in svc.links_from(0, 10**9 - 1)] == [1]
    assert [l.node for l in svc.links_from(0, 10**9)] == []


def test_static_positions_validation():
    with pytest.raises(ValueError):
        StaticPositions([[1, 2, 3]])
