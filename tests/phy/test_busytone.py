"""Busy-tone channels: presence, lambda-detection, window queries."""

import pytest

from repro.phy.busytone import BusyToneChannel, ToneType
from repro.phy.neighbors import NeighborService, StaticPositions
from repro.phy.propagation import UnitDiskModel
from repro.sim.engine import Simulator
from repro.sim.units import US

LAMBDA = 15 * US


def make_tone(coords):
    sim = Simulator()
    svc = NeighborService(StaticPositions(coords), UnitDiskModel(75.0))
    tone = BusyToneChannel(sim, svc, ToneType.RBT, detect_time=LAMBDA)
    return sim, tone


def test_presence_appears_after_propagation():
    sim, tone = make_tone([(0, 0), (50, 0)])  # delay 167 ns
    tone.turn_on(0)
    seen = {}
    sim.at(100, lambda: seen.update(early=tone.present(1)))
    sim.at(200, lambda: seen.update(later=tone.present(1)))
    sim.at(500, lambda: tone.turn_off(0))
    sim.at(500 + 100, lambda: seen.update(lingering=tone.present(1)))
    sim.at(500 + 200, lambda: seen.update(gone=tone.present(1)))
    sim.run()
    assert seen == {"early": False, "later": True, "lingering": True, "gone": False}


def test_self_emission_not_sensed():
    sim, tone = make_tone([(0, 0), (50, 0)])
    tone.turn_on(0)
    seen = {}
    sim.at(1000, lambda: seen.update(self_=tone.present(0), other=tone.present(1)))
    sim.run(until=1000)
    assert seen == {"self_": False, "other": True}


def test_out_of_range_never_present():
    sim, tone = make_tone([(0, 0), (200, 0)])
    tone.turn_on(0)
    sim.run(until=10 * US)
    assert not tone.present(1)


def test_presence_or_of_multiple_emitters():
    sim, tone = make_tone([(0, 0), (50, 0), (0, 50)])
    tone.turn_on(0)
    sim.at(5 * US, lambda: tone.turn_on(2))
    sim.at(10 * US, lambda: tone.turn_off(0))
    seen = {}
    sim.at(12 * US, lambda: seen.update(mid=tone.present(1)))
    sim.at(20 * US, lambda: tone.turn_off(2))
    sim.at(25 * US, lambda: seen.update(end=tone.present(1)))
    sim.run()
    assert seen == {"mid": True, "end": False}


def test_double_on_off_rejected():
    sim, tone = make_tone([(0, 0), (50, 0)])
    tone.turn_on(0)
    with pytest.raises(RuntimeError):
        tone.turn_on(0)
    tone.turn_off(0)
    with pytest.raises(RuntimeError):
        tone.turn_off(0)


def test_pulse_turns_off_automatically():
    sim, tone = make_tone([(0, 0), (50, 0)])
    tone.pulse(0, 17 * US)
    assert tone.is_emitting(0)
    sim.run()
    assert not tone.is_emitting(0)


class TestLongestPresence:
    def test_full_window_coverage(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        tone.turn_on(0)
        sim.at(100 * US, lambda: tone.turn_off(0))
        sim.run(until=120 * US)
        # Window fully inside the presence interval.
        assert tone.longest_presence(1, 10 * US, 27 * US) == 17 * US

    def test_partial_overlap_below_lambda(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        sim.at(10 * US, lambda: tone.pulse(0, 5 * US))  # 5 us pulse
        sim.run(until=50 * US)
        overlap = tone.longest_presence(1, 0, 30 * US)
        assert overlap == 5 * US
        assert overlap < LAMBDA

    def test_window_clipping(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        tone.turn_on(0)  # presence from 167ns onward
        sim.at(100 * US, lambda: tone.turn_off(0))
        sim.run(until=200 * US)
        # Query a window that the tone only partially covers at its start.
        assert tone.longest_presence(1, 95 * US, 112 * US) == 5 * US + 167

    def test_merging_contiguous_emitters(self):
        sim, tone = make_tone([(0, 0), (50, 0), (0, 50)])
        # Two 10 us pulses that overlap slightly (the second starts 500 ns
        # before the first ends, absorbing the differing link delays) merge
        # into one >= lambda stretch at the common listener.
        sim.at(0, lambda: tone.pulse(0, 10 * US))
        sim.at(9_500, lambda: tone.pulse(2, 10 * US))
        sim.run(until=50 * US)
        assert tone.longest_presence(1, 0, 30 * US) >= 19 * US

    def test_disjoint_pulses_not_merged(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        sim.at(0, lambda: tone.pulse(0, 8 * US))
        sim.at(20 * US, lambda: tone.pulse(0, 8 * US))
        sim.run(until=60 * US)
        assert tone.longest_presence(1, 0, 40 * US) == 8 * US

    def test_future_query_rejected(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        with pytest.raises(ValueError):
            tone.longest_presence(1, 0, 10)

    def test_no_presence_returns_zero(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        sim.run(until=10 * US)
        assert tone.longest_presence(1, 0, 10 * US) == 0


class TestDetectionWatch:
    def test_detection_fires_after_lambda(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(sim.now))
        tone.turn_on(0)
        sim.run(until=100 * US)
        assert hits == [LAMBDA + 167]

    def test_short_pulse_not_detected(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(sim.now))
        tone.pulse(0, 10 * US)  # < lambda
        sim.run(until=100 * US)
        assert hits == []

    def test_watch_armed_mid_emission_still_fires(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.turn_on(0)
        sim.at(5 * US, lambda: tone.watch_detection(1, lambda t: hits.append(sim.now)))
        sim.run(until=100 * US)
        assert hits == [LAMBDA + 167]

    def test_watch_armed_after_detectable_fires_immediately(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.turn_on(0)
        sim.at(40 * US, lambda: tone.watch_detection(1, lambda t: hits.append(sim.now)))
        sim.run(until=100 * US)
        assert hits == [40 * US]

    def test_unwatch_cancels(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(sim.now))
        tone.turn_on(0)
        sim.at(5 * US, lambda: tone.unwatch_detection(1))
        sim.run(until=100 * US)
        assert hits == []

    def test_watch_fires_once_then_disarms(self):
        sim, tone = make_tone([(0, 0), (50, 0), (0, 50)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(sim.now))
        tone.turn_on(0)
        sim.at(30 * US, lambda: tone.turn_on(2))
        sim.run(until=100 * US)
        assert len(hits) == 1

    def test_double_watch_rejected(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        tone.watch_detection(1, lambda t: None)
        with pytest.raises(RuntimeError):
            tone.watch_detection(1, lambda t: None)

    def test_out_of_range_watcher_never_fires(self):
        sim, tone = make_tone([(0, 0), (200, 0)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(1))
        tone.turn_on(0)
        sim.run(until=100 * US)
        assert hits == []


class TestWatcherHandleHygiene:
    def test_fired_detection_handles_pruned_from_watcher(self):
        # A long-armed watcher sees many short (sub-lambda) pulses, none
        # of which detect; the fired check handles must not accumulate.
        sim, tone = make_tone([(0, 0), (50, 0)])
        tone.watch_detection(1, lambda t: None)
        for i in range(10):
            start = i * 100 * US
            sim.at(start, lambda: tone.turn_on(0))
            sim.at(start + 5 * US, lambda: tone.turn_off(0))
        sim.run()
        assert 1 in tone._watchers  # never detected, still armed
        handles = tone._watchers[1][1]
        assert all(h.pending for h in handles)
        assert len(handles) == 0

    def test_detection_still_fires_after_many_short_pulses(self):
        sim, tone = make_tone([(0, 0), (50, 0)])
        hits = []
        tone.watch_detection(1, lambda t: hits.append(sim.now))
        for i in range(5):
            start = i * 100 * US
            sim.at(start, lambda: tone.turn_on(0))
            sim.at(start + 5 * US, lambda: tone.turn_off(0))
        sim.at(1000 * US, lambda: tone.turn_on(0))  # long emission: detects
        sim.run(until=1100 * US)
        assert len(hits) == 1
