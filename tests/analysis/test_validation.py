"""Paper-claim validation bands."""

import pytest

from repro.analysis.validation import CLAIMS, all_pass, validate
from repro.experiments.runner import aggregate
from repro.metrics.summary import RunSummary


def _summary(protocol, **kw):
    fields = dict(
        protocol=protocol, n_nodes=40, n_generated=100, total_deliveries=3900,
        delivery_ratio=0.99, avg_delay_s=0.05, max_delay_s=0.4,
        avg_drop_ratio=0.001, avg_retx_ratio=0.3, avg_txoh_ratio=0.22,
        mrts_len_avg=25.0, mrts_len_p99=57.0, mrts_len_max=60.0,
        abort_avg=0.0002, abort_p99=0.001, abort_max=0.01,
        n_forwarders=10, total_drops=0, total_retransmissions=30,
    )
    fields.update(kw)
    return RunSummary(**fields)


def good_sweep():
    """A sweep matching every paper claim."""
    results = []
    for scenario in ("stationary", "speed1", "speed2"):
        mobile = scenario != "stationary"
        for rate in (10, 60):
            rmac = _summary(
                "rmac",
                delivery_ratio=0.7 if mobile else 0.99,
                avg_retx_ratio=1.0 if mobile else 0.3,
                avg_txoh_ratio=0.6 if mobile else 0.22,
                avg_delay_s=0.3,
            )
            bmmm = _summary(
                "bmmm",
                delivery_ratio=0.5 if mobile else 0.95,
                avg_txoh_ratio=1.0,
                avg_delay_s=0.8,
                mrts_len_avg=None, mrts_len_p99=None, mrts_len_max=None,
                abort_avg=None, abort_p99=None, abort_max=None,
            )
            results.append(aggregate("rmac", scenario, rate, [rmac]))
            results.append(aggregate("bmmm", scenario, rate, [bmmm]))
    return results


def test_all_claims_pass_on_conforming_sweep():
    rows = validate(good_sweep())
    assert len(rows) == len(CLAIMS)
    assert all(r["verdict"] == "PASS" for r in rows)
    assert all_pass(rows)


def test_static_delivery_regression_detected():
    results = good_sweep()
    # Break the stationary delivery claim.
    broken = [
        aggregate("rmac", r.scenario, r.rate_pps,
                  [_summary("rmac", delivery_ratio=0.5)])
        if r.protocol == "rmac" and r.scenario == "stationary" else r
        for r in results
    ]
    rows = validate(broken)
    verdicts = {r["claim"]: r["verdict"] for r in rows}
    assert verdicts["deliv-static"] == "FAIL"
    assert not all_pass(rows)


def test_overhead_regression_detected():
    results = good_sweep()
    broken = [
        aggregate("rmac", r.scenario, r.rate_pps,
                  [_summary("rmac", avg_txoh_ratio=0.9)])
        if r.protocol == "rmac" and r.scenario == "stationary" else r
        for r in results
    ]
    verdicts = {r["claim"]: r["verdict"] for r in validate(broken)}
    assert verdicts["txoh-static"] == "FAIL"


def test_missing_points_yield_na():
    rows = validate([])  # empty sweep: nothing to check
    assert all(r["verdict"] == "n/a" for r in rows)
    assert all_pass(rows)  # n/a is not failure


def test_real_small_sweep_passes_claims():
    """End to end: a real (tiny) sweep satisfies the claim bands."""
    from repro.experiments.runner import run_sweep
    from repro.experiments.scenarios import scaled_scenario

    def make(protocol, scenario, rate, seed):
        return scaled_scenario(protocol, scenario, rate, seed,
                               n_packets=40, n_nodes=16)

    results = run_sweep(["rmac", "bmmm"], ["stationary", "speed2"], [10],
                        [1, 2], make)
    rows = validate(results)
    failing = [r for r in rows if r["verdict"] == "FAIL"]
    # Tiny sweeps are noisy; the structural claims must still hold.
    critical = {"deliv-static", "delay-ordering", "txoh-static", "mrts-short"}
    assert not [r for r in failing if r["claim"] in critical], failing
