"""Closed-form per-hop capacity model."""

import pytest

from repro.analysis.capacity import (
    bmmm_transaction_time,
    max_forwarding_rate,
    rmac_transaction_time,
    saturation_rate,
)
from repro.sim.units import US


def test_rmac_transaction_composition():
    # 2 receivers, 500 B: MRTS(24B=192us) + 17 + DATA(522B=2184us) + 2*17.
    assert rmac_transaction_time(2, 500) == (192 + 17 + 2184 + 34) * US


def test_bmmm_transaction_is_much_longer():
    n, payload = 4, 500
    assert bmmm_transaction_time(n, payload) > rmac_transaction_time(n, payload)
    # The gap grows linearly in n (632 us vs 41 us per receiver).
    gap_small = bmmm_transaction_time(1, payload) - rmac_transaction_time(1, payload)
    gap_large = bmmm_transaction_time(10, payload) - rmac_transaction_time(10, payload)
    assert gap_large > gap_small


def test_max_forwarding_rate_inverse():
    assert max_forwarding_rate(1_000_000) == pytest.approx(1000.0)
    with pytest.raises(ValueError):
        max_forwarding_rate(0)


def test_saturation_rate_divides_by_contending_forwarders():
    one = saturation_rate(3, 500, forwarders_sharing_channel=1)
    four = saturation_rate(3, 500, forwarders_sharing_channel=4)
    assert one == pytest.approx(4 * four)


def test_saturation_rate_paper_workload_above_120pps():
    """The paper pushes 120 pkt/s through ~3.5-child forwarders; RMAC's
    floor capacity must clear it comfortably (BMMM's much less so)."""
    rmac = saturation_rate(4, 500, forwarders_sharing_channel=3, protocol="rmac")
    bmmm = saturation_rate(4, 500, forwarders_sharing_channel=3, protocol="bmmm")
    assert rmac > 120
    assert rmac > bmmm


def test_validation():
    with pytest.raises(ValueError):
        saturation_rate(1, 100, 0)
    with pytest.raises(ValueError):
        saturation_rate(1, 100, 1, protocol="nope")
