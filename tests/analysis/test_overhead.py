"""The paper's closed-form arithmetic, verified number by number."""

import pytest

from repro.analysis.overhead import (
    abt_detection_time,
    bmmm_control_overhead,
    bmw_transaction_time,
    max_receivers_per_mrts,
    mrts_bytes,
    rmac_control_overhead,
    rmac_min_exchange_time,
)
from repro.phy.params import DEFAULT_PHY, PhyParams
from repro.sim.units import US


def test_mrts_bytes_formula():
    assert mrts_bytes(1) == 18
    assert mrts_bytes(20) == 132
    with pytest.raises(ValueError):
        mrts_bytes(0)


def test_bmmm_control_overhead_is_632n_us():
    """Section 2: '2n pairs of control frames in BMMM ... totally cost
    632n us'."""
    for n in (1, 3, 10):
        assert bmmm_control_overhead(n) == 632 * n * US


def test_abt_window_is_17_us():
    assert abt_detection_time() == 17 * US


def test_min_exchange_is_352_us():
    """Section 3.4: 'the transmission of the shortest MRTS and the
    shortest data frame in RMAC altogether takes 352 us'."""
    assert rmac_min_exchange_time() == 352 * US


def test_receiver_limit_is_twenty():
    """'the maximum number of receivers should be no more than
    352/17 = 20'."""
    assert max_receivers_per_mrts() == 20


def test_rmac_cheaper_than_bmmm_for_all_group_sizes():
    for n in range(1, 21):
        assert rmac_control_overhead(n) < bmmm_control_overhead(n)


def test_rmac_overhead_growth_is_sublinear_vs_bmmm():
    # RMAC adds 6 bytes (24 us) + one 17 us window per receiver = 41 us;
    # BMMM adds 632 us per receiver.
    delta_rmac = rmac_control_overhead(5) - rmac_control_overhead(4)
    delta_bmmm = bmmm_control_overhead(5) - bmmm_control_overhead(4)
    assert delta_rmac == 41 * US
    assert delta_bmmm == 632 * US


def test_bmw_transaction_linear_in_receivers():
    one = bmw_transaction_time(1, 500)
    ten = bmw_transaction_time(10, 500)
    assert ten == 10 * one
    with pytest.raises(ValueError):
        bmw_transaction_time(0, 500)


def test_overheads_rescale_with_phy():
    slow = PhyParams(bitrate=1_000_000)
    assert bmmm_control_overhead(1, slow) > bmmm_control_overhead(1, DEFAULT_PHY)
    # A faster PHY shrinks the exchange and thus the receiver cap.
    assert max_receivers_per_mrts(slow) != 0
