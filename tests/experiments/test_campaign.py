"""Resumable experiment campaigns over the on-disk result store."""

import json
import os

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.campaign import Campaign
from repro.experiments.scenarios import scaled_scenario
from repro.experiments.store import ResultStore, config_hash
from repro.metrics.summary import RunSummary


def tiny_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10)


def test_campaign_runs_and_persists(tmp_path):
    path = tmp_path / "campaign"
    campaign = Campaign(str(path))
    results = campaign.run(["rmac"], ["stationary"], [10], [1, 2], tiny_config)
    assert len(results) == 1
    assert results[0].n_seeds == 2
    assert (path / "results.jsonl").exists()
    lines = (path / "results.jsonl").read_text().splitlines()
    assert len(lines) == 2
    record = json.loads(lines[0])
    assert record["status"] == "ok" and record["protocol"] == "rmac"
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["seeds"] == [1, 2]


def test_campaign_resume_skips_completed(tmp_path, monkeypatch):
    path = str(tmp_path / "campaign")
    Campaign(path).run(["rmac"], ["stationary"], [10], [1], tiny_config)

    # Resume with one more seed: only the new point actually simulates.
    executed = []
    original = runner_module.run_point

    def spying_run_point(config):
        executed.append(config.seed)
        return original(config)

    monkeypatch.setattr(runner_module, "run_point", spying_run_point)
    Campaign(path).run(["rmac"], ["stationary"], [10], [1, 2], tiny_config)
    assert executed == [2]


def test_campaign_invalidates_on_config_change(tmp_path):
    path = str(tmp_path / "campaign")
    Campaign(path).run(["rmac"], ["stationary"], [10], [1], tiny_config)

    def changed_config(protocol, scenario, rate, seed):
        return tiny_config(protocol, scenario, rate, seed).variant(n_packets=6)

    results = Campaign(path).run(["rmac"], ["stationary"], [10], [1],
                                 changed_config)
    assert results[0].per_seed[0].n_generated == 6


def test_campaign_progress_callback(tmp_path):
    seen = []
    path = str(tmp_path / "campaign")
    Campaign(path).run(
        ["rmac"], ["stationary"], [10], [1], tiny_config,
        progress=lambda done, total, key, error: seen.append((done, total, error)),
    )
    assert seen == [(1, 1, None)]
    # On resume the cached point still reports progress.
    seen.clear()
    Campaign(path).run(
        ["rmac"], ["stationary"], [10], [1], tiny_config,
        progress=lambda done, total, key, error: seen.append((done, total, key)),
    )
    assert seen == [(1, 1, "rmac|stationary|10|1 (cached)")]


def test_aggregate_partial_store(tmp_path):
    path = str(tmp_path / "campaign")
    campaign = Campaign(path)
    campaign.run(["rmac"], ["stationary"], [10], [1], tiny_config)
    # Ask for more seeds than stored: aggregates what exists.
    results = campaign.aggregate(["rmac"], ["stationary"], [10], [1, 2, 3])
    assert results[0].n_seeds == 1
    # Nothing stored for another protocol.
    assert campaign.aggregate(["bmmm"], ["stationary"], [10], [1]) == []


# ---------------------------------------------------------------------------
# Resume semantics: a campaign killed mid-run and re-invoked must
# re-simulate only the unfinished points and produce bit-identical
# aggregates to an uninterrupted run.
# ---------------------------------------------------------------------------

MATRIX = (["rmac"], ["stationary", "speed1"], [10], [1, 2])


def test_killed_campaign_resumes_bit_identical(tmp_path, monkeypatch):
    # Uninterrupted reference run (its own store).
    reference = Campaign(str(tmp_path / "reference")).run(
        *MATRIX, tiny_config)

    # Crash (as a kill would) after 2 completed points.
    original = runner_module.run_point
    calls = []

    def crashing_run_point(config):
        if len(calls) == 2:
            raise KeyboardInterrupt("simulated kill")
        calls.append(config.seed)
        return original(config)

    path = str(tmp_path / "interrupted")
    monkeypatch.setattr(runner_module, "run_point", crashing_run_point)
    with pytest.raises(KeyboardInterrupt):
        Campaign(path).run(*MATRIX, tiny_config)
    monkeypatch.setattr(runner_module, "run_point", original)

    # The two completed points are durably on disk.
    assert len(Campaign(path)) == 2

    # Re-invoke: only the two unfinished points simulate.
    executed = []

    def spying_run_point(config):
        executed.append((config.mobile, config.seed))
        return original(config)

    monkeypatch.setattr(runner_module, "run_point", spying_run_point)
    resumed = Campaign(path).run(*MATRIX, tiny_config)
    assert len(executed) == 2
    assert (False, 1) not in executed and (False, 2) not in executed

    # Bit-identical per-seed summaries and aggregates: the JSON round
    # trip through the store must not perturb a single float.
    assert resumed == reference


def test_failed_points_rerun_on_resume(tmp_path, monkeypatch):
    path = str(tmp_path / "campaign")
    original = runner_module.run_point

    def failing_run_point(config):
        if config.seed == 2:
            raise RuntimeError("boom")
        return original(config)

    monkeypatch.setattr(runner_module, "run_point", failing_run_point)
    results = Campaign(path).run(["rmac"], ["stationary"], [10], [1, 2],
                                 tiny_config)
    assert results[0].n_seeds == 1 and len(results[0].failures) == 1
    store = ResultStore(path)
    assert len(store) == 1 and len(store.failures()) == 1

    # The failure is recorded but never treated as complete: resume
    # re-runs exactly the failed seed.
    executed = []

    def spying_run_point(config):
        executed.append(config.seed)
        return original(config)

    monkeypatch.setattr(runner_module, "run_point", spying_run_point)
    results = Campaign(path).run(["rmac"], ["stationary"], [10], [1, 2],
                                 tiny_config)
    assert executed == [2]
    assert results[0].n_seeds == 2 and not results[0].failures


def test_campaign_status_reports_missing_and_stale(tmp_path):
    path = str(tmp_path / "campaign")
    campaign = Campaign(path)
    campaign.run(["rmac"], ["stationary"], [10], [1, 2], tiny_config)
    campaign.store.write_manifest({
        "protocols": ["rmac"], "scenarios": ["stationary", "speed1"],
        "rates": [10.0], "seeds": [1, 2],
    })
    status = campaign.status(tiny_config)
    assert status["total"] == 4 and status["done"] == 2
    assert status["missing"] == 2 and status["stale"] == 0

    def changed(protocol, scenario, rate, seed):
        return tiny_config(protocol, scenario, rate, seed).variant(n_packets=8)

    status = campaign.status(changed)
    assert status["done"] == 0 and status["stale"] == 2


def test_legacy_json_store_migrates_in_place(tmp_path):
    """A v0 single-file checkpoint upgrades without re-simulating."""
    # Simulate the v0 format: {key: {fingerprint, summary}} in one file.
    path = str(tmp_path / "campaign.json")
    config = tiny_config("rmac", "stationary", 10, 1)
    summary = runner_module.run_point(config)
    from dataclasses import asdict
    from repro.experiments.store import canonical_config_json
    with open(path, "w") as fh:
        json.dump({
            "rmac|stationary|10|1": {
                "fingerprint": canonical_config_json(config),
                "summary": asdict(summary),
            },
        }, fh)

    executed = []
    original = runner_module.run_point

    def spying_run_point(cfg):
        executed.append(cfg.seed)
        return original(cfg)

    runner_module.run_point = spying_run_point
    try:
        results = Campaign(path).run(["rmac"], ["stationary"], [10], [1],
                                     tiny_config)
    finally:
        runner_module.run_point = original
    assert executed == []          # migrated point survived the resume
    assert results[0].per_seed == (summary,)
    assert os.path.isdir(path)     # the file became a directory
    assert os.path.exists(os.path.join(path, "legacy.json"))
