"""Resumable experiment campaigns."""

import json

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.scenarios import scaled_scenario


def tiny_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10)


def test_campaign_runs_and_persists(tmp_path):
    path = tmp_path / "campaign.json"
    campaign = Campaign(str(path))
    results = campaign.run(["rmac"], ["stationary"], [10], [1, 2], tiny_config)
    assert len(results) == 1
    assert results[0].n_seeds == 2
    assert path.exists()
    stored = json.loads(path.read_text())
    assert len(stored) == 2


def test_campaign_resume_skips_completed(tmp_path):
    path = tmp_path / "campaign.json"
    calls = []

    def counting_config(protocol, scenario, rate, seed):
        calls.append(seed)
        return tiny_config(protocol, scenario, rate, seed)

    Campaign(str(path)).run(["rmac"], ["stationary"], [10], [1], counting_config)
    first_calls = len(calls)

    # Resume with one more seed: only the new point actually simulates.
    import repro.experiments.campaign as campaign_module

    executed = []
    original = campaign_module.run_point

    def spying_run_point(config):
        executed.append(config.seed)
        return original(config)

    campaign_module.run_point = spying_run_point
    try:
        Campaign(str(path)).run(["rmac"], ["stationary"], [10], [1, 2],
                                counting_config)
    finally:
        campaign_module.run_point = original
    assert executed == [2]


def test_campaign_invalidates_on_config_change(tmp_path):
    path = tmp_path / "campaign.json"
    Campaign(str(path)).run(["rmac"], ["stationary"], [10], [1], tiny_config)

    def changed_config(protocol, scenario, rate, seed):
        return tiny_config(protocol, scenario, rate, seed).variant(n_packets=6)

    results = Campaign(str(path)).run(["rmac"], ["stationary"], [10], [1],
                                      changed_config)
    assert results[0].per_seed[0].n_generated == 6


def test_campaign_progress_callback(tmp_path):
    seen = []
    Campaign(str(tmp_path / "c.json")).run(
        ["rmac"], ["stationary"], [10], [1], tiny_config,
        progress=lambda key, done, total: seen.append((done, total)),
    )
    assert seen == [(1, 1)]


def test_aggregate_partial_store(tmp_path):
    path = tmp_path / "campaign.json"
    campaign = Campaign(str(path))
    campaign.run(["rmac"], ["stationary"], [10], [1], tiny_config)
    # Ask for more seeds than stored: aggregates what exists.
    results = campaign.aggregate(["rmac"], ["stationary"], [10], [1, 2, 3])
    assert results[0].n_seeds == 1
    # Nothing stored for another protocol.
    assert campaign.aggregate(["bmmm"], ["stationary"], [10], [1]) == []
