"""The multiprocessing sweep path (workers > 1)."""

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scenarios import scaled_scenario


def tiny_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10)


def test_parallel_matches_serial():
    args = (["rmac"], ["stationary"], [10], [1, 2], tiny_config)
    serial = run_sweep(*args, workers=0)
    parallel = run_sweep(*args, workers=2)
    assert len(serial) == len(parallel) == 1
    assert serial[0].values == parallel[0].values


def test_parallel_full_matrix_shape():
    results = run_sweep(["rmac", "bmmm"], ["stationary"], [10, 20], [1],
                        tiny_config, workers=2)
    assert len(results) == 4
    assert {(r.protocol, r.rate_pps) for r in results} == {
        ("rmac", 10), ("rmac", 20), ("bmmm", 10), ("bmmm", 20)}
