"""Sweep failure paths: one crashing seed must not void the matrix.

The crash is injected through the config: an unknown protocol name makes
``run_point`` raise inside ``build_network`` -- picklable, so the same
injection works in worker processes.
"""

import pytest

from repro.experiments.runner import (
    PointFailure,
    aggregate,
    run_sweep,
    sweep_failures,
)
from repro.experiments.scenarios import scaled_scenario


def _make_config(crash_seeds=(), crash_protocol="boom"):
    def make(protocol, scenario, rate, seed):
        config = scaled_scenario(protocol, scenario, rate, seed,
                                 n_packets=3, n_nodes=8)
        if seed in crash_seeds:
            return config.variant(protocol=crash_protocol)
        return config

    return make


def test_crashing_seed_names_point_and_keeps_survivors():
    results = run_sweep(["rmac"], ["stationary"], [10], [1, 2, 3],
                        _make_config(crash_seeds={2}))
    assert len(results) == 1
    point = results[0]
    assert point.n_seeds == 2                      # survivors aggregated
    assert point["delivery_ratio"] is not None
    assert len(point.failures) == 1
    failure = point.failures[0]
    assert (failure.protocol, failure.scenario, failure.rate_pps, failure.seed) \
        == ("rmac", "stationary", 10, 2)
    assert "ValueError" in failure.error
    assert "build_network" in failure.traceback or "boom" in failure.traceback


def test_parallel_crashing_seed_keeps_survivors():
    results = run_sweep(["rmac"], ["stationary"], [10], [1, 2, 3],
                        _make_config(crash_seeds={2}), workers=2)
    point = results[0]
    assert point.n_seeds == 2
    assert [f.seed for f in point.failures] == [2]


def test_parallel_and_serial_survivor_values_match():
    args = (["rmac"], ["stationary"], [10], [1, 2, 3],
            _make_config(crash_seeds={2}))
    serial = run_sweep(*args, workers=0)
    parallel = run_sweep(*args, workers=2)
    assert serial[0].values == parallel[0].values
    assert serial[0].n_seeds == parallel[0].n_seeds == 2


def test_all_seeds_crashing_yields_empty_point():
    results = run_sweep(["rmac"], ["stationary"], [10], [1, 2],
                        _make_config(crash_seeds={1, 2}))
    point = results[0]
    assert point.n_seeds == 0
    assert point["delivery_ratio"] is None
    assert len(point.failures) == 2


def test_strict_mode_reraises():
    with pytest.raises(ValueError):
        run_sweep(["rmac"], ["stationary"], [10], [1, 2],
                  _make_config(crash_seeds={2}), strict=True)


def test_retries_are_counted():
    results = run_sweep(["rmac"], ["stationary"], [10], [2],
                        _make_config(crash_seeds={2}), retries=2)
    failure = results[0].failures[0]
    assert failure.attempts == 3  # 1 initial + 2 retries


def test_progress_reports_every_job_with_errors_flagged():
    seen = []
    run_sweep(["rmac"], ["stationary"], [10], [1, 2],
              _make_config(crash_seeds={2}),
              progress=lambda done, total, key, error:
                  seen.append((done, total, key, error is not None)))
    assert len(seen) == 2
    assert [s[0] for s in seen] == [1, 2]
    assert all(s[1] == 2 for s in seen)
    failed = {s[2]: s[3] for s in seen}
    assert failed["rmac|stationary|10|2"] is True
    assert failed["rmac|stationary|10|1"] is False


def test_sweep_failures_collects_across_points():
    results = run_sweep(["rmac"], ["stationary"], [5, 10], [1, 2],
                        _make_config(crash_seeds={2}))
    failures = sweep_failures(results)
    assert [(f.rate_pps, f.seed) for f in failures] == [(5, 2), (10, 2)]
    assert all(isinstance(f, PointFailure) for f in failures)


def test_aggregate_defaults_to_no_failures():
    result = aggregate("rmac", "stationary", 10, [])
    assert result.failures == ()
    assert result.n_seeds == 0


def test_clean_sweep_has_no_failures():
    results = run_sweep(["rmac"], ["stationary"], [10], [1], _make_config())
    assert results[0].failures == ()
    assert sweep_failures(results) == []
