"""Scenario presets, the sweep runner, figure specs and reporting."""

import pytest

from repro.experiments.figures import FIGURES, figure_rows
from repro.experiments.report import format_table, rows_to_csv
from repro.experiments.runner import aggregate, run_point, run_sweep
from repro.experiments.scenarios import PAPER_RATES, SCENARIOS, paper_scenario, scaled_scenario
from repro.metrics.summary import RunSummary


def _summary(protocol="rmac", deliv=0.9, **kw):
    fields = dict(
        protocol=protocol, n_nodes=10, n_generated=10, total_deliveries=81,
        delivery_ratio=deliv, avg_delay_s=0.01, max_delay_s=0.1,
        avg_drop_ratio=0.0, avg_retx_ratio=0.2, avg_txoh_ratio=0.3,
        mrts_len_avg=24.0, mrts_len_p99=40.0, mrts_len_max=48.0,
        abort_avg=0.001, abort_p99=0.01, abort_max=0.02,
        n_forwarders=4, total_drops=0, total_retransmissions=5,
    )
    fields.update(kw)
    return RunSummary(**fields)


class TestScenarios:
    def test_paper_matrix_constants(self):
        assert PAPER_RATES == (5, 10, 20, 40, 60, 80, 100, 120)
        assert set(SCENARIOS) == {"stationary", "speed1", "speed2"}

    def test_paper_scenario_parameters(self):
        config = paper_scenario("rmac", "speed2", 40, seed=3)
        assert config.n_nodes == 75
        assert (config.width, config.height) == (500.0, 300.0)
        assert config.mobile and config.max_speed == 8.0 and config.pause_s == 5.0
        assert config.n_packets == 10_000
        assert config.payload_bytes == 500

    def test_stationary_scenario(self):
        config = paper_scenario("bmmm", "stationary", 5, seed=1)
        assert not config.mobile

    def test_scaled_scenario_shrinks_packets(self):
        config = scaled_scenario("rmac", "stationary", 10, seed=1,
                                 n_packets=50, n_nodes=30)
        assert config.n_packets == 50 and config.n_nodes == 30

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            paper_scenario("rmac", "warp", 5, seed=1)


class TestRunner:
    def test_run_point_executes(self):
        config = scaled_scenario("rmac", "stationary", 5, seed=2,
                                 n_packets=5, n_nodes=10)
        summary = run_point(config)
        assert summary.n_generated == 5

    def test_aggregate_averages_and_maxes(self):
        result = aggregate("rmac", "stationary", 10,
                           [_summary(deliv=0.8, mrts_len_max=40.0),
                            _summary(deliv=1.0, mrts_len_max=60.0)])
        assert result["delivery_ratio"] == pytest.approx(0.9)
        assert result["mrts_len_max"] == 60.0
        assert result.n_seeds == 2

    def test_aggregate_skips_missing_values(self):
        result = aggregate("rmac", "stationary", 10,
                           [_summary(abort_avg=None), _summary(abort_avg=0.5)])
        assert result["abort_avg"] == pytest.approx(0.5)

    def test_run_sweep_matrix_shape(self):
        def make(protocol, scenario, rate, seed):
            return scaled_scenario(protocol, scenario, rate, seed,
                                   n_packets=3, n_nodes=8)

        results = run_sweep(["rmac"], ["stationary"], [5, 10], [1, 2], make)
        assert len(results) == 2
        assert all(r.n_seeds == 2 for r in results)
        assert {r.rate_pps for r in results} == {5, 10}


class TestFigures:
    def test_all_paper_figures_present(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(7, 14)}

    def test_rmac_only_figures(self):
        assert FIGURES["fig12"].protocols == ("rmac",)
        assert FIGURES["fig13"].protocols == ("rmac",)
        assert FIGURES["fig7"].protocols == ("rmac", "bmmm")

    def test_figure_rows_pivot(self):
        results = [
            aggregate("rmac", "stationary", 5, [_summary("rmac", 1.0)]),
            aggregate("bmmm", "stationary", 5, [_summary("bmmm", 0.8)]),
        ]
        rows = figure_rows(FIGURES["fig7"], results)
        assert rows == [{
            "scenario": "stationary", "rate_pps": 5,
            "rmac:R_deliv": 1.0, "bmmm:R_deliv": 0.8,
        }]

    def test_single_protocol_rows_unprefixed(self):
        results = [aggregate("rmac", "speed1", 10, [_summary("rmac")])]
        rows = figure_rows(FIGURES["fig12"], results)
        assert set(rows[0]) == {"scenario", "rate_pps", "Average",
                                "Maximum", "99 Percentile"}


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": None}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "0.1235" in text and "-" in lines[-1]

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_csv_output(self):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": None}]
        csv = rows_to_csv(rows)
        assert csv.splitlines() == ["x,y", "1,2.5", "3,-"]

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""
