"""The campaign farm: shard merge semantics, crash recovery, status.

The acceptance bar (ISSUE 8 / ROADMAP "heavy traffic"): a farmed — even
killed-and-resumed — campaign must produce a merged store bit-identical
per point (``config_hash`` + ``RunSummary`` dict) to a single-process
``campaign run`` of the same spec.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.farm import (
    SHARDS_DIR,
    WORKERS_DIR,
    CampaignFarm,
    farm_status,
    make_status_server,
    render_farm_status,
    shard_index,
    shard_name,
)
from repro.experiments.runner import run_point
from repro.experiments.scenarios import scaled_scenario
from repro.experiments.store import ResultStore, config_hash, merge_stores
from repro.sim.telemetry import Telemetry


def tiny_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=4, n_nodes=10)


MATRIX = (["rmac"], ["stationary", "speed1"], [10], [1, 2])


def _records_by_key(store):
    return dict(store.records())


def assert_stores_bit_identical(farmed, reference):
    """Per point: same keys, same config_hash, same summary dict."""
    farmed_records = _records_by_key(farmed)
    reference_records = _records_by_key(reference)
    assert sorted(farmed_records) == sorted(reference_records)
    for key, expected in reference_records.items():
        record = farmed_records[key]
        assert record["config_hash"] == expected["config_hash"], key
        assert record["status"] == expected["status"] == "ok", key
        assert record["summary"] == expected["summary"], key


# ---------------------------------------------------------------------------
# merge_stores
# ---------------------------------------------------------------------------

def _seeded_store(path, seeds, scenario="stationary"):
    store = ResultStore(str(path))
    for seed in seeds:
        config = tiny_config("rmac", scenario, 10, seed)
        store.record_success("rmac", scenario, 10, seed,
                             config_hash(config), run_point(config))
    return store


def test_merge_disjoint_shards_and_idempotence(tmp_path):
    a = _seeded_store(tmp_path / "a", [1])
    b = _seeded_store(tmp_path / "b", [2])
    target = ResultStore(str(tmp_path / "merged"))
    counts = merge_stores(target, [a, b])
    assert counts == {"added": 2, "superseded": 0, "unchanged": 0}
    assert len(target) == 2

    # Merging again (or merging shards that replayed each other's
    # points) appends nothing: byte-identical records are deduplicated.
    counts = merge_stores(target, [a, b])
    assert counts == {"added": 0, "superseded": 0, "unchanged": 2}
    lines = open(target.path).read().splitlines()
    assert len(lines) == 2


def test_merge_overlap_last_record_wins(tmp_path):
    config = tiny_config("rmac", "stationary", 10, 1)
    summary = run_point(config)
    early = ResultStore(str(tmp_path / "early"))
    early.record_failure("rmac", "stationary", 10, 1, config_hash(config),
                         error="OSError: transient", attempts=1)
    late = ResultStore(str(tmp_path / "late"))
    late.record_success("rmac", "stationary", 10, 1,
                        config_hash(config), summary)

    # failed-then-ok: the later source's success supersedes.
    target = ResultStore(str(tmp_path / "m1"))
    counts = merge_stores(target, [early, late])
    assert counts["added"] == 1 and counts["superseded"] == 1
    assert target._records[("rmac", "stationary", 10.0, 1)]["status"] == "ok"

    # ok-then-failed: a stray failure never clobbers a success.
    target = ResultStore(str(tmp_path / "m2"))
    counts = merge_stores(target, [late, early])
    assert counts["added"] == 1 and counts["superseded"] == 0
    assert target._records[("rmac", "stationary", 10.0, 1)]["status"] == "ok"

    # failed-then-failed: last record wins between equals.
    worse = ResultStore(str(tmp_path / "worse"))
    worse.record_failure("rmac", "stationary", 10, 1, config_hash(config),
                         error="OSError: again", attempts=2)
    target = ResultStore(str(tmp_path / "m3"))
    merge_stores(target, [early, worse])
    record = target._records[("rmac", "stationary", 10.0, 1)]
    assert record["error"] == "OSError: again" and record["attempts"] == 2


def test_merge_tolerates_truncated_shard_tail(tmp_path):
    shard = _seeded_store(tmp_path / "shard", [1, 2])
    # A worker killed mid-append leaves a torn final line.
    with open(shard.path, "a") as fh:
        fh.write('{"v": 1, "protocol": "rmac", "scenario": "stat')
    reloaded = ResultStore(str(tmp_path / "shard"))
    assert len(reloaded) == 2 and reloaded.corrupt_lines == 0

    target = ResultStore(str(tmp_path / "merged"))
    counts = merge_stores(target, [reloaded])
    assert counts == {"added": 2, "superseded": 0, "unchanged": 0}


# ---------------------------------------------------------------------------
# CampaignFarm
# ---------------------------------------------------------------------------

def test_farm_bit_identical_to_unsharded_campaign(tmp_path):
    reference_results = Campaign(str(tmp_path / "reference")).run(
        *MATRIX, tiny_config)

    farm = CampaignFarm(str(tmp_path / "farm"))
    telemetry = Telemetry()
    results = farm.run(*MATRIX, tiny_config, workers=2, telemetry=telemetry)

    # Same aggregates (the JSON round trip must not perturb a float),
    # same per-point records in the merged canonical store.
    assert results == reference_results
    assert_stores_bit_identical(ResultStore(str(tmp_path / "farm")),
                                ResultStore(str(tmp_path / "reference")))

    counters = farm.counters
    assert counters.points_total == 4 and counters.points_done == 4
    assert counters.points_failed == 0 and counters.workers_died == 0
    assert counters.workers_spawned == 2

    # Shard layout on disk: every shard is itself a loadable store, and
    # each point's record is where its home (or thief) worker put it.
    shards = os.listdir(os.path.join(str(tmp_path / "farm"), SHARDS_DIR))
    assert all(name.startswith("shard-") for name in shards)

    # Counters threaded through the telemetry pipeline.
    assert telemetry.report().to_dict()["farm"]["points_done"] == 4


def test_farm_resume_serves_everything_cached(tmp_path):
    path = str(tmp_path / "farm")
    CampaignFarm(path).run(*MATRIX, tiny_config, workers=2)
    farm = CampaignFarm(path)
    progress = []
    farm.run(*MATRIX, tiny_config, workers=2,
             progress=lambda done, total, key, err:
             progress.append((done, total, key)))
    assert farm.counters.points_cached == 4
    assert farm.counters.points_done == 0
    assert farm.counters.workers_spawned == 0   # nothing left to execute
    assert all(key.endswith("(cached)") for _, _, key in progress)


def test_farm_replays_partial_shard_of_dead_worker(tmp_path):
    """A shard store left by a crashed run resumes as cached points."""
    root = str(tmp_path / "farm")
    # Pre-seed shard-00 with one completed point, as if a worker died
    # after finishing it (durable append, no ack, no merge).
    config = tiny_config("rmac", "stationary", 10, 1)
    shard = ResultStore(os.path.join(root, SHARDS_DIR, shard_name(0)))
    shard.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), run_point(config))

    farm = CampaignFarm(root)
    farm.run(*MATRIX, tiny_config, workers=2)
    assert farm.counters.points_cached == 1
    assert farm.counters.points_done == 3
    # The replayed point made it into the canonical merged store.
    assert ("rmac", "stationary", 10.0, 1) in ResultStore(root)


def test_farm_captures_point_failures(tmp_path):
    def half_broken(protocol, scenario, rate, seed):
        config = tiny_config(protocol, scenario, rate, seed)
        if seed == 2:
            # Unknown protocol: build_network raises inside the worker.
            config = config.variant(protocol="no-such-mac")
        return config

    farm = CampaignFarm(str(tmp_path / "farm"))
    results = farm.run(["rmac"], ["stationary"], [10], [1, 2], half_broken,
                       workers=2, retries=1)
    assert farm.counters.points_done == 1 and farm.counters.points_failed == 1
    assert len(results) == 1 and results[0].n_seeds == 1
    (failure,) = results[0].failures
    assert failure.seed == 2 and "no-such-mac" in failure.error
    assert failure.attempts == 2    # --retries honoured inside the worker
    # The failure is persisted (and re-runs on resume, like a campaign's).
    store = ResultStore(str(tmp_path / "farm"))
    assert len(store.failures()) == 1


# ---------------------------------------------------------------------------
# Worker death: SIGKILL mid-campaign
# ---------------------------------------------------------------------------

def slow_config(protocol, scenario, rate, seed):
    return scaled_scenario(protocol, scenario, rate, seed,
                           n_packets=120, n_nodes=10)


KILL_MATRIX = (["rmac"], ["stationary"], [60], [1, 2, 3, 4, 5, 6])


def _assassinate_first_leased_worker(root, killed):
    """Poll heartbeats until some worker leases a job, then SIGKILL it."""
    workers_dir = os.path.join(root, WORKERS_DIR)
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if os.path.isdir(workers_dir):
            for name in sorted(os.listdir(workers_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(workers_dir, name)) as fh:
                        beat = json.load(fh)
                except (OSError, ValueError):
                    continue
                if beat.get("status") == "leased":
                    try:
                        os.kill(beat["pid"], signal.SIGKILL)
                    except OSError:
                        return
                    killed.append(beat)
                    return
        time.sleep(0.01)


def test_sigkilled_worker_requeues_lease_and_farm_completes(tmp_path):
    reference = Campaign(str(tmp_path / "reference")).run(
        *KILL_MATRIX, slow_config)

    root = str(tmp_path / "farm")
    farm = CampaignFarm(root)
    killed = []
    assassin = threading.Thread(
        target=_assassinate_first_leased_worker, args=(root, killed))
    assassin.start()
    try:
        results = farm.run(*KILL_MATRIX, slow_config, workers=2)
    finally:
        assassin.join()

    assert killed, "assassin never saw a leased worker"
    counters = farm.counters
    assert counters.workers_died == 1
    # The killed worker's lease went back to the queue and ran elsewhere
    # (unless the kill landed in the sliver between its fsync and its
    # ack, in which case the completed point needed no requeue).
    assert counters.points_requeued <= 1
    assert counters.points_done == len(reference[0].per_seed) == 6

    # Zero missing points, and the merged store is still bit-identical
    # to the single-process run.
    status = farm_status(root)
    assert status["missing"] == 0 and status["done"] == 6
    assert results == reference
    assert_stores_bit_identical(ResultStore(root),
                                ResultStore(str(tmp_path / "reference")))


# ---------------------------------------------------------------------------
# Status + serve endpoint
# ---------------------------------------------------------------------------

def test_farm_status_fields_and_rendering(tmp_path):
    root = str(tmp_path / "farm")
    CampaignFarm(root).run(*MATRIX, tiny_config, workers=2)
    status = farm_status(root)
    assert status["state"] == "done"
    assert status["total"] == 4 and status["done"] == 4
    assert status["failed"] == 0 and status["missing"] == 0
    assert status["counters"]["workers_spawned"] == 2
    assert len(status["shards"]) >= 1
    assert all(not w["alive"] for w in status["workers"])  # all stopped

    text = render_farm_status(status)
    assert "4/4 points done" in text and "farm [done]" in text


def test_shard_assignment_is_deterministic():
    h = config_hash(tiny_config("rmac", "stationary", 10, 1))
    assert shard_index(h, 4) == int(h, 16) % 4
    assert shard_index(h, 1) == 0


def test_serve_endpoint(tmp_path):
    root = str(tmp_path / "farm")
    CampaignFarm(root).run(*MATRIX, tiny_config, workers=2)
    server = make_status_server(root, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = "http://127.0.0.1:%d" % server.server_address[1]
        with urllib.request.urlopen(base + "/status") as response:
            status = json.load(response)
        assert status["done"] == 4 and status["state"] == "done"
        with urllib.request.urlopen(base + "/") as response:
            assert b"points done" in response.read()
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(base + "/nope")
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
