"""The append-only JSONL result store."""

import json

import pytest

from repro.experiments.runner import results_from_store, run_point
from repro.experiments.scenarios import scaled_scenario
from repro.experiments.store import (
    ResultStore,
    config_hash,
    point_key,
)
from repro.metrics.summary import RunSummary


@pytest.fixture(scope="module")
def one_run():
    config = scaled_scenario("rmac", "stationary", 10, 1,
                             n_packets=4, n_nodes=10)
    return config, run_point(config)


def test_round_trip_is_bit_identical(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    reopened = ResultStore(str(tmp_path / "s"))
    got = reopened.get("rmac", "stationary", 10, 1, config_hash(config))
    assert got == summary


def test_hash_mismatch_misses(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    assert store.get("rmac", "stationary", 10, 1, "0" * 16) is None
    # ... but completed() still exposes it for aggregation-only reads.
    assert point_key("rmac", "stationary", 10, 1) in store.completed()


def test_int_and_float_rates_are_one_key(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    assert store.get("rmac", "stationary", 10.0, 1,
                     config_hash(config)) == summary


def test_success_supersedes_failure(tmp_path, one_run):
    config, summary = one_run
    h = config_hash(config)
    store = ResultStore(str(tmp_path / "s"))
    store.record_failure("rmac", "stationary", 10, 1, h, "boom", attempts=2)
    assert store.get("rmac", "stationary", 10, 1, h) is None
    assert store.failures()
    store.record_success("rmac", "stationary", 10, 1, h, summary)
    assert store.get("rmac", "stationary", 10, 1, h) == summary
    assert not store.failures()
    # Both records are still in the file (append-only); the last wins.
    lines = (tmp_path / "s" / "results.jsonl").read_text().splitlines()
    assert len(lines) == 2
    reopened = ResultStore(str(tmp_path / "s"))
    assert reopened.get("rmac", "stationary", 10, 1, h) == summary


def test_truncated_final_line_is_tolerated(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    path = tmp_path / "s" / "results.jsonl"
    with open(path, "a") as fh:
        fh.write('{"v": 1, "protocol": "rmac", "scen')  # killed mid-append
    reopened = ResultStore(str(tmp_path / "s"))
    assert len(reopened) == 1
    assert reopened.corrupt_lines == 0


def test_corrupt_middle_line_is_counted_and_skipped(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    path = tmp_path / "s" / "results.jsonl"
    with open(path, "w") as fh:
        fh.write("garbage not json\n")
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    reopened = ResultStore(str(tmp_path / "s"))
    assert len(reopened) == 1
    assert reopened.corrupt_lines == 1


def test_unknown_record_and_summary_keys_ignored(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    path = tmp_path / "s" / "results.jsonl"
    record = json.loads(path.read_text())
    record["future_top_level_key"] = {"x": 1}
    record["summary"]["future_metric"] = 0.5
    path.write_text(json.dumps(record) + "\n")
    reopened = ResultStore(str(tmp_path / "s"))
    assert reopened.get("rmac", "stationary", 10, 1,
                        config_hash(config)) == summary


def test_missing_required_summary_field_raises(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    path = tmp_path / "s" / "results.jsonl"
    record = json.loads(path.read_text())
    del record["summary"]["delivery_ratio"]
    path.write_text(json.dumps(record) + "\n")
    reopened = ResultStore(str(tmp_path / "s"))
    with pytest.raises(ValueError, match="delivery_ratio"):
        reopened.get("rmac", "stationary", 10, 1, config_hash(config))


def test_open_existing_only(tmp_path):
    with pytest.raises(FileNotFoundError):
        ResultStore(str(tmp_path / "missing"), create=False)


def test_results_from_store_groups_and_filters(tmp_path, one_run):
    config, summary = one_run
    h = config_hash(config)
    store = ResultStore(str(tmp_path / "s"))
    for seed in (2, 1):  # out of order on purpose
        store.record_success("rmac", "stationary", 10, seed, h, summary)
    store.record_success("bmmm", "stationary", 10, 1, h, summary)
    results = results_from_store(store)
    assert [(r.protocol, r.n_seeds) for r in results] == [
        ("bmmm", 1), ("rmac", 2)]
    only_rmac = results_from_store(store, ["rmac"])
    assert [r.protocol for r in only_rmac] == ["rmac"]


def test_status_without_manifest(tmp_path, one_run):
    config, summary = one_run
    store = ResultStore(str(tmp_path / "s"))
    store.record_success("rmac", "stationary", 10, 1,
                         config_hash(config), summary)
    store.record_failure("rmac", "stationary", 10, 2,
                         config_hash(config), "boom")
    status = store.status()
    assert status["done"] == 1 and status["failed"] == 1
    assert status["total"] is None and status["missing"] is None


def test_run_summary_from_dict_rejects_non_dataclass_junk():
    with pytest.raises(ValueError):
        RunSummary.from_dict({"protocol": "rmac"})
