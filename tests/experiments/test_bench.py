"""The ``repro bench`` sweep, baseline discovery and regression gate."""

import json
import os

import pytest

from repro.experiments import bench

#: A sub-second point so the test suite stays fast.
TINY = bench._point("smoke", "rmac", 2, n_nodes=6, width=150.0, height=100.0,
                    rate_pps=5.0, n_packets=3)


def _fake_point(mode="smoke", protocol="rmac", seed=2, eps=1000.0,
                metrics=None):
    return {"mode": mode, "protocol": protocol, "seed": seed,
            "events": 100, "wall_s": 0.1, "eps": eps,
            "metrics": metrics if metrics is not None else {"delivery_ratio": 1.0},
            "subsystem_wall_s": {}}


def _report(*points):
    return {"rev": "test", "events": 100, "wall_s": 0.1,
            "events_per_sec": 1000.0, "points": list(points)}


def test_run_point_returns_metrics_and_throughput():
    record = bench.run_point(TINY)
    assert record["mode"] == "smoke" and record["protocol"] == "rmac"
    assert record["events"] > 0 and record["eps"] > 0
    assert set(record["metrics"]) == set(bench.METRIC_FIELDS)
    assert record["metrics"]["n_generated"] == 3


def test_run_point_repeat_is_deterministic_and_keeps_best():
    repeated = dict(TINY, repeat=3)
    single = bench.run_point(TINY)
    best = bench.run_point(repeated)
    # Determinism: identical simulated outcome, whatever the timing.
    assert best["events"] == single["events"]
    assert best["metrics"] == single["metrics"]


def test_run_bench_aggregates_points():
    report = bench.run_bench([TINY], rev="abc1234")
    assert report["rev"] == "abc1234"
    assert len(report["points"]) == 1
    assert report["events"] == report["points"][0]["events"]
    assert report["events_per_sec"] > 0


def test_find_baseline_picks_newest(tmp_path):
    old = tmp_path / "BENCH_aaa.json"
    new = tmp_path / "BENCH_bbb.json"
    old.write_text("{}")
    new.write_text("{}")
    os.utime(old, (1, 1))
    os.utime(new, (2, 2))
    assert bench.find_baseline(str(tmp_path)) == str(new)
    assert bench.find_baseline(str(tmp_path / "missing")) is None
    (tmp_path / "notes.txt").write_text("ignored")


def test_compare_passes_within_threshold():
    ok, lines = bench.compare(_report(_fake_point(eps=800.0)),
                              _report(_fake_point(eps=1000.0)),
                              max_regression=0.30)
    assert ok
    assert any("0.80x" in line for line in lines)


def test_compare_fails_on_regression():
    ok, lines = bench.compare(_report(_fake_point(eps=500.0)),
                              _report(_fake_point(eps=1000.0)),
                              max_regression=0.30)
    assert not ok
    assert any("REGRESSION" in line for line in lines)


def test_compare_reports_metric_drift_without_failing():
    ok, lines = bench.compare(
        _report(_fake_point(metrics={"delivery_ratio": 0.5})),
        _report(_fake_point(metrics={"delivery_ratio": 1.0})),
    )
    assert ok  # drift is loud but the perf gate does not own correctness
    assert any("METRIC DRIFT" in line for line in lines)


def test_compare_handles_new_points():
    ok, lines = bench.compare(_report(_fake_point(seed=99)), _report())
    assert ok
    assert any("no baseline point" in line for line in lines)


def test_committed_baseline_matches_current_behavior():
    """The repo's committed BENCH_*.json must stay reproducible: the same
    seed produces bit-identical metrics on today's code (the determinism
    half of the benchmark contract; throughput is checked in CI)."""
    path = bench.find_baseline(
        os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks"))
    if path is None:
        pytest.skip("no committed baseline")
    baseline = bench.load_baseline(path)
    base_smoke = [p for p in baseline["points"] if p["mode"] == "smoke"]
    assert base_smoke, "committed baseline lacks a smoke point"
    record = bench.run_point(next(
        p for p in bench.SMOKE_POINTS
        if (p["protocol"], p["seed"]) == (base_smoke[0]["protocol"],
                                          base_smoke[0]["seed"])))
    assert record["events"] == base_smoke[0]["events"]
    assert record["metrics"] == base_smoke[0]["metrics"]


def test_tier_points_resolution():
    assert bench.tier_points("smoke") is bench.SMOKE_POINTS
    assert bench.tier_points("full") is bench.FULL_POINTS
    assert bench.tier_points("large") is bench.LARGE_POINTS
    with pytest.raises(ValueError):
        bench.tier_points("galactic")


def test_large_tier_composition():
    sizes = {p["config"]["n_nodes"] for p in bench.LARGE_POINTS if "config" in p}
    assert sizes == {200, 500, 1000}
    rebuilds = [p for p in bench.LARGE_POINTS
                if p.get("kind") == "neighbor-rebuild"]
    assert {p["n_nodes"] for p in rebuilds} == {200, 500, 1000}
    assert any(p.get("compare_brute") for p in bench.LARGE_POINTS)
    # Labels are unique: they are the compare() key at shared mode/seed.
    labels = [p["label"] for p in bench.LARGE_POINTS]
    assert len(labels) == len(set(labels))


def test_rebuild_point_asserts_equality_and_reports_speedup():
    record = bench.run_point(bench._rebuild_point(200, epochs=2))
    assert record["kind"] == "neighbor-rebuild"
    assert record["links_built"] > 0
    assert record["speedup"] > 0
    assert record["links_per_sec_grid"] > 0
    # Excluded from the event-loop aggregate.
    assert record["events"] == 0 and record["wall_s"] == 0.0
    report = bench.run_bench([bench._rebuild_point(200, epochs=1)], rev="x")
    assert report["events"] == 0


def test_compare_keys_on_label():
    a = _fake_point()
    b = dict(_fake_point(eps=2000.0), label="static-200")
    ok, lines = bench.compare(_report(a, b), _report(a, b))
    assert ok
    assert any("[static-200]" in line for line in lines)
    # A labeled point never matches an unlabeled baseline point.
    ok, lines = bench.compare(_report(b), _report(a))
    assert any("no baseline point" in line for line in lines)


def test_markdown_table():
    current = _report(_fake_point(eps=900.0))
    baseline = _report(_fake_point(eps=1000.0))
    table = bench.markdown_table(current, baseline)
    assert table.startswith("| point |")
    assert "0.90x" in table
    assert "900" in table and "1,000" in table
    # Without a baseline the ratio column degrades gracefully.
    assert "--" in bench.markdown_table(current, None)


def test_compare_brute_point_records_e2e_comparison():
    point = dict(TINY, compare_brute=True)
    record = bench.run_point(point)
    assert record["brute_eps"] > 0
    assert record["e2e_speedup_vs_brute"] > 0


def test_cli_bench_tier_flag(tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.setattr(bench, "LARGE_POINTS", [dict(TINY, mode="large")])
    out = tmp_path / "bench-large.json"
    code = main(["bench", "--tier", "large", "--out", str(out),
                 "--baseline", str(tmp_path)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["points"][0]["mode"] == "large"


def test_cli_bench_smoke(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setattr(bench, "SMOKE_POINTS", [TINY])
    out = tmp_path / "bench.json"
    baseline = tmp_path / "BENCH_base.json"
    code = main(["bench", "--smoke", "--out", str(out),
                 "--baseline", str(tmp_path)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["points"][0]["events"] > 0
    assert "no committed baseline" in capsys.readouterr().out

    # Second run compared against the first: identical work, passes.
    report["points"][0]["eps"] *= 0.9  # simulate a slightly slower baseline
    baseline.write_text(json.dumps(report))
    code = main(["bench", "--smoke", "--out", str(out),
                 "--baseline", str(baseline)])
    assert code == 0

    # A baseline claiming far higher throughput trips the gate.
    report["points"][0]["eps"] *= 1e6
    baseline.write_text(json.dumps(report))
    code = main(["bench", "--smoke", "--out", str(out),
                 "--baseline", str(baseline), "--max-regression", "30"])
    assert code == 1
    assert "REGRESSION" in capsys.readouterr().out
