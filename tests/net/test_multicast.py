"""The tree multicast application."""

import random

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.net.bless import BlessConfig, BlessProtocol
from repro.net.multicast import MulticastApp, MulticastConfig
from repro.net.packet import MulticastPacket, RoutingMessage
from repro.sim.engine import Simulator
from repro.sim.units import SEC


class FakeMac:
    def __init__(self):
        self.reliable = []
        self.unreliable = []

    def send_reliable(self, receivers, payload, payload_bytes, on_complete=None):
        self.reliable.append((tuple(receivers), payload))
        return True

    def send_unreliable(self, dst, payload, payload_bytes, on_complete=None):
        self.unreliable.append((dst, payload))
        return True


def make_app(node_id, rate=10.0, n_packets=5, root=0, metrics=None):
    sim = Simulator()
    mac = FakeMac()
    bless = BlessProtocol(node_id, sim, mac, BlessConfig(root=root), random.Random(1))
    config = MulticastConfig(rate_pps=rate, n_packets=n_packets, start_time=1 * SEC)
    app = MulticastApp(node_id, sim, mac, bless, config, metrics)
    return sim, mac, bless, app


def test_source_emits_at_rate():
    metrics = MetricsCollector()
    sim, mac, bless, app = make_app(0, rate=10, n_packets=5, metrics=metrics)
    bless.on_routing_message(RoutingMessage(3, 1, 0), 3)  # one child
    app.start()
    sim.run(until=3 * SEC)
    assert metrics.n_generated == 5
    times = sorted(metrics.generated.values())
    assert times[0] == 1 * SEC
    assert times[1] - times[0] == 100_000_000  # 10 pps -> 100 ms
    assert len(mac.reliable) == 5


def test_source_without_children_counts_leaf_receptions():
    sim, mac, bless, app = make_app(0, n_packets=3)
    app.start()
    sim.run(until=3 * SEC)
    assert mac.reliable == []
    assert app.leaf_receptions == 3


def test_forwarding_to_current_children():
    metrics = MetricsCollector()
    sim, mac, bless, app = make_app(4, metrics=metrics)
    bless.on_routing_message(RoutingMessage(8, 2, 4), 8)
    bless.on_routing_message(RoutingMessage(9, 2, 4), 9)
    packet = MulticastPacket(0, 0, created_at=0)
    sim.at(10, lambda: app.on_packet(packet, from_node=1))
    sim.run(until=100)
    assert mac.reliable == [((8, 9), packet)]
    assert metrics.deliveries_per_node == {4: 1}


def test_duplicates_suppressed():
    metrics = MetricsCollector()
    sim, mac, bless, app = make_app(4, metrics=metrics)
    bless.on_routing_message(RoutingMessage(8, 2, 4), 8)
    packet = MulticastPacket(0, 0, created_at=0)
    app.on_packet(packet, from_node=1)
    app.on_packet(packet, from_node=2)  # duplicate via another path
    assert len(mac.reliable) == 1
    assert metrics.deliveries_per_node == {4: 1}


def test_delay_recorded_from_creation():
    metrics = MetricsCollector(keep_delays=True)
    sim, mac, bless, app = make_app(4, metrics=metrics)
    packet = MulticastPacket(0, 0, created_at=100)
    sim.at(600, lambda: app.on_packet(packet, from_node=1))
    sim.run(until=1000)
    assert metrics.delay_records == [(4, 0, 500)]


def test_config_validation():
    with pytest.raises(ValueError):
        MulticastConfig(rate_pps=0, n_packets=1)
    with pytest.raises(ValueError):
        MulticastConfig(rate_pps=1, n_packets=-1)
    with pytest.raises(ValueError):
        MulticastConfig(rate_pps=1, n_packets=1, payload_bytes=-1)


def test_traffic_end_computation():
    config = MulticastConfig(rate_pps=10, n_packets=11, start_time=1 * SEC)
    assert config.traffic_end == 1 * SEC + 10 * 100_000_000
    empty = MulticastConfig(rate_pps=10, n_packets=0, start_time=1 * SEC)
    assert empty.traffic_end == 1 * SEC
