"""Tree snapshots and the Section 4.1.1 statistics."""

import pytest

from repro.net.tree import TreeSnapshot, bfs_tree, tree_statistics


def test_snapshot_children_and_hops():
    #     0
    #    / \
    #   1   2
    #   |
    #   3
    tree = TreeSnapshot(root=0, parents=(-1, 0, 0, 1))
    assert tree.children_map() == {0: [1, 2], 1: [3], 2: [], 3: []}
    assert tree.hops() == [0, 1, 1, 2]
    assert tree.reachable() == [0, 1, 2, 3]


def test_snapshot_detached_node():
    tree = TreeSnapshot(root=0, parents=(-1, 0, -1))
    assert tree.hops() == [0, 1, None]
    assert tree.reachable() == [0, 1]


def test_snapshot_cycle_detected_as_unreachable():
    tree = TreeSnapshot(root=0, parents=(-1, 2, 1))
    assert tree.hops()[1] is None and tree.hops()[2] is None


def test_snapshot_validation():
    with pytest.raises(ValueError):
        TreeSnapshot(root=0, parents=(1, 0))
    with pytest.raises(ValueError):
        TreeSnapshot(root=5, parents=(-1,))


def test_bfs_tree_on_chain():
    coords = [(0, 0), (60, 0), (120, 0), (180, 0)]
    tree = bfs_tree(coords, radio_range=75.0)
    assert tree.parents == (-1, 0, 1, 2)
    assert tree.hops() == [0, 1, 2, 3]


def test_bfs_tree_prefers_smallest_id_parent():
    # Nodes 1 and 2 both reach 3; BFS ties go to the smaller id.
    coords = [(0, 0), (50, 0), (50, 10), (100, 5)]
    tree = bfs_tree(coords, radio_range=75.0)
    assert tree.parents[3] == 1


def test_bfs_tree_disconnected():
    coords = [(0, 0), (50, 0), (500, 0)]
    tree = bfs_tree(coords, radio_range=75.0)
    assert tree.parents[2] == -1
    assert tree.hops()[2] is None


def test_tree_statistics_values():
    tree = TreeSnapshot(root=0, parents=(-1, 0, 0, 1, 1, 1))
    stats = tree_statistics(tree)
    # hops: [1,1,2,2,2] -> mean 1.6; children: root 2, node1 3.
    assert stats["avg_hops"] == pytest.approx(1.6)
    assert stats["avg_children"] == pytest.approx(2.5)
    assert stats["p99_children"] == pytest.approx(2.99)
    assert stats["reachable"] == 6


def test_tree_statistics_single_node():
    stats = tree_statistics(TreeSnapshot(root=0, parents=(-1,)))
    assert stats["avg_hops"] == 0.0 and stats["avg_children"] == 0.0
