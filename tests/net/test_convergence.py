"""Tree churn analytics."""

import random

import pytest

from repro.net.bless import BlessConfig, BlessProtocol
from repro.net.convergence import ChurnReport, analyze_churn
from repro.sim.engine import Simulator
from repro.sim.units import SEC
from repro.world.network import ScenarioConfig, build_network


class FakeMac:
    def send_unreliable(self, *a, **k):
        return True


def make_bless(node_id, history):
    sim = Simulator()
    bless = BlessProtocol(node_id, sim, FakeMac(), BlessConfig(), random.Random(1))
    bless.parent_changes = list(history)
    return bless


def test_join_time_is_first_positive_parent():
    root = make_bless(0, [])
    node = make_bless(1, [(2 * SEC, 5), (4 * SEC, 7)])
    report = analyze_churn([root, node], horizon=10 * SEC)
    assert report.join_times == (2 * SEC,)
    assert report.parent_changes == (1,)
    assert report.all_joined


def test_never_joined():
    root = make_bless(0, [])
    node = make_bless(1, [])
    report = analyze_churn([root, node], horizon=10 * SEC)
    assert report.join_times == (None,)
    assert not report.all_joined
    assert report.detached_fraction == (1.0,)


def test_detached_fraction_integration():
    # Joined at 2s, lost parent at 6s, rejoined at 7s (horizon 10s):
    # detached for 2 + 1 = 3 of 10 seconds.
    node = make_bless(1, [(2 * SEC, 5), (6 * SEC, -1), (7 * SEC, 3)])
    report = analyze_churn([make_bless(0, []), node], horizon=10 * SEC)
    assert report.detached_fraction[0] == pytest.approx(0.3)
    assert report.parent_changes == (2,)


def test_churn_rate_normalization():
    node = make_bless(1, [(1 * SEC, 5), (2 * SEC, 6), (3 * SEC, 7)])
    report = analyze_churn([make_bless(0, []), node], horizon=60 * SEC)
    assert report.churn_rate_per_node_minute(60 * SEC) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        report.churn_rate_per_node_minute(0)


def test_root_excluded():
    report = analyze_churn([make_bless(0, [])], horizon=SEC)
    assert report.join_times == ()
    assert report.mean_parent_changes() == 0.0


def test_full_run_static_network_converges_and_stays():
    config = ScenarioConfig(protocol="rmac", n_nodes=14, width=210, height=150,
                            rate_pps=5, n_packets=10, seed=4)
    net = build_network(config)
    net.run()
    horizon = net.sim.now
    report = analyze_churn([layer.bless for layer in net.layers], horizon)
    assert report.all_joined
    assert report.max_join_time() < 5 * SEC  # joined during warm-up
    assert report.mean_detached_fraction() < 0.4


def test_mobile_run_has_more_churn_than_static():
    base = dict(protocol="rmac", n_nodes=14, width=210, height=150,
                rate_pps=5, n_packets=30, seed=4)
    static_net = build_network(ScenarioConfig(**base))
    static_net.run()
    static = analyze_churn([l.bless for l in static_net.layers], static_net.sim.now)
    mobile_net = build_network(ScenarioConfig(mobile=True, max_speed=12.0,
                                              pause_s=1.0, **base))
    mobile_net.run()
    mobile = analyze_churn([l.bless for l in mobile_net.layers], mobile_net.sim.now)
    assert mobile.mean_parent_changes() > static.mean_parent_changes()
