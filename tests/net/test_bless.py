"""The simplified BLESS tree protocol."""

import random

import pytest

from repro.net.bless import BlessConfig, BlessProtocol, UNJOINED
from repro.net.packet import RoutingMessage
from repro.sim.engine import Simulator
from repro.sim.units import SEC


class FakeMac:
    """Records unreliable broadcasts instead of transmitting."""

    def __init__(self):
        self.broadcasts = []

    def send_unreliable(self, dst, payload, payload_bytes, on_complete=None):
        self.broadcasts.append((dst, payload))
        return True


def make_bless(node_id, root=0, **cfg):
    sim = Simulator()
    mac = FakeMac()
    config = BlessConfig(root=root, **cfg)
    bless = BlessProtocol(node_id, sim, mac, config, random.Random(1))
    return sim, mac, bless


def test_root_starts_joined_at_zero_hops():
    sim, mac, bless = make_bless(0)
    assert bless.is_root and bless.joined
    assert bless.hops == 0 and bless.parent == -1


def test_non_root_starts_unjoined():
    sim, mac, bless = make_bless(5)
    assert not bless.joined
    assert bless.hops == UNJOINED


def test_periodic_broadcast_with_jitter():
    sim, mac, bless = make_bless(0, jitter=0.2)
    bless.start()
    sim.run(until=10 * SEC)
    count = len(mac.broadcasts)
    assert 8 <= count <= 13  # ~1/s with 20% jitter
    gaps = set()
    assert all(dst == -1 for dst, _ in mac.broadcasts)


def test_parent_selection_minimizes_hops_then_id():
    sim, mac, bless = make_bless(5)
    bless.on_routing_message(RoutingMessage(3, 2, 1), 3)
    assert (bless.parent, bless.hops) == (3, 3)
    bless.on_routing_message(RoutingMessage(7, 1, 0), 7)
    assert (bless.parent, bless.hops) == (7, 2)
    # Same hops, smaller id wins.
    bless.on_routing_message(RoutingMessage(2, 1, 0), 2)
    assert (bless.parent, bless.hops) == (2, 2)


def test_unjoined_neighbors_ignored():
    sim, mac, bless = make_bless(5)
    bless.on_routing_message(RoutingMessage(3, UNJOINED, -1), 3)
    assert not bless.joined


def test_entries_expire_and_tree_heals():
    sim, mac, bless = make_bless(5, period=1 * SEC, expiry=3 * SEC)
    bless.on_routing_message(RoutingMessage(7, 1, 0), 7)
    assert bless.parent == 7
    # Keep a worse neighbor alive while 7 goes silent.
    def refresh():
        bless.on_routing_message(RoutingMessage(3, 2, 0), 3)
    for t in range(1, 6):
        sim.at(t * SEC, refresh)
    sim.run(until=6 * SEC)
    assert bless.parent == 3
    assert bless.hops == 3


def test_all_entries_expired_leaves_tree():
    sim, mac, bless = make_bless(5, expiry=1 * SEC)
    bless.on_routing_message(RoutingMessage(7, 1, 0), 7)
    sim.run(until=2 * SEC)
    # Trigger re-selection via an unjoined message from elsewhere.
    bless.on_routing_message(RoutingMessage(9, UNJOINED, -1), 9)
    assert not bless.joined and bless.parent == -1


def test_children_are_claimants():
    sim, mac, bless = make_bless(0)
    bless.on_routing_message(RoutingMessage(4, 1, 0), 4)
    bless.on_routing_message(RoutingMessage(9, 1, 0), 9)
    bless.on_routing_message(RoutingMessage(6, 1, 3), 6)  # claims node 3
    assert bless.children() == (4, 9)


def test_children_expire():
    sim, mac, bless = make_bless(0, expiry=1 * SEC)
    bless.on_routing_message(RoutingMessage(4, 1, 0), 4)
    sim.run(until=2 * SEC)
    assert bless.children() == ()


def test_parent_changes_recorded():
    sim, mac, bless = make_bless(5)
    bless.on_routing_message(RoutingMessage(7, 1, 0), 7)
    bless.on_routing_message(RoutingMessage(2, 1, 0), 2)
    assert [p for _, p in bless.parent_changes] == [7, 2]


def test_config_validation():
    with pytest.raises(ValueError):
        BlessConfig(period=0)
    with pytest.raises(ValueError):
        BlessConfig(period=2 * SEC, expiry=1 * SEC)
    with pytest.raises(ValueError):
        BlessConfig(jitter=1.5)
