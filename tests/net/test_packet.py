"""Network-layer packet types."""

from repro.net.packet import MulticastPacket, RoutingMessage


def test_routing_message_fields():
    msg = RoutingMessage(origin=3, hops_to_root=2, parent=1)
    assert msg.payload_bytes == 13
    assert msg.joined


def test_routing_message_unjoined():
    msg = RoutingMessage(origin=3, hops_to_root=255, parent=-1)
    assert not msg.joined


def test_multicast_packet_defaults():
    packet = MulticastPacket(pkt_id=0, origin=0, created_at=5)
    assert packet.payload_bytes == 500  # the paper's packet size
    assert packet.pkt_id == 0


def test_packets_hashable_for_dedup_sets():
    a = MulticastPacket(1, 0, 10)
    b = MulticastPacket(1, 0, 10)
    assert a == b and hash(a) == hash(b)
