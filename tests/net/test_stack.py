"""The per-node network layer dispatch."""

import random

from repro.net.bless import BlessConfig
from repro.net.multicast import MulticastConfig
from repro.net.packet import MulticastPacket, RoutingMessage
from repro.net.stack import NetworkLayer
from repro.sim.engine import Simulator


class FakeMac:
    def __init__(self):
        self.upper_rx = None
        self.reliable = []
        self.unreliable = []

    def send_reliable(self, receivers, payload, payload_bytes, on_complete=None):
        self.reliable.append((tuple(receivers), payload))
        return True

    def send_unreliable(self, dst, payload, payload_bytes, on_complete=None):
        self.unreliable.append((dst, payload))
        return True


def make_layer(node_id=4):
    sim = Simulator()
    mac = FakeMac()
    layer = NetworkLayer(
        node_id, sim, mac, BlessConfig(), MulticastConfig(rate_pps=1, n_packets=0),
        random.Random(1),
    )
    return sim, mac, layer


def test_mac_upper_rx_wired():
    sim, mac, layer = make_layer()
    assert mac.upper_rx == layer.on_receive


def test_routing_messages_reach_bless():
    sim, mac, layer = make_layer()
    layer.on_receive(RoutingMessage(7, 1, 0), 7)
    assert layer.bless.parent == 7


def test_multicast_packets_reach_app():
    sim, mac, layer = make_layer()
    layer.on_receive(RoutingMessage(8, 2, 4), 8)  # child claims us
    layer.on_receive(MulticastPacket(0, 0, 0), 7)
    assert mac.reliable and mac.reliable[0][0] == (8,)


def test_unknown_payloads_ignored():
    sim, mac, layer = make_layer()
    layer.on_receive("garbage", 7)  # no raise, no effect
    assert mac.reliable == [] and mac.unreliable == []


def test_start_begins_bless_broadcasts():
    sim, mac, layer = make_layer()
    layer.start()
    sim.run(until=3 * 10**9)
    assert len(mac.unreliable) >= 2
